//! Umbrella crate re-exporting the Maxson reproduction workspace.
pub use maxson;
pub use maxson_datagen as datagen;
pub use maxson_engine as engine;
pub use maxson_json as json;
pub use maxson_predictor as predictor;
pub use maxson_storage as storage;
pub use maxson_trace as trace;
