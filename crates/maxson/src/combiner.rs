//! The Value Combiner (Algorithm 2) and shared predicate pushdown
//! (Algorithm 3).
//!
//! When a query touches both cached and uncached data, two readers run per
//! split: the **PrimaryReader** over the raw table file and the
//! **CacheReader** over the cache table file with the same index. The
//! cacher guarantees the two files have the same row count and row-group
//! boundaries, so rows are stitched positionally — no join.
//!
//! When the predicate constrains a cached JSONPath, the SARG is evaluated
//! against the cache file's row-group statistics; the resulting keep/skip
//! array is *shared* with the PrimaryReader so the raw file skips the same
//! row groups. As in the paper, the optimization only applies when both
//! files hold a single stripe.
//!
//! Composition with shared-parse execution (`MAXSON_SHARED_PARSE`) is
//! automatic: cached paths were compiled down to plain column references
//! against this provider's output schema, so only the *residual* uncached
//! `get_json_object` calls reach the executor's per-row extractor — the
//! combiner removes cross-query duplicate parsing, shared-parse dedupes
//! whatever parsing remains within the query.

use std::time::Instant;

use maxson_engine::metrics::ExecMetrics;
use maxson_engine::scan::ScanProvider;
use maxson_obs::Tracer;
use maxson_storage::{Cell, Schema, SearchArgument, Table};

/// Scan provider combining a raw table with its cache table.
#[derive(Debug)]
pub struct CombinedScanProvider {
    /// The raw data table (PrimaryReader side). `None` for cache-only
    /// reads, which skip raw I/O entirely (§IV-B's relevance rationale).
    raw: Option<Table>,
    /// Raw column indexes to read, in output order.
    raw_projection: Vec<usize>,
    /// The cache table (CacheReader side).
    cache: Table,
    /// Cache column indexes to read, in output order (placed after the raw
    /// columns in the output schema).
    cache_projection: Vec<usize>,
    /// Output schema: raw columns then cache columns.
    out_schema: Schema,
    /// SARG over raw table columns (ordinary pushdown).
    raw_sarg: Option<SearchArgument>,
    /// SARG over cache table columns (Algorithm 3).
    cache_sarg: Option<SearchArgument>,
    /// Span/counter sink; inert unless the rewriter installs a live one.
    tracer: Tracer,
}

impl CombinedScanProvider {
    /// Build a combined provider. `out_schema` must list the raw projection
    /// fields followed by the cache projection fields.
    pub fn new(
        raw: Option<Table>,
        raw_projection: Vec<usize>,
        cache: Table,
        cache_projection: Vec<usize>,
        out_schema: Schema,
        raw_sarg: Option<SearchArgument>,
        cache_sarg: Option<SearchArgument>,
    ) -> Self {
        CombinedScanProvider {
            raw,
            raw_projection,
            cache,
            cache_projection,
            out_schema,
            raw_sarg,
            cache_sarg,
            tracer: Tracer::disabled(),
        }
    }

    /// Install the tracer stitch counters are recorded into.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Whether this scan reads only the cache table.
    pub fn is_cache_only(&self) -> bool {
        self.raw.is_none() || self.raw_projection.is_empty()
    }
}

impl ScanProvider for CombinedScanProvider {
    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn scan(&self, metrics: &mut ExecMetrics) -> maxson_engine::Result<Vec<Vec<Cell>>> {
        let mut rows: Vec<Vec<Cell>> = Vec::new();
        for split in 0..self.split_count() {
            rows.extend(self.scan_split(split, metrics)?);
        }
        Ok(rows)
    }

    fn split_count(&self) -> usize {
        // Cache files are written one per raw file, so the cache file count
        // IS the split count (and covers cache-only scans too).
        self.cache.file_count()
    }

    /// One split = the raw file and cache file with the same index, read by
    /// the paired PrimaryReader/CacheReader. Keeping the pair inside a
    /// single split task is what lets the split-parallel executor fan scans
    /// out without touching Algorithm 2 (positional stitch) or Algorithm 3
    /// (shared SARG skips): both stay split-local.
    fn scan_split(
        &self,
        split: usize,
        metrics: &mut ExecMetrics,
    ) -> maxson_engine::Result<Vec<Vec<Cell>>> {
        let start = Instant::now();
        let mut rows: Vec<Vec<Cell>> = Vec::new();
        let (cache_file, cache_meta_hit) =
            self.cache.open_split_cached(split).map_err(engine_err)?;
        charge_meta_open(metrics, cache_meta_hit);

        // Algorithm 3: evaluate the cache-side SARG against the cache
        // file's row-group stats (single-stripe files only).
        let cache_keep: Option<Vec<bool>> = self.cache_sarg.as_ref().map(|sarg| {
            if cache_file.stripe_count() <= 1 {
                sarg.keep_array(cache_file.row_groups())
            } else {
                vec![true; cache_file.row_group_count()]
            }
        });

        if self.is_cache_only() {
            let keep = cache_keep;
            count_rg(metrics, &keep, cache_file.row_group_count());
            let cols = cache_file
                .read_columns(&self.cache_projection, keep.as_deref())
                .map_err(engine_err)?;
            let n = cols.first().map_or(0, |c| c.len());
            for i in 0..n {
                let row: Vec<Cell> = cols.iter().map(|c| c.get(i)).collect();
                metrics.bytes_read += row.iter().map(Cell::byte_size).sum::<usize>() as u64;
                metrics.cache_hits += self.cache_projection.len() as u64;
                rows.push(row);
            }
            metrics.rows_scanned += rows.len() as u64;
            let spent = start.elapsed();
            metrics.read += spent;
            metrics.read_wall += spent;
            self.tracer
                .add("combiner.cache_only_rows", rows.len() as u64);
            return Ok(rows);
        }

        let raw_table = self.raw.as_ref().expect("raw table present");
        let (raw_file, raw_meta_hit) = raw_table.open_split_cached(split).map_err(engine_err)?;
        charge_meta_open(metrics, raw_meta_hit);

        // The alignment invariant of §IV-C. If it does not hold (e.g.
        // the raw table changed underneath us) fail loudly rather than
        // stitch misaligned rows.
        if raw_file.num_rows() != cache_file.num_rows() {
            return Err(maxson_engine::EngineError::exec(format!(
                "cache misalignment on split {split}: raw has {} rows, cache has {}",
                raw_file.num_rows(),
                cache_file.num_rows()
            )));
        }

        // Combine keep arrays. Sharing requires identical row-group
        // boundaries; otherwise fall back to reading everything.
        let aligned_groups = raw_file.row_group_count() == cache_file.row_group_count()
            && raw_file.stripe_count() <= 1
            && cache_file.stripe_count() <= 1;
        let raw_keep: Option<Vec<bool>> = self.raw_sarg.as_ref().map(|sarg| {
            if raw_file.stripe_count() <= 1 {
                sarg.keep_array(raw_file.row_groups())
            } else {
                vec![true; raw_file.row_group_count()]
            }
        });
        let shared_keep: Option<Vec<bool>> = if aligned_groups {
            match (&raw_keep, &cache_keep) {
                (Some(r), Some(c)) => Some(r.iter().zip(c).map(|(a, b)| *a && *b).collect()),
                (Some(r), None) => Some(r.clone()),
                (None, Some(c)) => Some(c.clone()),
                (None, None) => None,
            }
        } else {
            // Cannot share: only the raw-side SARG can be applied, and
            // only consistently on both readers, so read everything.
            None
        };
        count_rg(metrics, &shared_keep, cache_file.row_group_count());

        let raw_cols = raw_file
            .read_columns(&self.raw_projection, shared_keep.as_deref())
            .map_err(engine_err)?;
        let cache_cols = cache_file
            .read_columns(&self.cache_projection, shared_keep.as_deref())
            .map_err(engine_err)?;
        let n = raw_cols
            .first()
            .map(|c| c.len())
            .or_else(|| cache_cols.first().map(|c| c.len()))
            .unwrap_or(0);

        // Algorithm 2: positional stitch of the two readers' outputs
        // into the output schema (raw fields then cache fields).
        for i in 0..n {
            let mut row: Vec<Cell> =
                Vec::with_capacity(self.raw_projection.len() + self.cache_projection.len());
            for c in &raw_cols {
                row.push(c.get(i));
            }
            for c in &cache_cols {
                row.push(c.get(i));
            }
            metrics.bytes_read += row.iter().map(Cell::byte_size).sum::<usize>() as u64;
            metrics.cache_hits += self.cache_projection.len() as u64;
            rows.push(row);
        }
        metrics.rows_scanned += rows.len() as u64;
        let spent = start.elapsed();
        metrics.read += spent;
        metrics.read_wall += spent;
        self.tracer.add("combiner.stitched_rows", rows.len() as u64);
        Ok(rows)
    }

    fn label(&self) -> String {
        format!(
            "MaxsonCombinedScan(raw_cols={:?}, cache_cols={:?}{}{})",
            self.raw_projection,
            self.cache_projection,
            if self.cache_sarg.as_ref().is_some_and(|s| !s.is_empty()) {
                ", cache_sarg"
            } else {
                ""
            },
            if self.is_cache_only() {
                ", cache-only"
            } else {
                ""
            },
        )
    }
}

fn charge_meta_open(metrics: &mut ExecMetrics, hit: bool) {
    if hit {
        metrics.meta_cache_hits += 1;
    } else {
        metrics.meta_cache_misses += 1;
    }
}

fn count_rg(metrics: &mut ExecMetrics, keep: &Option<Vec<bool>>, total: usize) {
    match keep {
        Some(keep) => {
            let skipped = keep.iter().filter(|k| !**k).count() as u64;
            metrics.row_groups_skipped += skipped;
            metrics.row_groups_read += keep.len() as u64 - skipped;
        }
        None => metrics.row_groups_read += total as u64,
    }
}

fn engine_err(e: maxson_storage::StorageError) -> maxson_engine::EngineError {
    maxson_engine::EngineError::Storage(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxson_storage::file::WriteOptions;
    use maxson_storage::{CmpOp, ColumnType, Field};
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        std::env::temp_dir().join(format!(
            "maxson-combiner-{}-{nanos}-{name}",
            std::process::id()
        ))
    }

    /// Raw table: (id, payload); cache table: (va,) where va = id * 10 as
    /// string. Two files of 20 rows each, row groups of 5.
    fn setup(name: &str) -> (Table, Table, PathBuf, PathBuf) {
        let raw_schema = Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("payload", ColumnType::Utf8),
        ])
        .unwrap();
        let cache_schema = Schema::new(vec![Field::new("va", ColumnType::Utf8)]).unwrap();
        let raw_dir = temp_dir(&format!("{name}-raw"));
        let cache_dir = temp_dir(&format!("{name}-cache"));
        let mut raw = Table::create(&raw_dir, raw_schema, 0).unwrap();
        let mut cache = Table::create(&cache_dir, cache_schema, 0).unwrap();
        let opts = WriteOptions {
            row_group_size: 5,
            ..Default::default()
        };
        for f in 0..2i64 {
            let raw_rows: Vec<Vec<Cell>> = (0..20)
                .map(|i| {
                    let n = f * 20 + i;
                    vec![Cell::Int(n), Cell::from(format!("{{\"a\":{}}}", n * 10))]
                })
                .collect();
            let cache_rows: Vec<Vec<Cell>> = (0..20)
                .map(|i| {
                    let n = f * 20 + i;
                    vec![Cell::from(format!("{}", n * 10))]
                })
                .collect();
            raw.append_file(&raw_rows, opts, 1).unwrap();
            cache.append_file(&cache_rows, opts, 1).unwrap();
        }
        (raw, cache, raw_dir, cache_dir)
    }

    fn out_schema() -> Schema {
        Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("va", ColumnType::Utf8),
        ])
        .unwrap()
    }

    #[test]
    fn stitches_rows_positionally() {
        let (raw, cache, rd, cd) = setup("stitch");
        let p =
            CombinedScanProvider::new(Some(raw), vec![0], cache, vec![0], out_schema(), None, None);
        let mut m = ExecMetrics::default();
        let rows = p.scan(&mut m).unwrap();
        assert_eq!(rows.len(), 40);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], Cell::Int(i as i64));
            assert_eq!(row[1], Cell::from(format!("{}", i * 10)));
        }
        assert_eq!(m.cache_hits, 40);
        assert_eq!(m.rows_scanned, 40);
        std::fs::remove_dir_all(rd).ok();
        std::fs::remove_dir_all(cd).ok();
    }

    #[test]
    fn cache_sarg_skip_is_shared_with_primary_reader() {
        let (raw, cache, rd, cd) = setup("share");
        // va >= "350" numerically -> only rows 35..39 (last row group of
        // file 1) qualify.
        let sarg = SearchArgument::new().with(0, CmpOp::GtEq, Cell::Int(350));
        let p = CombinedScanProvider::new(
            Some(raw),
            vec![0],
            cache,
            vec![0],
            out_schema(),
            None,
            Some(sarg),
        );
        let mut m = ExecMetrics::default();
        let rows = p.scan(&mut m).unwrap();
        // Row group size 5, 4 groups per file, 2 files = 8 shared groups.
        // Only file 1's last group ([35..39], va 350..390) survives.
        assert_eq!(m.row_groups_read, 1);
        assert_eq!(m.row_groups_skipped, 7);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0][0], Cell::Int(35));
        std::fs::remove_dir_all(rd).ok();
        std::fs::remove_dir_all(cd).ok();
    }

    #[test]
    fn raw_and_cache_sargs_combine() {
        let (raw, cache, rd, cd) = setup("combine");
        let raw_sarg = SearchArgument::new().with(0, CmpOp::Lt, Cell::Int(10));
        let cache_sarg = SearchArgument::new().with(0, CmpOp::GtEq, Cell::Int(50));
        let p = CombinedScanProvider::new(
            Some(raw),
            vec![0],
            cache,
            vec![0],
            out_schema(),
            Some(raw_sarg),
            Some(cache_sarg),
        );
        let mut m = ExecMetrics::default();
        let rows = p.scan(&mut m).unwrap();
        // id < 10 AND va >= 50 -> ids 5..9 (row group [5..9]).
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0][0], Cell::Int(5));
        std::fs::remove_dir_all(rd).ok();
        std::fs::remove_dir_all(cd).ok();
    }

    #[test]
    fn cache_only_scan_never_opens_raw() {
        let (_raw, cache, rd, cd) = setup("cacheonly");
        let schema = Schema::new(vec![Field::new("va", ColumnType::Utf8)]).unwrap();
        let p = CombinedScanProvider::new(None, vec![], cache, vec![0], schema, None, None);
        assert!(p.is_cache_only());
        let mut m = ExecMetrics::default();
        let rows = p.scan(&mut m).unwrap();
        assert_eq!(rows.len(), 40);
        assert_eq!(m.cache_hits, 40);
        assert!(p.label().contains("cache-only"));
        std::fs::remove_dir_all(rd).ok();
        std::fs::remove_dir_all(cd).ok();
    }

    #[test]
    fn split_scan_concatenation_matches_whole_scan() {
        let (raw, cache, rd, cd) = setup("splitpair");
        let sarg = SearchArgument::new().with(0, CmpOp::GtEq, Cell::Int(150));
        let p = CombinedScanProvider::new(
            Some(raw),
            vec![0],
            cache,
            vec![0],
            out_schema(),
            None,
            Some(sarg),
        );
        assert_eq!(p.split_count(), 2);
        let mut whole_m = ExecMetrics::default();
        let whole = p.scan(&mut whole_m).unwrap();
        let mut split_m = ExecMetrics::default();
        let mut stitched = Vec::new();
        for s in 0..p.split_count() {
            stitched.extend(p.scan_split(s, &mut split_m).unwrap());
        }
        assert_eq!(stitched, whole);
        assert_eq!(split_m.rows_scanned, whole_m.rows_scanned);
        assert_eq!(split_m.row_groups_skipped, whole_m.row_groups_skipped);
        assert_eq!(split_m.row_groups_read, whole_m.row_groups_read);
        assert_eq!(split_m.cache_hits, whole_m.cache_hits);
        std::fs::remove_dir_all(rd).ok();
        std::fs::remove_dir_all(cd).ok();
    }

    #[test]
    fn misaligned_split_is_detected() {
        let (raw, _cache, rd, cd) = setup("misaligned");
        // Build a cache table with a different row count.
        let bad_dir = temp_dir("misaligned-bad");
        let schema = Schema::new(vec![Field::new("va", ColumnType::Utf8)]).unwrap();
        let mut bad = Table::create(&bad_dir, schema, 0).unwrap();
        let rows: Vec<Vec<Cell>> = (0..7).map(|i| vec![Cell::from(format!("{i}"))]).collect();
        bad.append_file(&rows, WriteOptions::default(), 1).unwrap();
        bad.append_file(&rows, WriteOptions::default(), 1).unwrap();
        let p =
            CombinedScanProvider::new(Some(raw), vec![0], bad, vec![0], out_schema(), None, None);
        let mut m = ExecMetrics::default();
        let err = p.scan(&mut m).unwrap_err();
        assert!(err.to_string().contains("misalignment"));
        std::fs::remove_dir_all(rd).ok();
        std::fs::remove_dir_all(cd).ok();
        std::fs::remove_dir_all(bad_dir).ok();
    }

    #[test]
    fn multi_stripe_cache_file_disables_sharing() {
        // Cache file written with multiple stripes: SARG must not skip.
        let raw_schema = Schema::new(vec![Field::new("id", ColumnType::Int64)]).unwrap();
        let cache_schema = Schema::new(vec![Field::new("va", ColumnType::Utf8)]).unwrap();
        let rd = temp_dir("multistripe-raw");
        let cd = temp_dir("multistripe-cache");
        let mut raw = Table::create(&rd, raw_schema, 0).unwrap();
        let mut cache = Table::create(&cd, cache_schema, 0).unwrap();
        let raw_rows: Vec<Vec<Cell>> = (0..20).map(|i| vec![Cell::Int(i)]).collect();
        let cache_rows: Vec<Vec<Cell>> =
            (0..20).map(|i| vec![Cell::from(format!("{i}"))]).collect();
        raw.append_file(
            &raw_rows,
            WriteOptions {
                row_group_size: 5,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        cache
            .append_file(
                &cache_rows,
                WriteOptions {
                    row_group_size: 5,
                    row_groups_per_stripe: 1,
                },
                1,
            )
            .unwrap();
        let sarg = SearchArgument::new().with(0, CmpOp::GtEq, Cell::Int(100));
        let schema = Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("va", ColumnType::Utf8),
        ])
        .unwrap();
        let p =
            CombinedScanProvider::new(Some(raw), vec![0], cache, vec![0], schema, None, Some(sarg));
        let mut m = ExecMetrics::default();
        let rows = p.scan(&mut m).unwrap();
        assert_eq!(rows.len(), 20, "no skipping on multi-stripe files");
        assert_eq!(m.row_groups_skipped, 0);
        std::fs::remove_dir_all(rd).ok();
        std::fs::remove_dir_all(cd).ok();
    }
}
