//! The end-to-end "every midnight" cycle.
//!
//! [`MaxsonPipeline`] wires the whole system together the way the paper's
//! deployment runs it (§III-B): collect query statistics, predict
//! tomorrow's MPJPs, score them, populate the cache under the budget, and
//! install the plan rewriter on the session. Benchmarks and examples call
//! this once per simulated day.

use std::path::PathBuf;

use maxson_engine::session::Session;
use maxson_predictor::features::FeatureConfig;
use maxson_storage::Catalog;
use maxson_trace::{JsonPathCollector, QueryRecord};

use crate::cacher::{CacheReport, JsonPathCacher};
use crate::error::Result;
use crate::mpjp::{predict_mpjps, MpjpCandidate, PredictorKind, TrainedPredictor};
use crate::rewriter::MaxsonScanRewriter;
use crate::score::{score_candidates, ScoredMpjp};

/// How the ranked candidate list is ordered before greedy admission —
/// the scoring-function ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringStrategy {
    /// The paper's full product `Score = A_j · R_j · O_j`.
    #[default]
    Full,
    /// Acceleration-per-byte only (`A_j`).
    AccelerationOnly,
    /// Relevance only (`R_j`).
    RelevanceOnly,
    /// Occurrence only (`O_j`).
    OccurrenceOnly,
    /// Random order (Fig. 11's baseline).
    Random,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Cache byte budget (the Fig. 11 axis).
    pub budget_bytes: u64,
    /// Predictor kind.
    pub predictor: PredictorKind,
    /// Feature window (Table IV's axis).
    pub features: FeatureConfig,
    /// How candidates are ranked for admission.
    pub scoring: ScoringStrategy,
    /// Random selection seed (only used with [`ScoringStrategy::Random`]).
    pub random_seed: u64,
    /// Enable Algorithm 3 pushdown on the installed rewriter.
    pub enable_pushdown: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            budget_bytes: u64::MAX,
            predictor: PredictorKind::LstmCrf,
            features: FeatureConfig::default(),
            scoring: ScoringStrategy::Full,
            random_seed: 7,
            enable_pushdown: true,
        }
    }
}

/// Output of one nightly cycle.
#[derive(Debug)]
pub struct CycleReport {
    /// Predicted MPJPs for tomorrow.
    pub predicted: usize,
    /// The ranked (or shuffled) candidate list as admitted to the cacher.
    pub ranked: Vec<ScoredMpjp>,
    /// Cacher outcome.
    pub cache: CacheReport,
}

/// The orchestrator.
pub struct MaxsonPipeline {
    root: PathBuf,
    config: PipelineConfig,
    collector: JsonPathCollector,
}

impl MaxsonPipeline {
    /// Create a pipeline over the warehouse at `root`.
    pub fn new(root: impl Into<PathBuf>, config: PipelineConfig) -> Self {
        MaxsonPipeline {
            root: root.into(),
            config,
            collector: JsonPathCollector::new(),
        }
    }

    /// Feed historical query records into the collector.
    pub fn observe<'a>(&mut self, queries: impl IntoIterator<Item = &'a QueryRecord>) {
        self.collector.observe_all(queries);
    }

    /// Access the collector (for analytics).
    pub fn collector(&self) -> &JsonPathCollector {
        &self.collector
    }

    /// Run the midnight cycle for `today` (predicting day `today + 1`):
    /// predict, score, cache, and install the rewriter on `session`.
    pub fn run_midnight_cycle(
        &mut self,
        session: &mut Session,
        history: &[QueryRecord],
        today: u32,
        now: u64,
    ) -> Result<CycleReport> {
        // Stages record into the session's tracer, so the offline cycle
        // shows up in the same Chrome trace as the queries it accelerates.
        let tracer = session.tracer().clone();
        let cycle = tracer.span("midnight_cycle");
        cycle.attr("day", today);
        let telemetry = std::sync::Arc::clone(session.metrics_registry());
        let cycle_start = std::time::Instant::now();

        // 1. Predict MPJPs.
        let stage = tracer.child("predict", cycle.id());
        let predictor = TrainedPredictor::train(
            self.config.predictor,
            &self.collector,
            &self.config.features,
        );
        let candidates: Vec<MpjpCandidate> =
            predict_mpjps(&self.collector, &predictor, today, &self.config.features);
        stage.attr("candidates", candidates.len());
        drop(stage);

        // 2. Score, then order per the configured strategy.
        let stage = tracer.child("score", cycle.id());
        let mut ranked = score_candidates(&session.catalog(), &candidates, history)?;
        match self.config.scoring {
            ScoringStrategy::Full => {}
            ScoringStrategy::AccelerationOnly => {
                ranked.sort_by(|a, b| cmp_f64(b.acceleration, a.acceleration))
            }
            ScoringStrategy::RelevanceOnly => {
                ranked.sort_by(|a, b| cmp_f64(b.relevance, a.relevance))
            }
            ScoringStrategy::OccurrenceOnly => {
                ranked.sort_by_key(|s| std::cmp::Reverse(s.occurrence))
            }
            ScoringStrategy::Random => shuffle(&mut ranked, self.config.random_seed),
        }
        stage.attr("ranked", ranked.len());
        drop(stage);

        // 3. Populate the cache against a *work* catalog opened outside the
        //    session's warehouse lock: concurrent queries keep planning
        //    against the previous epoch while the cache tables build.
        let stage = tracer.child("cache_build", cycle.id());
        let cacher = JsonPathCacher::new(self.config.budget_bytes);
        // Share the warehouse's Norc footer cache so cache-table reads
        // through the installed rewriter stay in the process-wide LRU.
        let meta_cache = std::sync::Arc::clone(session.catalog().meta_cache());
        let mut work = Catalog::open_with_cache(&self.root, meta_cache)?;
        let (registry, cache_report) = cacher.populate(&mut work, &ranked, now)?;
        if stage.is_recording() {
            stage.attr("cached", cache_report.cached.len());
            stage.attr("bytes_used", cache_report.bytes_used);
            stage.attr("skipped", cache_report.skipped.len());
        }
        drop(stage);

        // 4. Install atomically: one epoch swap replaces the catalog and
        //    rewriter together, so every in-flight query sees either the
        //    old warehouse or the new one, never a mix. The work catalog
        //    already holds the fresh cache tables, so it doubles as the
        //    rewriter's read handle.
        let stage = tracer.child("install_rewriter", cycle.id());
        let mut rewriter = MaxsonScanRewriter::with_registry(work, registry);
        rewriter.enable_pushdown = self.config.enable_pushdown;
        rewriter.set_tracer(tracer.clone());
        rewriter.set_metrics_registry(std::sync::Arc::clone(&telemetry));
        let epoch = session.swap_warehouse_epoch(Some(Box::new(rewriter)))?;
        stage.attr("epoch", epoch);
        drop(stage);
        drop(cycle);
        session.flush_trace()?;

        // The cycle itself is telemetry-visible: one counter per run, the
        // standing cache footprint, and the offline build latency.
        telemetry.counter("maxson_midnight_cycles_total", &[]).inc();
        telemetry
            .counter("maxson_cache_paths_built_total", &[])
            .add(cache_report.cached.len() as u64);
        telemetry
            .gauge("maxson_cache_bytes_used", &[])
            .set(cache_report.bytes_used);
        telemetry.gauge("maxson_cache_epoch", &[]).max(epoch);
        telemetry
            .histogram("maxson_cycle_wall_seconds", &[])
            .observe(cycle_start.elapsed());

        Ok(CycleReport {
            predicted: candidates.len(),
            ranked,
            cache: cache_report,
        })
    }
}

fn cmp_f64(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}

/// Deterministic Fisher-Yates with an xorshift generator (no ordering
/// bias, no dependence on `rand` here).
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxson_storage::file::WriteOptions;
    use maxson_storage::{Cell, ColumnType, Field, Schema};
    use maxson_trace::model::RecurrenceClass;
    use maxson_trace::JsonPathLocation;

    fn temp_root(name: &str) -> PathBuf {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        std::env::temp_dir().join(format!(
            "maxson-pipeline-{}-{nanos}-{name}",
            std::process::id()
        ))
    }

    fn setup(name: &str) -> (Session, PathBuf) {
        let root = temp_root(name);
        let mut session = Session::open(&root).unwrap();
        let schema = Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("payload", ColumnType::Utf8),
        ])
        .unwrap();
        let mut catalog = session.catalog_mut();
        let t = catalog.create_table("db", "t", schema, 0).unwrap();
        let rows: Vec<Vec<Cell>> = (0..50)
            .map(|i| {
                vec![
                    Cell::Int(i),
                    Cell::from(format!(r#"{{"a": {i}, "b": "v{i}", "c": {}}}"#, i * 2)),
                ]
            })
            .collect();
        t.append_file(
            &rows,
            WriteOptions {
                row_group_size: 10,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        drop(catalog);
        (session, root)
    }

    fn loc(path: &str) -> JsonPathLocation {
        JsonPathLocation::new("db", "t", "payload", path)
    }

    /// A daily history where $.a and $.b are parsed twice a day and $.c
    /// once a day.
    fn history(days: u32) -> Vec<QueryRecord> {
        let mut out = Vec::new();
        let mut id = 0;
        for day in 0..days {
            for (paths, user) in [
                (vec!["$.a", "$.b"], 1u32),
                (vec!["$.a", "$.b"], 2),
                (vec!["$.c"], 3),
            ] {
                out.push(QueryRecord {
                    query_id: id,
                    user_id: user,
                    day,
                    hour: 9,
                    recurrence: RecurrenceClass::Daily,
                    paths: paths.iter().map(|p| loc(p)).collect(),
                });
                id += 1;
            }
        }
        out
    }

    #[test]
    fn midnight_cycle_caches_mpjps_and_accelerates() {
        let (mut session, root) = setup("cycle");
        let queries = history(20);
        let mut pipeline = MaxsonPipeline::new(
            &root,
            PipelineConfig {
                predictor: PredictorKind::Oracle,
                ..Default::default()
            },
        );
        pipeline.observe(queries.iter());
        let today = 18; // predict day 19, which exists in the history
        let report = pipeline
            .run_midnight_cycle(&mut session, &queries, today, 100)
            .unwrap();
        assert_eq!(report.predicted, 2, "only $.a and $.b are MPJPs");
        assert_eq!(report.cache.cached.len(), 2);

        // A query over the cached paths must be served without parsing.
        let sql = "select get_json_object(payload, '$.a') as a, \
                   get_json_object(payload, '$.b') as b from db.t";
        let result = session.execute(sql).unwrap();
        assert_eq!(result.rows.len(), 50);
        assert_eq!(result.rows[3][0], Cell::Str("3".into()));
        assert_eq!(result.metrics.parse_calls, 0, "all calls cached");
        assert!(result.metrics.cache_hits > 0);

        // A query over the uncached path still parses.
        let result = session
            .execute("select get_json_object(payload, '$.c') as c from db.t")
            .unwrap();
        assert!(result.metrics.parse_calls > 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn cached_and_uncached_mix_in_one_query() {
        let (mut session, root) = setup("mix");
        let queries = history(20);
        let mut pipeline = MaxsonPipeline::new(
            &root,
            PipelineConfig {
                predictor: PredictorKind::Oracle,
                ..Default::default()
            },
        );
        pipeline.observe(queries.iter());
        pipeline
            .run_midnight_cycle(&mut session, &queries, 18, 100)
            .unwrap();
        let sql = "select id, get_json_object(payload, '$.a') as a, \
                   get_json_object(payload, '$.c') as c from db.t where id < 5";
        let result = session.execute(sql).unwrap();
        assert_eq!(result.rows.len(), 5);
        assert_eq!(result.rows[2][1], Cell::Str("2".into()));
        assert_eq!(result.rows[2][2], Cell::Str("4".into()));
        // $.a is cached (no parse); $.c is parsed, but only for the rows
        // surviving the filter (projection runs after the WHERE).
        assert_eq!(result.metrics.parse_calls, 5);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn pushdown_on_cached_predicate_reduces_reads() {
        let (mut session, root) = setup("pushdown");
        let queries = history(20);
        let mut pipeline = MaxsonPipeline::new(
            &root,
            PipelineConfig {
                predictor: PredictorKind::Oracle,
                ..Default::default()
            },
        );
        pipeline.observe(queries.iter());
        pipeline
            .run_midnight_cycle(&mut session, &queries, 18, 100)
            .unwrap();
        let sql = "select get_json_object(payload, '$.a') as a from db.t \
                   where get_json_object(payload, '$.a') >= 45";
        let result = session.execute(sql).unwrap();
        assert_eq!(result.rows.len(), 5);
        assert!(
            result.metrics.row_groups_skipped >= 4,
            "skipped {} groups",
            result.metrics.row_groups_skipped
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn pushdown_can_be_disabled() {
        let (mut session, root) = setup("nopush");
        let queries = history(20);
        let mut pipeline = MaxsonPipeline::new(
            &root,
            PipelineConfig {
                predictor: PredictorKind::Oracle,
                enable_pushdown: false,
                ..Default::default()
            },
        );
        pipeline.observe(queries.iter());
        pipeline
            .run_midnight_cycle(&mut session, &queries, 18, 100)
            .unwrap();
        let sql = "select get_json_object(payload, '$.a') as a from db.t \
                   where get_json_object(payload, '$.a') >= 45";
        let result = session.execute(sql).unwrap();
        assert_eq!(result.rows.len(), 5);
        assert_eq!(result.metrics.row_groups_skipped, 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn random_strategy_caches_same_count_under_full_budget() {
        let (mut session, root) = setup("random");
        let queries = history(20);
        let mut pipeline = MaxsonPipeline::new(
            &root,
            PipelineConfig {
                predictor: PredictorKind::Oracle,
                scoring: ScoringStrategy::Random,
                ..Default::default()
            },
        );
        pipeline.observe(queries.iter());
        let report = pipeline
            .run_midnight_cycle(&mut session, &queries, 18, 100)
            .unwrap();
        // With an unlimited budget, random vs scored selects the same set
        // (Fig. 11's 400 GB point).
        assert_eq!(report.cache.cached.len(), 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn stale_cache_is_not_served() {
        let (mut session, root) = setup("stale");
        let queries = history(20);
        let mut pipeline = MaxsonPipeline::new(
            &root,
            PipelineConfig {
                predictor: PredictorKind::Oracle,
                ..Default::default()
            },
        );
        pipeline.observe(queries.iter());
        pipeline
            .run_midnight_cycle(&mut session, &queries, 18, 100)
            .unwrap();
        // Mid-day update: append a row at a later logical time.
        session
            .catalog_mut()
            .table_mut("db", "t")
            .unwrap()
            .append_file(
                &[vec![Cell::Int(999), Cell::Str(r#"{"a": 999}"#.into())]],
                WriteOptions::default(),
                200,
            )
            .unwrap();
        // Reinstall the rewriter so its catalog sees the new mod time (the
        // paper's Algorithm 1 reads table metadata at planning time).
        let rewriter = MaxsonScanRewriter::open(&root).unwrap();
        session.set_scan_rewriter(Some(Box::new(rewriter)));
        let result = session
            .execute("select get_json_object(payload, '$.a') as a from db.t")
            .unwrap();
        // All 51 rows parsed (cache invalid), none served stale.
        assert_eq!(result.rows.len(), 51);
        assert_eq!(result.metrics.parse_calls, 51);
        assert_eq!(result.metrics.cache_hits, 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn shuffle_is_deterministic_permutation() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b: Vec<u32> = (0..20).collect();
        shuffle(&mut a, 5);
        shuffle(&mut b, 5);
        assert_eq!(a, b);
        let mut c: Vec<u32> = (0..20).collect();
        shuffle(&mut c, 6);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
    }
}

#[cfg(test)]
mod indexed_path_tests {
    use super::*;
    use crate::mpjp::PredictorKind;
    use maxson_storage::file::WriteOptions;
    use maxson_storage::{Cell, ColumnType, Field, Schema};
    use maxson_trace::model::RecurrenceClass;
    use maxson_trace::JsonPathLocation;

    /// Array-indexed and quoted-field JSONPaths must survive the cacher's
    /// field-name sanitization and resolve back through the rewriter.
    #[test]
    fn indexed_and_quoted_paths_cache_correctly() {
        use maxson_engine::session::Session;
        let root = std::env::temp_dir().join(format!(
            "maxson-idxpath-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let mut session = Session::open(&root).unwrap();
        let schema = Schema::new(vec![Field::new("payload", ColumnType::Utf8)]).unwrap();
        let mut catalog = session.catalog_mut();
        let t = catalog.create_table("db", "t", schema, 0).unwrap();
        let rows: Vec<Vec<Cell>> = (0..20)
            .map(|i| {
                vec![Cell::from(format!(
                    r#"{{"tags": ["first-{i}", "second-{i}"], "odd key": {i}}}"#
                ))]
            })
            .collect();
        t.append_file(&rows, WriteOptions::default(), 1).unwrap();

        let paths = ["$.tags[0]", "$.tags[1]", "$['odd key']"];
        let history: Vec<QueryRecord> = (0..8u32)
            .flat_map(|day| {
                (0..2u32).map(move |user| QueryRecord {
                    query_id: u64::from(day * 2 + user),
                    user_id: user,
                    day,
                    hour: 9,
                    recurrence: RecurrenceClass::Daily,
                    paths: paths
                        .iter()
                        .map(|p| JsonPathLocation::new("db", "t", "payload", *p))
                        .collect(),
                })
            })
            .collect();
        drop(catalog);
        let mut pipeline = MaxsonPipeline::new(
            &root,
            PipelineConfig {
                predictor: PredictorKind::RepeatYesterday,
                ..Default::default()
            },
        );
        pipeline.observe(history.iter());
        let report = pipeline
            .run_midnight_cycle(&mut session, &history, 6, 100)
            .unwrap();
        assert_eq!(report.cache.cached.len(), 3);

        let sql = "select get_json_object(payload, '$.tags[0]') as a, \
                   get_json_object(payload, '$.tags[1]') as b, \
                   get_json_object(payload, '$[''odd key'']') as c from db.t";
        let result = session.execute(sql).unwrap();
        assert_eq!(result.rows[5][0], Cell::Str("first-5".into()));
        assert_eq!(result.rows[5][1], Cell::Str("second-5".into()));
        assert_eq!(result.rows[5][2], Cell::Str("5".into()));
        assert_eq!(result.metrics.parse_calls, 0, "all three paths cached");
        std::fs::remove_dir_all(&root).ok();
    }
}
