//! Error type for the Maxson core crate.

use std::fmt;

use maxson_engine::EngineError;
use maxson_storage::StorageError;

/// Result alias used throughout `maxson`.
pub type Result<T> = std::result::Result<T, MaxsonError>;

/// Errors raised by the prediction/caching pipeline.
#[derive(Debug)]
pub enum MaxsonError {
    /// Storage layer failure.
    Storage(StorageError),
    /// Query engine failure.
    Engine(EngineError),
    /// Invalid configuration or state.
    Invalid {
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for MaxsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaxsonError::Storage(e) => write!(f, "storage error: {e}"),
            MaxsonError::Engine(e) => write!(f, "engine error: {e}"),
            MaxsonError::Invalid { detail } => write!(f, "invalid: {detail}"),
        }
    }
}

impl std::error::Error for MaxsonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MaxsonError::Storage(e) => Some(e),
            MaxsonError::Engine(e) => Some(e),
            MaxsonError::Invalid { .. } => None,
        }
    }
}

impl From<StorageError> for MaxsonError {
    fn from(e: StorageError) -> Self {
        MaxsonError::Storage(e)
    }
}

impl From<EngineError> for MaxsonError {
    fn from(e: EngineError) -> Self {
        MaxsonError::Engine(e)
    }
}

impl MaxsonError {
    /// Convenience constructor.
    pub fn invalid(detail: impl Into<String>) -> Self {
        MaxsonError::Invalid {
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = MaxsonError::invalid("bad budget");
        assert!(e.to_string().contains("bad budget"));
        let e: MaxsonError = StorageError::corrupt("x").into();
        assert!(matches!(e, MaxsonError::Storage(_)));
        let e: MaxsonError = EngineError::plan("y").into();
        assert!(matches!(e, MaxsonError::Engine(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
