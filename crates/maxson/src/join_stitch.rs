//! The naive cached/uncached stitching baseline: a row-number join.
//!
//! §I of the paper: "The naive method is to join the raw data table and
//! cache table to find the complete record, but the join operations can be
//! costly." This provider implements exactly that baseline so the ablation
//! benchmark can quantify what the synchronized two-reader combiner saves:
//! both tables are materialized in full, keyed by their global row number,
//! and hash-joined back together.
//!
//! Differences from [`crate::combiner::CombinedScanProvider`]:
//!
//! * every row of both tables is read (no shared row-group skipping — a
//!   SARG on the cache table cannot restrict the raw side, because rows
//!   are matched by key lookup, not position),
//! * a hash table of `rows` entries is built and probed,
//! * output order follows the raw table (as the combiner's does), so the
//!   two strategies stay result-equivalent.

use std::collections::HashMap;
use std::time::Instant;

use maxson_engine::metrics::ExecMetrics;
use maxson_engine::scan::ScanProvider;
use maxson_obs::Tracer;
use maxson_storage::{Cell, Schema, Table};

/// Join-based stitching provider (ablation baseline).
#[derive(Debug)]
pub struct JoinStitchProvider {
    raw: Table,
    raw_projection: Vec<usize>,
    cache: Table,
    cache_projection: Vec<usize>,
    out_schema: Schema,
    tracer: Tracer,
}

impl JoinStitchProvider {
    /// Build the provider. `out_schema` lists the raw projection fields
    /// followed by the cache projection fields (same contract as the
    /// combiner).
    pub fn new(
        raw: Table,
        raw_projection: Vec<usize>,
        cache: Table,
        cache_projection: Vec<usize>,
        out_schema: Schema,
    ) -> Self {
        JoinStitchProvider {
            raw,
            raw_projection,
            cache,
            cache_projection,
            out_schema,
            tracer: Tracer::disabled(),
        }
    }

    /// Install the tracer stitch counters are recorded into.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }
}

fn read_all(
    table: &Table,
    projection: &[usize],
    metrics: &mut ExecMetrics,
) -> maxson_engine::Result<Vec<Vec<Cell>>> {
    let mut rows = Vec::new();
    for split in 0..table.file_count() {
        let file = table
            .open_split(split)
            .map_err(maxson_engine::EngineError::Storage)?;
        metrics.row_groups_read += file.row_group_count() as u64;
        let cols = file
            .read_columns(projection, None)
            .map_err(maxson_engine::EngineError::Storage)?;
        let n = cols.first().map_or(0, |c| c.len());
        for i in 0..n {
            let row: Vec<Cell> = cols.iter().map(|c| c.get(i)).collect();
            metrics.bytes_read += row.iter().map(Cell::byte_size).sum::<usize>() as u64;
            rows.push(row);
        }
    }
    Ok(rows)
}

impl ScanProvider for JoinStitchProvider {
    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn scan(&self, metrics: &mut ExecMetrics) -> maxson_engine::Result<Vec<Vec<Cell>>> {
        let start = Instant::now();
        // Materialize both sides in full.
        let raw_rows = read_all(&self.raw, &self.raw_projection, metrics)?;
        let cache_rows = read_all(&self.cache, &self.cache_projection, metrics)?;
        if raw_rows.len() != cache_rows.len() {
            return Err(maxson_engine::EngineError::exec(format!(
                "join stitch: raw has {} rows, cache has {}",
                raw_rows.len(),
                cache_rows.len()
            )));
        }
        // Build: cache side keyed by global row number.
        let mut build: HashMap<u64, &Vec<Cell>> = HashMap::with_capacity(cache_rows.len());
        for (i, row) in cache_rows.iter().enumerate() {
            build.insert(i as u64, row);
        }
        // Probe: raw side in order.
        let mut out = Vec::with_capacity(raw_rows.len());
        for (i, raw_row) in raw_rows.into_iter().enumerate() {
            let cache_row = build
                .get(&(i as u64))
                .ok_or_else(|| maxson_engine::EngineError::exec("row key missing".to_string()))?;
            let mut combined = raw_row;
            combined.extend((*cache_row).iter().cloned());
            metrics.cache_hits += self.cache_projection.len() as u64;
            out.push(combined);
        }
        metrics.rows_scanned += out.len() as u64;
        let spent = start.elapsed();
        metrics.read += spent;
        metrics.read_wall += spent;
        self.tracer.add("join_stitch.joined_rows", out.len() as u64);
        Ok(out)
    }

    fn label(&self) -> String {
        format!(
            "JoinStitchScan(raw_cols={:?}, cache_cols={:?})",
            self.raw_projection, self.cache_projection
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::CombinedScanProvider;
    use maxson_storage::file::WriteOptions;
    use maxson_storage::{ColumnType, Field};
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        std::env::temp_dir().join(format!("maxson-js-{}-{nanos}-{name}", std::process::id()))
    }

    fn tables(name: &str) -> (Table, Table, PathBuf, PathBuf) {
        let raw_schema = Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("payload", ColumnType::Utf8),
        ])
        .unwrap();
        let cache_schema = Schema::new(vec![Field::new("va", ColumnType::Utf8)]).unwrap();
        let rd = temp_dir(&format!("{name}-raw"));
        let cd = temp_dir(&format!("{name}-cache"));
        let mut raw = Table::create(&rd, raw_schema, 0).unwrap();
        let mut cache = Table::create(&cd, cache_schema, 0).unwrap();
        let opts = WriteOptions {
            row_group_size: 7,
            ..Default::default()
        };
        for f in 0..3i64 {
            let raw_rows: Vec<Vec<Cell>> = (0..15)
                .map(|i| {
                    let n = f * 15 + i;
                    vec![Cell::Int(n), Cell::from(format!("{{\"a\":{n}}}"))]
                })
                .collect();
            let cache_rows: Vec<Vec<Cell>> = (0..15)
                .map(|i| vec![Cell::from(format!("{}", f * 15 + i))])
                .collect();
            raw.append_file(&raw_rows, opts, 1).unwrap();
            cache.append_file(&cache_rows, opts, 1).unwrap();
        }
        (raw, cache, rd, cd)
    }

    fn out_schema() -> Schema {
        Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("va", ColumnType::Utf8),
        ])
        .unwrap()
    }

    #[test]
    fn join_stitch_produces_same_rows_as_combiner() {
        let (raw, cache, rd, cd) = tables("equiv");
        let combiner = CombinedScanProvider::new(
            Some(raw.clone()),
            vec![0],
            cache.clone(),
            vec![0],
            out_schema(),
            None,
            None,
        );
        let join = JoinStitchProvider::new(raw, vec![0], cache, vec![0], out_schema());
        let mut m1 = ExecMetrics::default();
        let mut m2 = ExecMetrics::default();
        let a = combiner.scan(&mut m1).unwrap();
        let b = join.scan(&mut m2).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.len(), 45);
        assert_eq!(b[44], vec![Cell::Int(44), Cell::Str("44".into())]);
        std::fs::remove_dir_all(rd).ok();
        std::fs::remove_dir_all(cd).ok();
    }

    #[test]
    fn join_stitch_detects_row_count_mismatch() {
        let (raw, _cache, rd, cd) = tables("mismatch");
        let bad_dir = temp_dir("mismatch-bad");
        let schema = Schema::new(vec![Field::new("va", ColumnType::Utf8)]).unwrap();
        let mut bad = Table::create(&bad_dir, schema, 0).unwrap();
        bad.append_file(&[vec![Cell::Str("x".into())]], WriteOptions::default(), 1)
            .unwrap();
        let join = JoinStitchProvider::new(raw, vec![0], bad, vec![0], out_schema());
        let mut m = ExecMetrics::default();
        assert!(join.scan(&mut m).is_err());
        std::fs::remove_dir_all(rd).ok();
        std::fs::remove_dir_all(cd).ok();
        std::fs::remove_dir_all(bad_dir).ok();
    }

    #[test]
    fn label_mentions_strategy() {
        let (raw, cache, rd, cd) = tables("label");
        let join = JoinStitchProvider::new(raw, vec![0], cache, vec![0], out_schema());
        assert!(join.label().contains("JoinStitch"));
        std::fs::remove_dir_all(rd).ok();
        std::fs::remove_dir_all(cd).ok();
    }
}
