//! The nightly MPJP prediction step.
//!
//! Every midnight, Maxson predicts which JSONPaths will be parsed at least
//! twice the coming day (§IV-A). This module turns a query history into
//! that prediction: it folds the trace through the JSONPath Collector,
//! builds the feature window for each path ending *today*, and asks a
//! predictor for tomorrow's label.

use maxson_predictor::crf::LstmCrf;
use maxson_predictor::features::{FeatureConfig, SequenceExample};
use maxson_predictor::linear::{LinearConfig, LinearModel, Loss};
use maxson_predictor::lstm::{LstmConfig, LstmLabeler};
use maxson_predictor::mlp::{MlpClassifier, MlpConfig};
use maxson_predictor::{build_dataset, MpjpModel};
use maxson_trace::{JsonPathCollector, JsonPathLocation};

/// Which predictor drives MPJP selection (Table III's model axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Logistic regression baseline.
    Lr,
    /// Linear SVM baseline.
    Svm,
    /// MLP baseline.
    Mlp,
    /// Uni-LSTM baseline.
    Lstm,
    /// The paper's hybrid model.
    LstmCrf,
    /// Oracle: perfect knowledge of tomorrow (upper bound for tests).
    Oracle,
    /// History heuristic: predict MPJP if the path was an MPJP today
    /// (simple non-ML baseline).
    RepeatYesterday,
}

/// One predicted MPJP candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct MpjpCandidate {
    /// The path's warehouse location.
    pub location: JsonPathLocation,
    /// The day the prediction targets (tomorrow).
    pub target_day: u32,
}

/// Build the feature window for one path ending at `today`.
fn window_example(
    collector: &JsonPathCollector,
    loc: &JsonPathLocation,
    today: u32,
    config: &FeatureConfig,
) -> SequenceExample {
    let w = config.window as u32;
    let start = today.saturating_sub(w - 1);
    let steps: Vec<Vec<f64>> = (start..=today)
        .map(|d| {
            let count = collector.count_on(loc, d);
            let datediff = today - d + 1;
            step_features(config, loc, count, datediff)
        })
        .collect();
    // Labels are unknown for the future; fill with the historical labels
    // shifted by one (only used during training, not at prediction time).
    let labels: Vec<bool> = (start..=today)
        .map(|d| collector.is_mpjp(loc, d + 1))
        .collect();
    SequenceExample {
        location: loc.clone(),
        day: today,
        steps,
        labels,
    }
}

/// Re-derivation of the feature builder for single windows (kept in sync
/// with `maxson_predictor::features` by the cross-check test below).
fn step_features(
    config: &FeatureConfig,
    loc: &JsonPathLocation,
    count: u32,
    datediff: u32,
) -> Vec<f64> {
    // Reuse the canonical builder through a one-day dataset would be
    // wasteful; the predictor crate exposes the exact function via
    // build_dataset, so we mirror its layout here.
    let mut v = vec![0.0; config.feature_dim()];
    let bucket = |s: &str, salt: u64| -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt;
        for b in s.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h % config.location_buckets as u64) as usize
    };
    v[bucket(&loc.database, 1)] = 1.0;
    v[config.location_buckets + bucket(&loc.table, 2)] = 1.0;
    v[2 * config.location_buckets + bucket(&loc.column, 3)] = 1.0;
    let base = 3 * config.location_buckets;
    v[base] = f64::from(count).min(50.0) / 50.0;
    v[base + 1] = f64::from(count).ln_1p() / 5.0;
    v[base + 2] = if count >= 2 { 1.0 } else { 0.0 };
    v[base + 3] = f64::from(datediff) / config.window as f64;
    v
}

/// A trained predictor wrapped behind one dispatchable type.
pub enum TrainedPredictor {
    /// Linear model (LR or SVM).
    Linear(LinearModel),
    /// MLP.
    Mlp(MlpClassifier),
    /// Uni-LSTM.
    Lstm(LstmLabeler),
    /// Hybrid.
    LstmCrf(LstmCrf),
    /// Oracle / heuristic kinds need no training.
    Heuristic(PredictorKind),
}

impl TrainedPredictor {
    /// Train `kind` on the history in `collector` (all days up to
    /// `collector.max_day()`).
    pub fn train(
        kind: PredictorKind,
        collector: &JsonPathCollector,
        config: &FeatureConfig,
    ) -> Self {
        match kind {
            PredictorKind::Oracle | PredictorKind::RepeatYesterday => {
                TrainedPredictor::Heuristic(kind)
            }
            _ => {
                let dataset = build_dataset(collector, config.clone());
                let split = dataset.split();
                match kind {
                    PredictorKind::Lr => TrainedPredictor::Linear(LinearModel::train(
                        &split.train,
                        Loss::Logistic,
                        LinearConfig::default(),
                    )),
                    PredictorKind::Svm => TrainedPredictor::Linear(LinearModel::train(
                        &split.train,
                        Loss::Hinge,
                        LinearConfig::default(),
                    )),
                    PredictorKind::Mlp => TrainedPredictor::Mlp(MlpClassifier::train(
                        &split.train,
                        MlpConfig::default(),
                    )),
                    PredictorKind::Lstm => TrainedPredictor::Lstm(LstmLabeler::train(
                        &split.train,
                        LstmConfig::default(),
                    )),
                    PredictorKind::LstmCrf => TrainedPredictor::LstmCrf(LstmCrf::train(
                        &split.train,
                        LstmConfig::default(),
                    )),
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Predict whether `loc` will be an MPJP on `today + 1`.
    pub fn predict(
        &self,
        collector: &JsonPathCollector,
        loc: &JsonPathLocation,
        today: u32,
        config: &FeatureConfig,
    ) -> bool {
        match self {
            TrainedPredictor::Heuristic(PredictorKind::Oracle) => collector.is_mpjp(loc, today + 1),
            TrainedPredictor::Heuristic(_) => collector.is_mpjp(loc, today),
            model => {
                let ex = window_example(collector, loc, today, config);
                match model {
                    TrainedPredictor::Linear(m) => m.predict(&ex),
                    TrainedPredictor::Mlp(m) => m.predict(&ex),
                    TrainedPredictor::Lstm(m) => m.predict(&ex),
                    TrainedPredictor::LstmCrf(m) => m.predict(&ex),
                    TrainedPredictor::Heuristic(_) => unreachable!(),
                }
            }
        }
    }
}

/// Predict tomorrow's MPJPs over every path the collector has seen.
pub fn predict_mpjps(
    collector: &JsonPathCollector,
    predictor: &TrainedPredictor,
    today: u32,
    config: &FeatureConfig,
) -> Vec<MpjpCandidate> {
    collector
        .locations()
        .filter(|loc| predictor.predict(collector, loc, today, config))
        .map(|loc| MpjpCandidate {
            location: loc.clone(),
            target_day: today + 1,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxson_trace::{SynthConfig, TraceSynthesizer};

    fn collector() -> JsonPathCollector {
        let trace = TraceSynthesizer::new(SynthConfig {
            days: 30,
            tables: 8,
            users: 30,
            ..Default::default()
        })
        .generate();
        let mut c = JsonPathCollector::new();
        c.observe_all(trace.queries.iter());
        c
    }

    #[test]
    fn step_features_match_canonical_builder() {
        // Cross-check the mirrored feature layout against the predictor
        // crate's dataset builder on one real example.
        let c = collector();
        let config = FeatureConfig::default();
        let ds = build_dataset(&c, config.clone());
        let ex = &ds.examples[0];
        let w = config.window as u32;
        let start = ex.day - w;
        for (t, step) in ex.steps.iter().enumerate() {
            let d = start + t as u32;
            let count = c.count_on(&ex.location, d);
            let datediff = ex.day - d;
            let mirrored = step_features(&config, &ex.location, count, datediff);
            assert_eq!(step, &mirrored, "step {t} diverged");
        }
    }

    #[test]
    fn oracle_predicts_ground_truth() {
        let c = collector();
        let config = FeatureConfig::default();
        let oracle = TrainedPredictor::train(PredictorKind::Oracle, &c, &config);
        let today = c.max_day() - 1;
        let predicted = predict_mpjps(&c, &oracle, today, &config);
        for cand in &predicted {
            assert!(c.is_mpjp(&cand.location, today + 1));
            assert_eq!(cand.target_day, today + 1);
        }
        // And completeness: every true MPJP tomorrow is predicted.
        let truth = c.locations().filter(|l| c.is_mpjp(l, today + 1)).count();
        assert_eq!(predicted.len(), truth);
    }

    #[test]
    fn repeat_yesterday_heuristic() {
        let c = collector();
        let config = FeatureConfig::default();
        let h = TrainedPredictor::train(PredictorKind::RepeatYesterday, &c, &config);
        let today = c.max_day() - 1;
        for cand in predict_mpjps(&c, &h, today, &config) {
            assert!(c.is_mpjp(&cand.location, today));
        }
    }

    #[test]
    fn lstm_crf_predictor_beats_chance() {
        let c = collector();
        let config = FeatureConfig::default();
        let model = TrainedPredictor::train(PredictorKind::LstmCrf, &c, &config);
        let today = c.max_day() - 1;
        let predicted: std::collections::BTreeSet<String> =
            predict_mpjps(&c, &model, today, &config)
                .into_iter()
                .map(|m| m.location.key())
                .collect();
        // Measure F1 of the prediction against ground truth.
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        for loc in c.locations() {
            let truth = c.is_mpjp(loc, today + 1);
            let pred = predicted.contains(&loc.key());
            match (pred, truth) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                _ => {}
            }
        }
        let precision = if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        assert!(f1 > 0.6, "LSTM+CRF next-day F1 is only {f1}");
    }
}
