//! The scoring function of §IV-B.
//!
//! `Score_j = A_j · R_j · O_j` where
//!
//! * `A_j = P_j / B_j` — *acceleration per byte*: average parse cost of the
//!   path over average parsed-value size, measured by sampling rows from
//!   the raw table. `P_j` is a deterministic bytes-parsed proxy (mean raw
//!   document length): a full parse touches every input byte, so cost is
//!   proportional to document size, and using bytes instead of a wall
//!   clock keeps scores — and the cache tables built from them —
//!   reproducible across runs and machine load,
//! * `R_j` — *relevance*: over the queries that access `j`, the fraction of
//!   their JSONPaths that are MPJPs (`ΣM_i / ΣN_i`); caching high-relevance
//!   paths makes whole queries cache-only,
//! * `O_j` — *occurrence*: the number of queries that access `j`.

use std::collections::{BTreeMap, BTreeSet};

use maxson_json::JsonPath;
use maxson_storage::{Catalog, Cell};
use maxson_trace::{JsonPathLocation, QueryRecord};

use crate::error::{MaxsonError, Result};
use crate::mpjp::MpjpCandidate;

/// A candidate with its measured/derived scoring factors.
#[derive(Debug, Clone)]
pub struct ScoredMpjp {
    /// The path.
    pub location: JsonPathLocation,
    /// Deterministic parse-cost proxy per record (`P_j`): mean raw document
    /// bytes parsed. A full parse touches every byte, so cost is linear in
    /// document length; counting bytes instead of timing keeps scoring
    /// independent of machine load.
    pub parse_time: f64,
    /// Average parsed-value size in bytes (`B_j`).
    pub value_size: f64,
    /// Acceleration per byte (`A_j = P_j / B_j`).
    pub acceleration: f64,
    /// Relevance (`R_j`).
    pub relevance: f64,
    /// Occurrence count (`O_j`).
    pub occurrence: u64,
    /// Final score.
    pub score: f64,
    /// Estimated total cache footprint in bytes (`B_j × rows`).
    pub estimated_bytes: u64,
}

/// How many rows to sample per table when measuring `P_j` and `B_j`.
const SAMPLE_ROWS: usize = 64;

/// Measure `P_j`/`B_j` for every candidate and combine with `R_j`/`O_j`
/// from the recent query history. Returns candidates sorted by descending
/// score (the order the cacher consumes).
pub fn score_candidates(
    catalog: &Catalog,
    candidates: &[MpjpCandidate],
    history: &[QueryRecord],
) -> Result<Vec<ScoredMpjp>> {
    let mpjp_set: BTreeSet<String> = candidates.iter().map(|c| c.location.key()).collect();

    // Per-query M_i (MPJPs among its paths) and N_i (paths).
    // Also O_j per path.
    let mut occurrence: BTreeMap<String, u64> = BTreeMap::new();
    let mut relevance_num: BTreeMap<String, u64> = BTreeMap::new();
    let mut relevance_den: BTreeMap<String, u64> = BTreeMap::new();
    for q in history {
        let n_i = q.paths.len() as u64;
        if n_i == 0 {
            continue;
        }
        let m_i = q
            .paths
            .iter()
            .filter(|p| mpjp_set.contains(&p.key()))
            .count() as u64;
        let mut seen = BTreeSet::new();
        for p in &q.paths {
            if !mpjp_set.contains(&p.key()) || !seen.insert(p.key()) {
                continue;
            }
            *occurrence.entry(p.key()).or_default() += 1;
            *relevance_num.entry(p.key()).or_default() += m_i;
            *relevance_den.entry(p.key()).or_default() += n_i;
        }
    }

    // Group candidates per (db, table, column) so each table is sampled
    // once.
    let mut by_source: BTreeMap<(String, String, String), Vec<&MpjpCandidate>> = BTreeMap::new();
    for c in candidates {
        by_source
            .entry((
                c.location.database.clone(),
                c.location.table.clone(),
                c.location.column.clone(),
            ))
            .or_default()
            .push(c);
    }

    let mut scored = Vec::with_capacity(candidates.len());
    for ((db, table_name, column), cands) in by_source {
        let table = catalog.table(&db, &table_name)?;
        let col_idx = table.schema().index_of(&column).ok_or_else(|| {
            MaxsonError::invalid(format!("column {column} missing in {db}.{table_name}"))
        })?;
        let total_rows = table.num_rows()? as u64;
        // Sample the first rows of the first split.
        let mut sample: Vec<String> = Vec::new();
        if table.file_count() > 0 {
            let file = table.open_split(0)?;
            let cols = file.read_columns(&[col_idx], None)?;
            for i in 0..cols[0].len().min(SAMPLE_ROWS) {
                if let Cell::Str(s) = cols[0].get(i) {
                    sample.push(s.to_string());
                }
            }
        }
        for cand in cands {
            let path = JsonPath::parse(&cand.location.path)
                .map_err(|e| MaxsonError::invalid(format!("bad path: {e}")))?;
            let (parse_time, value_size) = measure(&sample, &path);
            let acceleration = if value_size > 0.0 {
                parse_time / value_size
            } else {
                0.0
            };
            let key = cand.location.key();
            let occ = occurrence.get(&key).copied().unwrap_or(0);
            let relevance = match (relevance_num.get(&key), relevance_den.get(&key)) {
                (Some(&n), Some(&d)) if d > 0 => n as f64 / d as f64,
                _ => 0.0,
            };
            let score = acceleration * relevance * occ as f64;
            scored.push(ScoredMpjp {
                location: cand.location.clone(),
                parse_time,
                value_size,
                acceleration,
                relevance,
                occurrence: occ,
                score,
                estimated_bytes: (value_size.max(1.0) as u64) * total_rows,
            });
        }
    }
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.location.cmp(&b.location))
    });
    Ok(scored)
}

/// Average (parse-cost proxy, value bytes) of evaluating `path` over
/// `sample`. The cost proxy is the mean raw document length in bytes:
/// evaluating a path through a full parse reads every input byte, so the
/// cost ratio between two paths on the same column equals their document
/// ratio — exactly what `A_j` divides away — while staying bit-identical
/// across runs (a wall clock here made the scores, and therefore which
/// cache tables get built, depend on machine load).
fn measure(sample: &[String], path: &JsonPath) -> (f64, f64) {
    if sample.is_empty() {
        return (0.0, 1.0);
    }
    let mut doc_bytes = 0usize;
    let mut value_bytes = 0usize;
    for json in sample {
        doc_bytes += json.len();
        if let Some(v) = maxson_json::get_json_object(json, path) {
            value_bytes += v.len();
        } else {
            value_bytes += 1; // NULL marker byte, matching Cell::Null.byte_size()
        }
    }
    let n = sample.len() as f64;
    (doc_bytes as f64 / n, value_bytes as f64 / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxson_storage::file::WriteOptions;
    use maxson_storage::{ColumnType, Field, Schema};
    use maxson_trace::model::RecurrenceClass;
    use std::path::PathBuf;

    fn temp_root(name: &str) -> PathBuf {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        std::env::temp_dir().join(format!(
            "maxson-score-{}-{nanos}-{name}",
            std::process::id()
        ))
    }

    fn loc(path: &str) -> JsonPathLocation {
        JsonPathLocation::new("db", "t", "payload", path)
    }

    fn catalog_with_table(name: &str) -> (Catalog, PathBuf) {
        let root = temp_root(name);
        let mut cat = Catalog::open(&root).unwrap();
        let schema = Schema::new(vec![Field::new("payload", ColumnType::Utf8)]).unwrap();
        let t = cat.create_table("db", "t", schema, 0).unwrap();
        let rows: Vec<Vec<Cell>> = (0..100)
            .map(|i| {
                vec![Cell::from(format!(
                    r#"{{"small": {i}, "big": "{}", "deep": {{"x": {{"y": {i}}}}}}}"#,
                    "z".repeat(200)
                ))]
            })
            .collect();
        t.append_file(&rows, WriteOptions::default(), 1).unwrap();
        (cat, root)
    }

    fn query(paths: &[&str]) -> QueryRecord {
        QueryRecord {
            query_id: 0,
            user_id: 0,
            day: 0,
            hour: 0,
            recurrence: RecurrenceClass::Daily,
            paths: paths.iter().map(|p| loc(p)).collect(),
        }
    }

    fn cand(path: &str) -> MpjpCandidate {
        MpjpCandidate {
            location: loc(path),
            target_day: 1,
        }
    }

    #[test]
    fn acceleration_prefers_small_values() {
        let (cat, root) = catalog_with_table("accel");
        let cands = vec![cand("$.small"), cand("$.big")];
        let history = vec![query(&["$.small"]), query(&["$.big"])];
        let scored = score_candidates(&cat, &cands, &history).unwrap();
        let small = scored
            .iter()
            .find(|s| s.location.path == "$.small")
            .unwrap();
        let big = scored.iter().find(|s| s.location.path == "$.big").unwrap();
        // Same parse cost regime but far smaller value => higher A_j.
        assert!(small.acceleration > big.acceleration);
        assert!(big.value_size > 100.0);
        assert!(small.estimated_bytes < big.estimated_bytes);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn relevance_and_occurrence_math() {
        let (cat, root) = catalog_with_table("relv");
        // $.small is MPJP; $.big is not. Query1 = {small} (M=1,N=1),
        // Query2 = {small, big} (M=1,N=2), Query3 = {big}.
        let cands = vec![cand("$.small")];
        let history = vec![
            query(&["$.small"]),
            query(&["$.small", "$.big"]),
            query(&["$.big"]),
        ];
        let scored = score_candidates(&cat, &cands, &history).unwrap();
        let s = &scored[0];
        assert_eq!(s.occurrence, 2);
        // R = (1 + 1) / (1 + 2) = 2/3.
        assert!((s.relevance - 2.0 / 3.0).abs() < 1e-9);
        assert!(s.score > 0.0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn unreferenced_candidate_scores_zero() {
        let (cat, root) = catalog_with_table("zero");
        let cands = vec![cand("$.small")];
        let history = vec![query(&["$.big"])];
        let scored = score_candidates(&cat, &cands, &history).unwrap();
        assert_eq!(scored[0].occurrence, 0);
        assert_eq!(scored[0].score, 0.0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn sorted_descending_by_score() {
        let (cat, root) = catalog_with_table("sort");
        let cands = vec![cand("$.small"), cand("$.big"), cand("$.deep.x.y")];
        let history = vec![
            query(&["$.small", "$.deep.x.y"]),
            query(&["$.small"]),
            query(&["$.big"]),
        ];
        let scored = score_candidates(&cat, &cands, &history).unwrap();
        for w in scored.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_table_is_an_error() {
        let root = temp_root("mt");
        let cat = Catalog::open(&root).unwrap();
        let err = score_candidates(&cat, &[cand("$.x")], &[]).unwrap_err();
        assert!(err.to_string().contains("not found"));
        std::fs::remove_dir_all(&root).ok();
    }
}
