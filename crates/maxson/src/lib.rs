//! Maxson — a JSONPath-result cache that eliminates duplicate JSON parsing.
//!
//! This crate is the paper's primary contribution, rebuilt on the substrates
//! of this workspace (`maxson-engine` for SparkSQL, `maxson-storage` for
//! ORC/HDFS, `maxson-trace` for the workload, `maxson-predictor` for the
//! LSTM+CRF predictor):
//!
//! * [`mpjp`] — the nightly prediction pipeline: fold the query history
//!   through the JSONPath Collector, train/apply a predictor, and emit the
//!   *Multiple-Parsed JSONPaths* expected tomorrow.
//! * [`score`] — the scoring function of §IV-B:
//!   `Score_j = A_j · R_j · O_j` with `A_j = P_j / B_j` measured by
//!   sampling, `R_j` the MPJP fraction of the queries touching `j`, and
//!   `O_j` the number of such queries.
//! * [`cacher`] — the JSONPath Cacher of §IV-C: pre-parses the chosen
//!   MPJPs into *cache tables* stored in the same columnar format,
//!   file-aligned with the raw tables (cache file *k* is parsed from raw
//!   file *k* with identical row grouping), plus the persistent registry
//!   mapping `(db, table, column, path)` to cache fields.
//! * [`rewriter`] — Algorithm 1: a [`maxson_engine::session::TableScanRewriter`]
//!   that pattern-matches `get_json_object` calls, checks cache validity
//!   against table modification times, and swaps hits for placeholders.
//! * [`combiner`] — Algorithm 2 and 3: the combined scan provider running
//!   a PrimaryReader and a CacheReader over the same split index, stitching
//!   rows positionally and sharing the SARG row-group skip array between
//!   the two readers.
//! * [`online`] — the online LRU caching baseline the paper compares
//!   against in Fig. 14.
//! * [`pipeline`] — `MaxsonPipeline`, the end-to-end "every midnight" cycle
//!   used by the examples and benchmarks.

pub mod cacher;
pub mod combiner;
pub mod error;
pub mod join_stitch;
pub mod mpjp;
pub mod online;
pub mod pipeline;
pub mod rewriter;
pub mod score;
pub mod stats_store;

pub use cacher::{CacheRegistry, CachedEntry, JsonPathCacher};
pub use error::{MaxsonError, Result};
pub use join_stitch::JoinStitchProvider;
pub use mpjp::{predict_mpjps, MpjpCandidate, PredictorKind};
pub use online::OnlineLruRewriter;
pub use pipeline::{MaxsonPipeline, PipelineConfig, ScoringStrategy};
pub use rewriter::MaxsonScanRewriter;
pub use score::{score_candidates, ScoredMpjp};
