//! The persistent JSONPath statistics table (§III-B).
//!
//! The paper's JSONPath Collector stores its per-path daily access counts
//! "in a statistics table, which is partitioned by date". We dogfood the
//! Norc substrate for exactly that: one table in the reserved
//! [`STATS_DB`] database, with one part file appended per saved day — a
//! date partition — holding rows of
//! `(database, table, column, path, day, count)`. The collector can then
//! be rebuilt in a later process (e.g. the nightly cron run) without
//! replaying the query log.

use maxson_storage::file::WriteOptions;
use maxson_storage::{Catalog, Cell, ColumnType, Field, Schema};
use maxson_trace::{JsonPathCollector, JsonPathLocation};

use crate::error::{MaxsonError, Result};

/// Database holding the statistics table.
pub const STATS_DB: &str = "__maxson_stats";
/// Name of the statistics table.
pub const STATS_TABLE: &str = "jsonpath_daily_counts";

fn stats_schema() -> Schema {
    Schema::new(vec![
        Field::new("database", ColumnType::Utf8),
        Field::new("table_name", ColumnType::Utf8),
        Field::new("column_name", ColumnType::Utf8),
        Field::new("path", ColumnType::Utf8),
        Field::new("day", ColumnType::Int64),
        Field::new("count", ColumnType::Int64),
    ])
    .expect("static schema is valid")
}

/// Append one day's partition of the collector's counts to the statistics
/// table, creating the table on first use. Returns the number of rows
/// written. Saving the same day twice appends a second partition — counts
/// re-accumulate on load, so callers should save each day exactly once (as
/// the nightly cycle naturally does).
pub fn save_day(
    catalog: &mut Catalog,
    collector: &JsonPathCollector,
    day: u32,
    now: u64,
) -> Result<usize> {
    if !catalog.has_table(STATS_DB, STATS_TABLE) {
        catalog.create_table(STATS_DB, STATS_TABLE, stats_schema(), now)?;
    }
    let rows: Vec<Vec<Cell>> = collector
        .day_partition(day)
        .into_iter()
        .map(|(loc, count)| {
            vec![
                Cell::from(loc.database.as_str()),
                Cell::from(loc.table.as_str()),
                Cell::from(loc.column.as_str()),
                Cell::from(loc.path.as_str()),
                Cell::Int(i64::from(day)),
                Cell::Int(i64::from(count)),
            ]
        })
        .collect();
    let n = rows.len();
    catalog
        .table_mut(STATS_DB, STATS_TABLE)?
        .append_file(&rows, WriteOptions::default(), now)?;
    Ok(n)
}

/// Rebuild a collector from every saved partition. An absent statistics
/// table yields an empty collector.
pub fn load_all(catalog: &Catalog) -> Result<JsonPathCollector> {
    let mut collector = JsonPathCollector::new();
    if !catalog.has_table(STATS_DB, STATS_TABLE) {
        return Ok(collector);
    }
    let table = catalog.table(STATS_DB, STATS_TABLE)?;
    for split in 0..table.file_count() {
        let file = table.open_split(split)?;
        for row in file.read_all_rows()? {
            let [db, t, c, p, day, count] = row.as_slice() else {
                return Err(MaxsonError::invalid("statistics row arity".to_string()));
            };
            let (Some(db), Some(t), Some(c), Some(p)) =
                (db.as_str(), t.as_str(), c.as_str(), p.as_str())
            else {
                return Err(MaxsonError::invalid("statistics row types".to_string()));
            };
            let (Some(day), Some(count)) = (day.coerce_i64(), count.coerce_i64()) else {
                return Err(MaxsonError::invalid("statistics row numbers".to_string()));
            };
            collector.record(
                &JsonPathLocation::new(db, t, c, p),
                day as u32,
                count as u32,
            );
        }
    }
    Ok(collector)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxson_trace::model::RecurrenceClass;
    use maxson_trace::QueryRecord;
    use std::path::PathBuf;

    fn temp_root(name: &str) -> PathBuf {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        std::env::temp_dir().join(format!(
            "maxson-stats-{}-{nanos}-{name}",
            std::process::id()
        ))
    }

    fn loc(path: &str) -> JsonPathLocation {
        JsonPathLocation::new("db", "t", "payload", path)
    }

    fn query(day: u32, paths: &[&str]) -> QueryRecord {
        QueryRecord {
            query_id: 0,
            user_id: 0,
            day,
            hour: 9,
            recurrence: RecurrenceClass::Daily,
            paths: paths.iter().map(|p| loc(p)).collect(),
        }
    }

    #[test]
    fn save_and_reload_round_trips_counts() {
        let root = temp_root("roundtrip");
        let mut catalog = Catalog::open(&root).unwrap();
        let mut collector = JsonPathCollector::new();
        collector.observe(&query(0, &["$.a", "$.b"]));
        collector.observe(&query(0, &["$.a"]));
        collector.observe(&query(1, &["$.b"]));
        let n0 = save_day(&mut catalog, &collector, 0, 10).unwrap();
        let n1 = save_day(&mut catalog, &collector, 1, 11).unwrap();
        assert_eq!(n0, 2); // $.a and $.b have day-0 counts
        assert_eq!(n1, 1);

        // New process: reload from disk.
        let catalog2 = Catalog::open(&root).unwrap();
        let loaded = load_all(&catalog2).unwrap();
        assert_eq!(loaded.count_on(&loc("$.a"), 0), 2);
        assert_eq!(loaded.count_on(&loc("$.b"), 0), 1);
        assert_eq!(loaded.count_on(&loc("$.b"), 1), 1);
        assert_eq!(loaded.count_on(&loc("$.a"), 1), 0);
        assert_eq!(loaded.max_day(), 1);
        assert!(loaded.is_mpjp(&loc("$.a"), 0));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn one_partition_file_per_saved_day() {
        let root = temp_root("partitions");
        let mut catalog = Catalog::open(&root).unwrap();
        let mut collector = JsonPathCollector::new();
        for day in 0..3 {
            collector.observe(&query(day, &["$.a"]));
            save_day(&mut catalog, &collector, day, u64::from(day) + 1).unwrap();
        }
        let table = catalog.table(STATS_DB, STATS_TABLE).unwrap();
        assert_eq!(
            table.file_count(),
            3,
            "date partitioning = one file per day"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn loading_from_empty_warehouse_is_empty() {
        let root = temp_root("empty");
        let catalog = Catalog::open(&root).unwrap();
        let loaded = load_all(&catalog).unwrap();
        assert_eq!(loaded.path_count(), 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn stats_table_is_queryable_sql() {
        // Dogfooding bonus: the statistics table is a plain warehouse table,
        // so the engine can query it.
        let root = temp_root("sql");
        let mut catalog = Catalog::open(&root).unwrap();
        let mut collector = JsonPathCollector::new();
        collector.observe(&query(0, &["$.a", "$.b"]));
        collector.observe(&query(0, &["$.a"]));
        save_day(&mut catalog, &collector, 0, 1).unwrap();
        drop(catalog);
        let session = maxson_engine::session::Session::open(&root).unwrap();
        let result = session
            .execute(&format!(
                "select path, count from {STATS_DB}.{STATS_TABLE} order by count desc, path"
            ))
            .unwrap();
        assert_eq!(result.rows[0], vec![Cell::Str("$.a".into()), Cell::Int(2)]);
        std::fs::remove_dir_all(&root).ok();
    }
}
