//! The Maxson parser / plan rewriter (Algorithm 1).
//!
//! Implemented as a [`TableScanRewriter`]: while the engine compiles SQL to
//! a plan, every table scan is offered to Maxson together with its
//! `get_json_object` calls and the query predicate. For each call the
//! rewriter pattern-matches the `(database, table, column, path)` key
//! against the cache registry; a hit whose cache time is at or after the
//! raw table's last modification time becomes a *placeholder* — a plain
//! column reference into the combined scan output — while stale entries
//! are marked invalid (to be dropped at the next population cycle) and the
//! call keeps paying the parse cost.
//!
//! Predicate conjuncts of the form `get_json_object(col, path) <cmp>
//! literal` over cached paths are turned into SARGs on the cache table
//! (Algorithm 3) and handed to the combined provider, which shares the
//! row-group skips with the raw-side reader.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use maxson_engine::session::{ScanContext, ScanRewrite, TableScanRewriter};
use maxson_engine::sql::ast::{BinaryOp, SqlExpr};
use maxson_engine::EngineError;
use maxson_obs::{Registry, Tracer};
use maxson_storage::{Catalog, Cell, CmpOp, Field, Schema, SearchArgument};
use maxson_trace::JsonPathLocation;

use crate::cacher::{CacheRegistry, CACHE_DB};
use crate::combiner::CombinedScanProvider;

/// Statistics of one rewriter lifetime (per session installation).
#[derive(Debug, Default, Clone)]
pub struct RewriteStats {
    /// JSONPath calls replaced by placeholders.
    pub hits: u64,
    /// JSONPath calls left to parse (not cached).
    pub misses: u64,
    /// Cache entries found stale (table modified after caching).
    pub invalidated: u64,
    /// Scans converted to cache-only reads.
    pub cache_only_scans: u64,
}

/// The rewriter. Holds its own read-only catalog handle (opened from the
/// same warehouse root the session uses) plus the cache registry.
pub struct MaxsonScanRewriter {
    catalog: Catalog,
    registry: CacheRegistry,
    /// Locations marked invalid during planning (interior mutability:
    /// `rewrite_scan` takes `&self`, and sessions share the rewriter across
    /// threads, so these are mutexes rather than cells).
    invalid: Mutex<Vec<JsonPathLocation>>,
    stats: Mutex<RewriteStats>,
    /// Enable Algorithm 3 pushdown (ablation switch).
    pub enable_pushdown: bool,
    /// Span/counter sink for rewrite decisions; inert unless installed.
    tracer: Tracer,
    /// Process-wide metric registry rewrite outcomes are charged to.
    metrics: Arc<Registry>,
}

impl MaxsonScanRewriter {
    /// Open a rewriter over the warehouse at `root`, loading the registry
    /// from disk.
    pub fn open(root: impl Into<PathBuf>) -> crate::Result<Self> {
        let catalog = Catalog::open(root.into())?;
        let registry = CacheRegistry::load(&catalog)?;
        Ok(MaxsonScanRewriter {
            catalog,
            registry,
            invalid: Mutex::new(Vec::new()),
            stats: Mutex::new(RewriteStats::default()),
            enable_pushdown: true,
            tracer: Tracer::disabled(),
            metrics: Arc::clone(Registry::global()),
        })
    }

    /// Build from parts (used by the pipeline right after population).
    pub fn with_registry(catalog: Catalog, registry: CacheRegistry) -> Self {
        MaxsonScanRewriter {
            catalog,
            registry,
            invalid: Mutex::new(Vec::new()),
            stats: Mutex::new(RewriteStats::default()),
            enable_pushdown: true,
            tracer: Tracer::disabled(),
            metrics: Arc::clone(Registry::global()),
        }
    }

    /// Install the tracer rewrite decisions are recorded into (normally a
    /// clone of the session's). The installed tracer is also threaded into
    /// every combined provider this rewriter builds, so stitch counters
    /// land in the same trace.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Replace the metric registry (tests inject a fresh one; the default
    /// is the process-wide [`Registry::global`]).
    pub fn set_metrics_registry(&mut self, registry: Arc<Registry>) {
        self.metrics = registry;
    }

    /// Locations marked invalid so far.
    pub fn invalidated(&self) -> Vec<JsonPathLocation> {
        self.invalid.lock().expect("rewriter invalid lock").clone()
    }

    /// Rewrite statistics so far.
    pub fn stats(&self) -> RewriteStats {
        self.stats.lock().expect("rewriter stats lock").clone()
    }
}

impl TableScanRewriter for MaxsonScanRewriter {
    fn name(&self) -> &str {
        "Maxson"
    }

    fn rewrite_scan(&self, ctx: &ScanContext<'_>) -> maxson_engine::Result<Option<ScanRewrite>> {
        if ctx.json_calls.is_empty() || ctx.database == CACHE_DB {
            return Ok(None);
        }
        let span = self.tracer.span("maxson_rewrite");
        span.attr("table", format!("{}.{}", ctx.database, ctx.table));
        let raw_meta = self
            .catalog
            .table_meta(ctx.database, ctx.table)
            .map_err(EngineError::Storage)?;

        // Classify each call: valid hit, stale, or miss (Alg. 1 lines 14-23).
        let invalidated_before = self.stats.lock().expect("rewriter stats lock").invalidated;
        let mut resolved: Vec<((String, String), String)> = Vec::new();
        let mut unresolved: Vec<(String, String)> = Vec::new();
        let mut cache_table_name: Option<String> = None;
        for (column, path) in ctx.json_calls {
            let loc = JsonPathLocation::new(ctx.database, ctx.table, column.clone(), path.clone());
            match self.registry.get(&loc) {
                Some(entry) => {
                    if raw_meta.modified_at > entry.cached_at {
                        // Stale: mark invalid, fall back to parsing.
                        self.invalid
                            .lock()
                            .expect("rewriter invalid lock")
                            .push(loc);
                        self.stats.lock().expect("rewriter stats lock").invalidated += 1;
                        unresolved.push((column.clone(), path.clone()));
                    } else {
                        cache_table_name = Some(entry.cache_table.clone());
                        resolved.push(((column.clone(), path.clone()), entry.cache_field.clone()));
                    }
                }
                None => unresolved.push((column.clone(), path.clone())),
            }
        }
        {
            let mut stats = self.stats.lock().expect("rewriter stats lock");
            stats.hits += resolved.len() as u64;
            stats.misses += unresolved.len() as u64;
        }
        let stale =
            self.stats.lock().expect("rewriter stats lock").invalidated - invalidated_before;
        self.tracer.add("rewrite.hits", resolved.len() as u64);
        self.tracer.add("rewrite.misses", unresolved.len() as u64);
        self.tracer.add("rewrite.invalidated", stale);
        let outcome = |o: &str| {
            self.metrics
                .counter("maxson_rewrite_paths_total", &[("outcome", o)])
        };
        // `misses` counts never-cached paths only; stale entries get their
        // own outcome so cache churn is visible separately.
        outcome("hit").add(resolved.len() as u64);
        outcome("miss").add(unresolved.len() as u64 - stale);
        outcome("stale").add(stale);
        if span.is_recording() {
            span.attr("hits", resolved.len());
            span.attr("misses", unresolved.len());
        }
        let Some(cache_table_name) = cache_table_name else {
            span.attr("decision", "no_rewrite");
            self.metrics
                .counter("maxson_scan_rewrites_total", &[("decision", "no_rewrite")])
                .inc();
            return Ok(None); // No valid hits: keep the default scan.
        };
        let cache_table = self
            .catalog
            .table(CACHE_DB, &cache_table_name)
            .map_err(EngineError::Storage)?
            .clone();

        // Raw columns the combined scan must still read: every plain column
        // reference, plus the JSON column of every unresolved call.
        let mut raw_names: Vec<String> = ctx.raw_columns.to_vec();
        for (column, _) in &unresolved {
            if !raw_names.contains(column) {
                raw_names.push(column.clone());
            }
        }
        raw_names.sort_by_key(|c| ctx.table_schema.index_of(c));
        let raw_projection: Vec<usize> = raw_names
            .iter()
            .map(|c| {
                ctx.table_schema.index_of(c).ok_or_else(|| {
                    EngineError::plan(format!(
                        "column '{c}' missing in {}.{}",
                        ctx.database, ctx.table
                    ))
                })
            })
            .collect::<maxson_engine::Result<_>>()?;

        // Cache columns to read, deduplicated in resolution order.
        let mut cache_fields: Vec<String> = Vec::new();
        for (_, field) in &resolved {
            if !cache_fields.contains(field) {
                cache_fields.push(field.clone());
            }
        }
        let cache_projection: Vec<usize> = cache_fields
            .iter()
            .map(|f| {
                cache_table.schema().index_of(f).ok_or_else(|| {
                    EngineError::plan(format!(
                        "cache field '{f}' missing in cache table {cache_table_name}"
                    ))
                })
            })
            .collect::<maxson_engine::Result<_>>()?;

        // Output schema: raw fields then cache fields.
        let mut out_fields: Vec<Field> = raw_projection
            .iter()
            .map(|&i| ctx.table_schema.fields()[i].clone())
            .collect();
        for &ci in &cache_projection {
            out_fields.push(cache_table.schema().fields()[ci].clone());
        }
        let out_schema = Schema::new(out_fields).map_err(EngineError::Storage)?;

        // SARGs. Cache-side pushdown (Alg. 3) plus plain raw-column SARGs.
        let (raw_sarg, cache_sarg) = if self.enable_pushdown {
            extract_sargs(
                ctx.predicate,
                ctx.table_schema,
                cache_table.schema(),
                &resolved,
            )
        } else {
            (None, None)
        };

        let cache_only = raw_projection.is_empty();
        if cache_only {
            self.stats
                .lock()
                .expect("rewriter stats lock")
                .cache_only_scans += 1;
            self.tracer.add("rewrite.cache_only_scans", 1);
        }
        let decision = if cache_only { "cache_only" } else { "combined" };
        span.attr("decision", decision);
        self.metrics
            .counter("maxson_scan_rewrites_total", &[("decision", decision)])
            .inc();
        let raw = if cache_only {
            None
        } else {
            Some(
                self.catalog
                    .table(ctx.database, ctx.table)
                    .map_err(EngineError::Storage)?
                    .clone(),
            )
        };
        let mut provider = CombinedScanProvider::new(
            raw,
            raw_projection,
            cache_table,
            cache_projection,
            out_schema,
            raw_sarg,
            cache_sarg,
        );
        provider.set_tracer(self.tracer.clone());
        Ok(Some(ScanRewrite {
            provider: Box::new(provider),
            resolved_paths: resolved,
        }))
    }
}

/// Extract `(raw_sarg, cache_sarg)` from the predicate's conjuncts.
/// Only unqualified references are extracted (joins with aliases skip
/// pushdown — conservative and correct).
fn extract_sargs(
    predicate: Option<&SqlExpr>,
    raw_schema: &Schema,
    cache_schema: &Schema,
    resolved: &[((String, String), String)],
) -> (Option<SearchArgument>, Option<SearchArgument>) {
    let mut raw_sarg = SearchArgument::new();
    let mut cache_sarg = SearchArgument::new();
    if let Some(p) = predicate {
        walk_conjuncts(p, &mut |conjunct| match conjunct {
            SqlExpr::Binary { left, op, right } => {
                let Some(cmp) = cmp_of(*op) else { return };
                match (left.as_ref(), right.as_ref()) {
                    (lhs, SqlExpr::Literal(lit)) => {
                        push_leaf(
                            lhs,
                            cmp,
                            lit,
                            raw_schema,
                            cache_schema,
                            resolved,
                            &mut raw_sarg,
                            &mut cache_sarg,
                        );
                    }
                    (SqlExpr::Literal(lit), rhs) => {
                        push_leaf(
                            rhs,
                            flip(cmp),
                            lit,
                            raw_schema,
                            cache_schema,
                            resolved,
                            &mut raw_sarg,
                            &mut cache_sarg,
                        );
                    }
                    _ => {}
                }
            }
            SqlExpr::Between { expr, low, high } => {
                if let (SqlExpr::Literal(lo), SqlExpr::Literal(hi)) = (low.as_ref(), high.as_ref())
                {
                    push_leaf(
                        expr,
                        CmpOp::GtEq,
                        lo,
                        raw_schema,
                        cache_schema,
                        resolved,
                        &mut raw_sarg,
                        &mut cache_sarg,
                    );
                    push_leaf(
                        expr,
                        CmpOp::LtEq,
                        hi,
                        raw_schema,
                        cache_schema,
                        resolved,
                        &mut raw_sarg,
                        &mut cache_sarg,
                    );
                }
            }
            _ => {}
        });
    }
    (
        if raw_sarg.is_empty() {
            None
        } else {
            Some(raw_sarg)
        },
        if cache_sarg.is_empty() {
            None
        } else {
            Some(cache_sarg)
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn push_leaf(
    lhs: &SqlExpr,
    cmp: CmpOp,
    lit: &Cell,
    raw_schema: &Schema,
    cache_schema: &Schema,
    resolved: &[((String, String), String)],
    raw_sarg: &mut SearchArgument,
    cache_sarg: &mut SearchArgument,
) {
    match lhs {
        // Plain raw column.
        SqlExpr::Column {
            qualifier: None,
            name,
        } => {
            if let Some(idx) = raw_schema.index_of(name) {
                *raw_sarg = std::mem::take(raw_sarg).with(idx, cmp, lit.clone());
            }
        }
        // get_json_object over a cached path -> cache-table SARG.
        SqlExpr::GetJsonObject { column, path } => {
            if let SqlExpr::Column {
                qualifier: None,
                name,
            } = column.as_ref()
            {
                if let Some((_, field)) = resolved.iter().find(|((c, p), _)| c == name && p == path)
                {
                    if let Some(idx) = cache_schema.index_of(field) {
                        *cache_sarg = std::mem::take(cache_sarg).with(idx, cmp, lit.clone());
                    }
                }
            }
        }
        _ => {}
    }
}

fn cmp_of(op: BinaryOp) -> Option<CmpOp> {
    Some(match op {
        BinaryOp::Eq => CmpOp::Eq,
        BinaryOp::NotEq => CmpOp::NotEq,
        BinaryOp::Lt => CmpOp::Lt,
        BinaryOp::LtEq => CmpOp::LtEq,
        BinaryOp::Gt => CmpOp::Gt,
        BinaryOp::GtEq => CmpOp::GtEq,
        _ => return None,
    })
}

fn flip(cmp: CmpOp) -> CmpOp {
    match cmp {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::LtEq => CmpOp::GtEq,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::GtEq => CmpOp::LtEq,
        other => other,
    }
}

/// Visit the AND-conjuncts of a predicate.
fn walk_conjuncts<'a>(e: &'a SqlExpr, f: &mut impl FnMut(&'a SqlExpr)) {
    if let SqlExpr::Binary {
        left,
        op: BinaryOp::And,
        right,
    } = e
    {
        walk_conjuncts(left, f);
        walk_conjuncts(right, f);
    } else {
        f(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cacher::{cache_field_name, cache_table_name, CachedEntry};
    use crate::mpjp::MpjpCandidate;
    use crate::score::score_candidates;
    use maxson_engine::session::Session;
    use maxson_storage::file::WriteOptions;
    use maxson_storage::{ColumnType, Field};
    use maxson_trace::model::RecurrenceClass;
    use maxson_trace::QueryRecord;
    use std::path::PathBuf;

    fn temp_root(name: &str) -> PathBuf {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        std::env::temp_dir().join(format!("maxson-rw-{}-{nanos}-{name}", std::process::id()))
    }

    fn loc(path: &str) -> JsonPathLocation {
        JsonPathLocation::new("db", "t", "payload", path)
    }

    /// A warehouse with one table and a populated cache over `$.a`.
    fn setup(name: &str) -> (Session, PathBuf) {
        let root = temp_root(name);
        let mut session = Session::open(&root).unwrap();
        let schema = Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("payload", ColumnType::Utf8),
        ])
        .unwrap();
        let mut catalog = session.catalog_mut();
        let t = catalog.create_table("db", "t", schema, 0).unwrap();
        let rows: Vec<Vec<Cell>> = (0..30)
            .map(|i| {
                vec![
                    Cell::Int(i),
                    Cell::from(format!(r#"{{"a": {i}, "b": "x{i}"}}"#)),
                ]
            })
            .collect();
        t.append_file(
            &rows,
            WriteOptions {
                row_group_size: 10,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        drop(catalog);
        // Populate a cache for $.a only.
        let cands = vec![MpjpCandidate {
            location: loc("$.a"),
            target_day: 1,
        }];
        let history = vec![QueryRecord {
            query_id: 0,
            user_id: 0,
            day: 0,
            hour: 0,
            recurrence: RecurrenceClass::Daily,
            paths: vec![loc("$.a")],
        }];
        let ranked = score_candidates(&session.catalog(), &cands, &history).unwrap();
        let cacher = crate::cacher::JsonPathCacher::new(u64::MAX);
        cacher
            .populate(&mut session.catalog_mut(), &ranked, 100)
            .unwrap();
        (session, root)
    }

    #[test]
    fn stats_track_hits_misses_and_cache_only() {
        let (mut session, root) = setup("stats");
        let rewriter = MaxsonScanRewriter::open(&root).unwrap();
        let stats_probe = rewriter.stats();
        assert_eq!(stats_probe.hits, 0);
        session.set_scan_rewriter(Some(Box::new(rewriter)));
        // $.a hits (cache-only: no raw columns needed).
        session
            .execute("select get_json_object(payload, '$.a') as a from db.t")
            .unwrap();
        // $.a hits + $.b misses (combined scan).
        session
            .execute(
                "select get_json_object(payload, '$.a') as a, \
                 get_json_object(payload, '$.b') as b from db.t",
            )
            .unwrap();
        // Reopen a probe rewriter to re-run the plan-only stats check:
        // the installed one is owned by the session, so validate behavior
        // through metrics instead.
        let res = session
            .execute("select get_json_object(payload, '$.b') as b from db.t")
            .unwrap();
        assert!(res.metrics.parse_calls > 0, "$.b is not cached");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn rewriter_ignores_cache_db_scans() {
        let (_, root) = setup("cachedb");
        let rewriter = MaxsonScanRewriter::open(&root).unwrap();
        let session = Session::open(&root).unwrap();
        // Query the cache table directly: the rewriter must not recurse.
        let mut s2 = session;
        s2.set_scan_rewriter(Some(Box::new(rewriter)));
        let field = cache_field_name("payload", "$.a");
        let result = s2
            .execute(&format!(
                "select {field} from {CACHE_DB}.{}",
                cache_table_name("db", "t")
            ))
            .unwrap();
        assert_eq!(result.rows.len(), 30);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn stale_entry_lands_in_invalidated_list() {
        let (mut session, root) = setup("stale");
        // Touch the raw table after caching (logical time 200 > 100).
        session
            .catalog_mut()
            .table_mut("db", "t")
            .unwrap()
            .touch(200)
            .unwrap();
        let rewriter = MaxsonScanRewriter::open(&root).unwrap();
        // Plan-time check happens inside rewrite_scan: run a plan through a
        // fresh session holding the rewriter.
        let mut s2 = Session::open(&root).unwrap();
        // Keep a second probe handle open on the same state via the session
        // metrics; the invalidated list is observable pre-installation.
        let ctx_schema = Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("payload", ColumnType::Utf8),
        ])
        .unwrap();
        let calls = vec![("payload".to_string(), "$.a".to_string())];
        let raw_cols: Vec<String> = vec![];
        let ctx = maxson_engine::session::ScanContext {
            database: "db",
            table: "t",
            table_schema: &ctx_schema,
            raw_columns: &raw_cols,
            json_calls: &calls,
            predicate: None,
        };
        let rewrite = rewriter.rewrite_scan(&ctx).unwrap();
        assert!(rewrite.is_none(), "stale cache must not rewrite");
        assert_eq!(rewriter.invalidated(), vec![loc("$.a")]);
        assert_eq!(rewriter.stats().invalidated, 1);
        let _ = &mut s2;
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn rewrite_scan_resolves_hit_and_keeps_miss() {
        let (_, root) = setup("mixed");
        let rewriter = MaxsonScanRewriter::open(&root).unwrap();
        let ctx_schema = Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("payload", ColumnType::Utf8),
        ])
        .unwrap();
        let calls = vec![
            ("payload".to_string(), "$.a".to_string()),
            ("payload".to_string(), "$.b".to_string()),
        ];
        let raw_cols = vec!["id".to_string()];
        let ctx = maxson_engine::session::ScanContext {
            database: "db",
            table: "t",
            table_schema: &ctx_schema,
            raw_columns: &raw_cols,
            json_calls: &calls,
            predicate: None,
        };
        let rewrite = rewriter.rewrite_scan(&ctx).unwrap().expect("hit rewrites");
        assert_eq!(rewrite.resolved_paths.len(), 1);
        assert_eq!(
            rewrite.resolved_paths[0].0,
            ("payload".to_string(), "$.a".to_string())
        );
        // Output schema: id + payload (for the $.b miss) + cache field.
        let names: Vec<&str> = rewrite
            .provider
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert!(names.contains(&"id"));
        assert!(names.contains(&"payload"));
        assert!(names.contains(&cache_field_name("payload", "$.a").as_str()));
        let stats = rewriter.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn no_json_calls_keeps_default_scan() {
        let (_, root) = setup("nocalls");
        let rewriter = MaxsonScanRewriter::open(&root).unwrap();
        let ctx_schema = Schema::new(vec![Field::new("id", ColumnType::Int64)]).unwrap();
        let raw_cols = vec!["id".to_string()];
        let ctx = maxson_engine::session::ScanContext {
            database: "db",
            table: "t",
            table_schema: &ctx_schema,
            raw_columns: &raw_cols,
            json_calls: &[],
            predicate: None,
        };
        assert!(rewriter.rewrite_scan(&ctx).unwrap().is_none());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn registry_entry_shape() {
        let e = CachedEntry {
            location: loc("$.a"),
            cache_table: cache_table_name("db", "t"),
            cache_field: cache_field_name("payload", "$.a"),
            cached_at: 5,
            bytes: 10,
        };
        assert_eq!(e.cache_table, "db__t");
        assert!(e.cache_field.starts_with("payload"));
    }
}
