//! The JSONPath Cacher (§IV-C).
//!
//! At cache-population time (midnight in the paper), the cacher receives
//! the score-ranked MPJP list and materializes their parsed values into
//! *cache tables* until the byte budget runs out:
//!
//! * All cached paths of one raw table share one cache table, stored in the
//!   reserved database [`CACHE_DB`]. The cache table is named after the raw
//!   table (`<db>__<table>`) and each field after its column and JSONPath —
//!   mirroring the paper's naming scheme for remembering the mapping.
//! * Cache file *k* is parsed from raw file *k*, with the same row count
//!   and the same row-group boundaries, so the two readers of the value
//!   combiner stay positionally aligned and row-group skipping transfers.
//! * A registry document records `(db, table, column, path) → (cache
//!   table, field, cache time)`. Entries whose cache time precedes the raw
//!   table's modification time are invalid; invalid cache tables are
//!   dropped at the next population cycle (Algorithm 1, line 19).

use std::collections::BTreeMap;

use maxson_json::{parse as json_parse, JsonPath, JsonValue};
use maxson_storage::file::WriteOptions;
use maxson_storage::{Catalog, Cell, ColumnType, Field, Schema};
use maxson_trace::JsonPathLocation;

use crate::error::{MaxsonError, Result};
use crate::score::ScoredMpjp;

/// The reserved database holding all cache tables.
pub const CACHE_DB: &str = "__maxson_cache";

/// One registry entry: a cached JSONPath value column.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedEntry {
    /// The cached path's warehouse location.
    pub location: JsonPathLocation,
    /// Cache table name inside [`CACHE_DB`].
    pub cache_table: String,
    /// Field name inside the cache table.
    pub cache_field: String,
    /// Logical time the cache was populated.
    pub cached_at: u64,
    /// Bytes this entry contributed to the budget.
    pub bytes: u64,
}

/// The in-memory registry of cached paths, persisted as JSON inside the
/// cache database directory.
#[derive(Debug, Default)]
pub struct CacheRegistry {
    entries: BTreeMap<String, CachedEntry>,
}

impl CacheRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up the entry for a location.
    pub fn get(&self, loc: &JsonPathLocation) -> Option<&CachedEntry> {
        self.entries.get(&loc.key())
    }

    /// Iterate all entries.
    pub fn entries(&self) -> impl Iterator<Item = &CachedEntry> {
        self.entries.values()
    }

    /// Number of cached paths.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes across entries.
    pub fn total_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }

    /// Insert an entry.
    pub fn insert(&mut self, entry: CachedEntry) {
        self.entries.insert(entry.location.key(), entry);
    }

    /// Remove every entry of one cache table; returns how many were
    /// removed.
    pub fn remove_table(&mut self, cache_table: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.cache_table != cache_table);
        before - self.entries.len()
    }

    /// Serialize to a JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Array(
            self.entries
                .values()
                .map(|e| {
                    JsonValue::Object(vec![
                        (
                            "database".into(),
                            JsonValue::from(e.location.database.as_str()),
                        ),
                        ("table".into(), JsonValue::from(e.location.table.as_str())),
                        ("column".into(), JsonValue::from(e.location.column.as_str())),
                        ("path".into(), JsonValue::from(e.location.path.as_str())),
                        (
                            "cache_table".into(),
                            JsonValue::from(e.cache_table.as_str()),
                        ),
                        (
                            "cache_field".into(),
                            JsonValue::from(e.cache_field.as_str()),
                        ),
                        ("cached_at".into(), JsonValue::from(e.cached_at as i64)),
                        ("bytes".into(), JsonValue::from(e.bytes as i64)),
                    ])
                })
                .collect(),
        )
    }

    /// Parse from the JSON document produced by [`CacheRegistry::to_json`].
    pub fn from_json(doc: &JsonValue) -> Result<Self> {
        let mut reg = CacheRegistry::new();
        let items = doc
            .as_array()
            .ok_or_else(|| MaxsonError::invalid("registry document is not an array"))?;
        for item in items {
            let get = |k: &str| -> Result<String> {
                item.get(k)
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| MaxsonError::invalid(format!("registry entry missing {k}")))
            };
            let geti = |k: &str| -> Result<u64> {
                item.get(k)
                    .and_then(JsonValue::as_i64)
                    .map(|v| v as u64)
                    .ok_or_else(|| MaxsonError::invalid(format!("registry entry missing {k}")))
            };
            reg.insert(CachedEntry {
                location: JsonPathLocation::new(
                    get("database")?,
                    get("table")?,
                    get("column")?,
                    get("path")?,
                ),
                cache_table: get("cache_table")?,
                cache_field: get("cache_field")?,
                cached_at: geti("cached_at")?,
                bytes: geti("bytes")?,
            });
        }
        Ok(reg)
    }

    /// Persist to `<catalog root>/<CACHE_DB>/registry.json`.
    pub fn save(&self, catalog: &Catalog) -> Result<()> {
        let dir = catalog.root().join(CACHE_DB);
        std::fs::create_dir_all(&dir).map_err(maxson_storage::StorageError::Io)?;
        std::fs::write(
            dir.join("registry.json"),
            maxson_json::to_string_pretty(&self.to_json()),
        )
        .map_err(maxson_storage::StorageError::Io)?;
        Ok(())
    }

    /// Load from disk; an absent file yields an empty registry.
    pub fn load(catalog: &Catalog) -> Result<Self> {
        let path = catalog.root().join(CACHE_DB).join("registry.json");
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let doc = json_parse(&text)
                    .map_err(|e| MaxsonError::invalid(format!("corrupt registry: {e}")))?;
                Self::from_json(&doc)
            }
            Err(_) => Ok(CacheRegistry::new()),
        }
    }
}

/// Name of the cache table serving `(db, table)`.
pub fn cache_table_name(database: &str, table: &str) -> String {
    format!("{database}__{table}")
}

/// Field name for a cached `(column, path)` value; the path is sanitized
/// into identifier characters.
pub fn cache_field_name(column: &str, path: &str) -> String {
    let sanitized: String = path
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("{column}{sanitized}")
}

/// The cacher: materializes ranked MPJPs into cache tables.
#[derive(Debug)]
pub struct JsonPathCacher {
    /// Byte budget for the whole cache (the 100–400 GB axis of Fig. 11,
    /// scaled).
    pub budget_bytes: u64,
}

/// Outcome of one population run.
#[derive(Debug, Default)]
pub struct CacheReport {
    /// Paths cached this run.
    pub cached: Vec<JsonPathLocation>,
    /// Paths skipped because the budget was exhausted.
    pub skipped: Vec<JsonPathLocation>,
    /// Bytes written.
    pub bytes_used: u64,
    /// Stale cache tables dropped before population.
    pub dropped_tables: Vec<String>,
    /// Wall-clock seconds spent parsing and writing.
    pub population_seconds: f64,
}

impl JsonPathCacher {
    /// Create a cacher with a byte budget.
    pub fn new(budget_bytes: u64) -> Self {
        JsonPathCacher { budget_bytes }
    }

    /// Populate the cache from a ranked candidate list. Drops every
    /// existing cache table first (the paper empties and repopulates the
    /// cache at every midnight cycle), greedily admits candidates in score
    /// order while the budget allows, and returns the updated registry.
    pub fn populate(
        &self,
        catalog: &mut Catalog,
        ranked: &[ScoredMpjp],
        now: u64,
    ) -> Result<(CacheRegistry, CacheReport)> {
        let start = std::time::Instant::now();
        let mut report = CacheReport::default();
        // 1. Drop all existing cache tables.
        let stale: Vec<(String, String)> = catalog
            .list_tables()
            .into_iter()
            .filter(|(db, _)| db == CACHE_DB)
            .collect();
        for (db, t) in stale {
            catalog.drop_table(&db, &t)?;
            report.dropped_tables.push(t);
        }
        let mut registry = CacheRegistry::new();

        // 2. Greedy admission by score order under the budget.
        let mut admitted: Vec<&ScoredMpjp> = Vec::new();
        let mut used = 0u64;
        for cand in ranked {
            if used + cand.estimated_bytes <= self.budget_bytes {
                used += cand.estimated_bytes;
                admitted.push(cand);
            } else {
                report.skipped.push(cand.location.clone());
            }
        }

        // 3. Group by raw table and materialize one cache table each.
        let mut by_table: BTreeMap<(String, String), Vec<&ScoredMpjp>> = BTreeMap::new();
        for cand in &admitted {
            by_table
                .entry((cand.location.database.clone(), cand.location.table.clone()))
                .or_default()
                .push(cand);
        }
        for ((db, table_name), cands) in by_table {
            let bytes =
                self.materialize_table(catalog, &db, &table_name, &cands, now, &mut registry)?;
            report.bytes_used += bytes;
            report
                .cached
                .extend(cands.iter().map(|c| c.location.clone()));
        }
        registry.save(catalog)?;
        report.population_seconds = start.elapsed().as_secs_f64();
        Ok((registry, report))
    }

    /// Build one cache table for `cands` (all on the same raw table).
    fn materialize_table(
        &self,
        catalog: &mut Catalog,
        database: &str,
        table_name: &str,
        cands: &[&ScoredMpjp],
        now: u64,
        registry: &mut CacheRegistry,
    ) -> Result<u64> {
        // Compile paths and build the cache schema.
        let mut fields = Vec::with_capacity(cands.len());
        let mut compiled: Vec<(usize, JsonPath, String)> = Vec::with_capacity(cands.len());
        let raw = catalog.table(database, table_name)?.clone();
        for cand in cands {
            let field_name = cache_field_name(&cand.location.column, &cand.location.path);
            let col_idx = raw
                .schema()
                .index_of(&cand.location.column)
                .ok_or_else(|| {
                    MaxsonError::invalid(format!(
                        "column {} missing in {database}.{table_name}",
                        cand.location.column
                    ))
                })?;
            let path = JsonPath::parse(&cand.location.path)
                .map_err(|e| MaxsonError::invalid(format!("bad path: {e}")))?;
            fields.push(Field::new(field_name.clone(), ColumnType::Utf8));
            compiled.push((col_idx, path, field_name));
        }
        let cache_schema = Schema::new(fields).map_err(MaxsonError::Storage)?;
        let ct_name = cache_table_name(database, table_name);
        catalog.create_table(CACHE_DB, &ct_name, cache_schema, now)?;

        // Parse file by file so cache file k aligns with raw file k. The
        // per-split parses are independent, so they run on worker threads
        // (the paper's population step is "done in a scalable way using
        // Spark"); the appends stay sequential to preserve file order.
        let needed: Vec<usize> = {
            let mut v: Vec<usize> = compiled.iter().map(|(c, _, _)| *c).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let split_results: Vec<Result<ParsedSplit>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..raw.file_count())
                .map(|split| {
                    let raw = &raw;
                    let compiled = &compiled;
                    let needed = &needed;
                    scope.spawn(move || parse_split(raw, split, compiled, needed))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parse worker must not panic"))
                .collect()
        });
        let mut total_bytes = 0u64;
        for result in split_results {
            let (rows, rg_size, bytes) = result?;
            total_bytes += bytes;
            catalog.table_mut(CACHE_DB, &ct_name)?.append_file(
                &rows,
                WriteOptions {
                    row_group_size: rg_size,
                    ..Default::default()
                },
                now,
            )?;
        }
        for cand in cands {
            registry.insert(CachedEntry {
                location: cand.location.clone(),
                cache_table: ct_name.clone(),
                cache_field: cache_field_name(&cand.location.column, &cand.location.path),
                cached_at: now,
                bytes: cand.estimated_bytes,
            });
        }
        Ok(total_bytes)
    }
}

/// One parsed raw split: `(rows, row_group_size, bytes)`.
type ParsedSplit = (Vec<Vec<Cell>>, usize, u64);

/// The cached paths of one source column, grouped so cache population
/// builds exactly one tape per raw JSON document no matter how many paths
/// it caches from it — the combiner-side mirror of the engine's
/// shared-parse slots.
struct ColumnPaths {
    /// Raw-table column index holding the JSON string.
    col: usize,
    /// Cache-row slot each path fills, in `paths` order.
    slots: Vec<usize>,
    /// The cached paths over this column.
    paths: Vec<JsonPath>,
}

/// Group `(column, path)` cache fields by column, remembering each field's
/// cache-row slot.
fn group_by_column<'a>(pairs: impl Iterator<Item = (usize, &'a JsonPath)>) -> Vec<ColumnPaths> {
    let mut groups: Vec<ColumnPaths> = Vec::new();
    for (slot, (col, path)) in pairs.enumerate() {
        match groups.iter_mut().find(|g| g.col == col) {
            Some(g) => {
                g.slots.push(slot);
                g.paths.push(path.clone());
            }
            None => groups.push(ColumnPaths {
                col,
                slots: vec![slot],
                paths: vec![path.clone()],
            }),
        }
    }
    groups
}

/// Fill cache row `i` from the raw columns: one tape per JSON document
/// answers every cached path over it. Non-string and invalid documents
/// leave their slots `Null`, exactly as the per-path DOM parse would.
fn extract_cache_row(
    groups: &[ColumnPaths],
    cols: &[maxson_storage::ColumnData],
    col_of: impl Fn(usize) -> usize,
    i: usize,
    width: usize,
) -> Vec<Cell> {
    let mut row = vec![Cell::Null; width];
    let mut stats = maxson_json::tape::TapeStats::default();
    for g in groups {
        if let Cell::Str(json) = cols[col_of(g.col)].get(i) {
            let values = maxson_json::tape::project_paths(&json, &g.paths, &mut stats);
            for (&slot, value) in g.slots.iter().zip(values) {
                row[slot] = value.map_or(Cell::Null, Cell::from);
            }
        }
    }
    row
}

/// Parse one raw split into cache rows.
fn parse_split(
    raw: &maxson_storage::Table,
    split: usize,
    compiled: &[(usize, JsonPath, String)],
    needed: &[usize],
) -> Result<ParsedSplit> {
    let file = raw.open_split(split)?;
    // Reconstruct the raw file's row-group size so boundaries match.
    let rg_size = file
        .row_groups()
        .map(|rg| rg.row_count)
        .max()
        .unwrap_or(maxson_storage::DEFAULT_ROW_GROUP_SIZE);
    let cols = file.read_columns(needed, None)?;
    let n = cols.first().map_or(0, |c| c.len());
    let col_of = |idx: usize| -> usize {
        needed
            .iter()
            .position(|&c| c == idx)
            .expect("requested column")
    };
    let groups = group_by_column(compiled.iter().map(|(c, p, _)| (*c, p)));
    let mut bytes = 0u64;
    let mut rows: Vec<Vec<Cell>> = Vec::with_capacity(n);
    for i in 0..n {
        let row = extract_cache_row(&groups, &cols, col_of, i, compiled.len());
        for value in &row {
            bytes += value.byte_size() as u64;
        }
        rows.push(row);
    }
    Ok((rows, rg_size, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpjp::MpjpCandidate;
    use crate::score::score_candidates;
    use maxson_trace::model::RecurrenceClass;
    use maxson_trace::QueryRecord;
    use std::path::PathBuf;

    fn temp_root(name: &str) -> PathBuf {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        std::env::temp_dir().join(format!(
            "maxson-cacher-{}-{nanos}-{name}",
            std::process::id()
        ))
    }

    fn loc(path: &str) -> JsonPathLocation {
        JsonPathLocation::new("db", "t", "payload", path)
    }

    fn setup(name: &str) -> (Catalog, PathBuf) {
        let root = temp_root(name);
        let mut cat = Catalog::open(&root).unwrap();
        let schema = Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("payload", ColumnType::Utf8),
        ])
        .unwrap();
        let t = cat.create_table("db", "t", schema, 0).unwrap();
        for f in 0..2 {
            let rows: Vec<Vec<Cell>> = (0..20)
                .map(|i| {
                    let n = f * 20 + i;
                    vec![
                        Cell::Int(n),
                        Cell::from(format!(r#"{{"a": {n}, "b": "s{n}"}}"#)),
                    ]
                })
                .collect();
            t.append_file(
                &rows,
                WriteOptions {
                    row_group_size: 8,
                    ..Default::default()
                },
                1,
            )
            .unwrap();
        }
        (cat, root)
    }

    fn ranked(cat: &Catalog, paths: &[&str]) -> Vec<ScoredMpjp> {
        let cands: Vec<MpjpCandidate> = paths
            .iter()
            .map(|p| MpjpCandidate {
                location: loc(p),
                target_day: 1,
            })
            .collect();
        let history: Vec<QueryRecord> = paths
            .iter()
            .map(|p| QueryRecord {
                query_id: 0,
                user_id: 0,
                day: 0,
                hour: 0,
                recurrence: RecurrenceClass::Daily,
                paths: vec![loc(p)],
            })
            .collect();
        score_candidates(cat, &cands, &history).unwrap()
    }

    #[test]
    fn populate_creates_aligned_cache_tables() {
        let (mut cat, root) = setup("aligned");
        let ranked = ranked(&cat, &["$.a", "$.b"]);
        let cacher = JsonPathCacher::new(u64::MAX);
        let (registry, report) = cacher.populate(&mut cat, &ranked, 5).unwrap();
        assert_eq!(registry.len(), 2);
        assert_eq!(report.cached.len(), 2);
        assert!(report.skipped.is_empty());

        let ct = cat.table(CACHE_DB, "db__t").unwrap();
        assert_eq!(ct.file_count(), 2, "one cache file per raw file");
        let raw = cat.table("db", "t").unwrap();
        for split in 0..2 {
            let rf = raw.open_split(split).unwrap();
            let cf = ct.open_split(split).unwrap();
            assert_eq!(rf.num_rows(), cf.num_rows());
            assert_eq!(rf.row_group_count(), cf.row_group_count());
            // Values parsed correctly.
            let rows = cf.read_all_rows().unwrap();
            let a_field = ct
                .schema()
                .index_of(&cache_field_name("payload", "$.a"))
                .unwrap();
            assert_eq!(rows[0][a_field], Cell::from(format!("{}", split * 20)));
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn budget_limits_admission_by_rank() {
        let (mut cat, root) = setup("budget");
        let ranked = ranked(&cat, &["$.a", "$.b"]);
        // Budget fits only the top-ranked candidate.
        let budget = ranked[0].estimated_bytes;
        let cacher = JsonPathCacher::new(budget);
        let (registry, report) = cacher.populate(&mut cat, &ranked, 5).unwrap();
        assert_eq!(registry.len(), 1);
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(
            registry.entries().next().unwrap().location,
            ranked[0].location
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn repopulation_drops_previous_cache_tables() {
        let (mut cat, root) = setup("repop");
        let ranked = ranked(&cat, &["$.a"]);
        let cacher = JsonPathCacher::new(u64::MAX);
        cacher.populate(&mut cat, &ranked, 5).unwrap();
        assert!(cat.has_table(CACHE_DB, "db__t"));
        let (_, report) = cacher.populate(&mut cat, &ranked, 6).unwrap();
        assert_eq!(report.dropped_tables, vec!["db__t".to_string()]);
        assert!(cat.has_table(CACHE_DB, "db__t"));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn registry_round_trips_through_disk() {
        let (mut cat, root) = setup("registry");
        let ranked = ranked(&cat, &["$.a", "$.b"]);
        let cacher = JsonPathCacher::new(u64::MAX);
        let (registry, _) = cacher.populate(&mut cat, &ranked, 9).unwrap();
        let loaded = CacheRegistry::load(&cat).unwrap();
        assert_eq!(loaded.len(), registry.len());
        let e = loaded.get(&loc("$.a")).unwrap();
        assert_eq!(e.cached_at, 9);
        assert_eq!(e.cache_table, "db__t");
        assert_eq!(e.cache_field, cache_field_name("payload", "$.a"));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn registry_load_missing_is_empty() {
        let root = temp_root("emptyreg");
        let cat = Catalog::open(&root).unwrap();
        let reg = CacheRegistry::load(&cat).unwrap();
        assert!(reg.is_empty());
        assert_eq!(reg.total_bytes(), 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn field_names_are_sanitized_and_distinct() {
        let a = cache_field_name("payload", "$.a.b[0]");
        let b = cache_field_name("payload", "$.a.b[1]");
        assert_ne!(a, b);
        assert!(a.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    }

    #[test]
    fn missing_json_values_cache_as_null() {
        let (mut cat, root) = setup("nulls");
        let ranked = ranked(&cat, &["$.nonexistent"]);
        let cacher = JsonPathCacher::new(u64::MAX);
        cacher.populate(&mut cat, &ranked, 5).unwrap();
        let ct = cat.table(CACHE_DB, "db__t").unwrap();
        let rows = ct.open_split(0).unwrap().read_all_rows().unwrap();
        assert!(rows.iter().all(|r| r[0].is_null()));
        std::fs::remove_dir_all(&root).ok();
    }
}

/// Outcome of an incremental refresh.
#[derive(Debug, Default)]
pub struct RefreshReport {
    /// New raw files parsed and appended per cache table.
    pub appended_files: usize,
    /// Paths whose cache entries were revalidated (cached_at bumped).
    pub refreshed_paths: usize,
    /// Raw tables that changed in a way incremental refresh cannot handle
    /// (in-place modification): these need a full repopulation.
    pub needs_full: Vec<(String, String)>,
}

impl JsonPathCacher {
    /// Incrementally refresh stale cache entries.
    ///
    /// The warehouse is append-only (§II-B: appended data is almost never
    /// modified), so when a raw table's only change since the last
    /// population is new part files, the cacher can parse *just those
    /// files* and append them to the existing cache table — file alignment
    /// is preserved by construction — instead of re-parsing everything at
    /// midnight. Tables whose file count did not grow but whose
    /// modification time advanced were modified in place (the rare 2% case
    /// in the paper's study); those are reported in
    /// [`RefreshReport::needs_full`] and left untouched for the next full
    /// cycle.
    pub fn refresh_incremental(
        &self,
        catalog: &mut Catalog,
        registry: &mut CacheRegistry,
        now: u64,
    ) -> Result<RefreshReport> {
        let mut report = RefreshReport::default();
        // Group entries per (raw db, raw table).
        let mut by_table: BTreeMap<(String, String), Vec<CachedEntry>> = BTreeMap::new();
        for e in registry.entries() {
            by_table
                .entry((e.location.database.clone(), e.location.table.clone()))
                .or_default()
                .push(e.clone());
        }
        for ((db, table_name), entries) in by_table {
            let raw = catalog.table(&db, &table_name)?.clone();
            let stale = entries.iter().any(|e| raw.modified_at() > e.cached_at);
            if !stale {
                continue;
            }
            let ct_name = entries[0].cache_table.clone();
            let cache_files = catalog.table(CACHE_DB, &ct_name)?.file_count();
            if raw.file_count() <= cache_files {
                // Modified without growing: in-place change, cannot refresh
                // incrementally.
                report.needs_full.push((db, table_name));
                continue;
            }
            // Compile the cached paths of this table in cache-schema order.
            let cache_schema = catalog.table(CACHE_DB, &ct_name)?.schema().clone();
            let mut compiled: Vec<(usize, JsonPath)> = Vec::new();
            for field in cache_schema.fields() {
                let entry = entries
                    .iter()
                    .find(|e| e.cache_field == field.name)
                    .ok_or_else(|| {
                        MaxsonError::invalid(format!(
                            "cache field {} has no registry entry",
                            field.name
                        ))
                    })?;
                let col_idx = raw
                    .schema()
                    .index_of(&entry.location.column)
                    .ok_or_else(|| {
                        MaxsonError::invalid(format!(
                            "column {} missing in {db}.{table_name}",
                            entry.location.column
                        ))
                    })?;
                let path = JsonPath::parse(&entry.location.path)
                    .map_err(|e| MaxsonError::invalid(format!("bad path: {e}")))?;
                compiled.push((col_idx, path));
            }
            // Parse only the new splits.
            for split in cache_files..raw.file_count() {
                let file = raw.open_split(split)?;
                let rg_size = file
                    .row_groups()
                    .map(|rg| rg.row_count)
                    .max()
                    .unwrap_or(maxson_storage::DEFAULT_ROW_GROUP_SIZE);
                let needed: Vec<usize> = {
                    let mut v: Vec<usize> = compiled.iter().map(|(c, _)| *c).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                };
                let cols = file.read_columns(&needed, None)?;
                let n = cols.first().map_or(0, |c| c.len());
                let col_of = |idx: usize| -> usize {
                    needed
                        .iter()
                        .position(|&c| c == idx)
                        .expect("requested column")
                };
                let groups = group_by_column(compiled.iter().map(|(c, p)| (*c, p)));
                let mut rows: Vec<Vec<Cell>> = Vec::with_capacity(n);
                for i in 0..n {
                    rows.push(extract_cache_row(
                        &groups,
                        &cols,
                        &col_of,
                        i,
                        compiled.len(),
                    ));
                }
                catalog.table_mut(CACHE_DB, &ct_name)?.append_file(
                    &rows,
                    WriteOptions {
                        row_group_size: rg_size,
                        ..Default::default()
                    },
                    now,
                )?;
                report.appended_files += 1;
            }
            // Revalidate the entries.
            for e in &entries {
                let mut updated = e.clone();
                updated.cached_at = now;
                registry.insert(updated);
                report.refreshed_paths += 1;
            }
        }
        registry.save(catalog)?;
        Ok(report)
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;
    use crate::mpjp::MpjpCandidate;
    use crate::score::score_candidates;
    use maxson_engine::session::Session;
    use maxson_trace::model::RecurrenceClass;
    use maxson_trace::QueryRecord;
    use std::path::PathBuf;

    fn temp_root(name: &str) -> PathBuf {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        std::env::temp_dir().join(format!("maxson-incr-{}-{nanos}-{name}", std::process::id()))
    }

    fn loc(path: &str) -> JsonPathLocation {
        JsonPathLocation::new("db", "t", "payload", path)
    }

    fn rows(from: i64, n: i64) -> Vec<Vec<Cell>> {
        (from..from + n)
            .map(|i| vec![Cell::Int(i), Cell::from(format!(r#"{{"a": {i}}}"#))])
            .collect()
    }

    fn setup(name: &str) -> (Catalog, CacheRegistry, PathBuf) {
        let root = temp_root(name);
        let mut catalog = Catalog::open(&root).unwrap();
        let schema = Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("payload", ColumnType::Utf8),
        ])
        .unwrap();
        let t = catalog.create_table("db", "t", schema, 0).unwrap();
        t.append_file(
            &rows(0, 20),
            WriteOptions {
                row_group_size: 5,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        let cands = vec![MpjpCandidate {
            location: loc("$.a"),
            target_day: 1,
        }];
        let history = vec![QueryRecord {
            query_id: 0,
            user_id: 0,
            day: 0,
            hour: 0,
            recurrence: RecurrenceClass::Daily,
            paths: vec![loc("$.a")],
        }];
        let ranked = score_candidates(&catalog, &cands, &history).unwrap();
        let cacher = JsonPathCacher::new(u64::MAX);
        let (registry, _) = cacher.populate(&mut catalog, &ranked, 100).unwrap();
        (catalog, registry, root)
    }

    #[test]
    fn appended_files_are_parsed_incrementally() {
        let (mut catalog, mut registry, root) = setup("append");
        // Two new part files land at time 200.
        catalog
            .table_mut("db", "t")
            .unwrap()
            .append_file(
                &rows(20, 20),
                WriteOptions {
                    row_group_size: 5,
                    ..Default::default()
                },
                200,
            )
            .unwrap();
        catalog
            .table_mut("db", "t")
            .unwrap()
            .append_file(
                &rows(40, 10),
                WriteOptions {
                    row_group_size: 5,
                    ..Default::default()
                },
                201,
            )
            .unwrap();
        let cacher = JsonPathCacher::new(u64::MAX);
        let report = cacher
            .refresh_incremental(&mut catalog, &mut registry, 300)
            .unwrap();
        assert_eq!(report.appended_files, 2);
        assert_eq!(report.refreshed_paths, 1);
        assert!(report.needs_full.is_empty());
        // Cache is aligned with the grown raw table and revalidated.
        let ct = catalog.table(CACHE_DB, "db__t").unwrap();
        assert_eq!(ct.file_count(), 3);
        assert_eq!(ct.num_rows().unwrap(), 50);
        assert_eq!(registry.get(&loc("$.a")).unwrap().cached_at, 300);

        // End to end: a fresh session over the refreshed cache serves all
        // 50 rows without parsing.
        let mut session = Session::open(&root).unwrap();
        let rewriter = crate::rewriter::MaxsonScanRewriter::open(&root).unwrap();
        session.set_scan_rewriter(Some(Box::new(rewriter)));
        let result = session
            .execute("select get_json_object(payload, '$.a') as a from db.t")
            .unwrap();
        assert_eq!(result.rows.len(), 50);
        assert_eq!(result.rows[45][0], Cell::Str("45".into()));
        assert_eq!(result.metrics.parse_calls, 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn in_place_modification_demands_full_repopulation() {
        let (mut catalog, mut registry, root) = setup("inplace");
        // Touch without appending: simulates in-place modification.
        catalog.table_mut("db", "t").unwrap().touch(500).unwrap();
        let cacher = JsonPathCacher::new(u64::MAX);
        let report = cacher
            .refresh_incremental(&mut catalog, &mut registry, 600)
            .unwrap();
        assert_eq!(report.appended_files, 0);
        assert_eq!(report.refreshed_paths, 0);
        assert_eq!(report.needs_full, vec![("db".to_string(), "t".to_string())]);
        // Entry stays stale: the rewriter will keep refusing it.
        assert_eq!(registry.get(&loc("$.a")).unwrap().cached_at, 100);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn fresh_cache_is_left_alone() {
        let (mut catalog, mut registry, root) = setup("fresh");
        let cacher = JsonPathCacher::new(u64::MAX);
        let report = cacher
            .refresh_incremental(&mut catalog, &mut registry, 700)
            .unwrap();
        assert_eq!(report.appended_files, 0);
        assert_eq!(report.refreshed_paths, 0);
        assert!(report.needs_full.is_empty());
        std::fs::remove_dir_all(&root).ok();
    }
}
