//! The online-caching baseline with LRU replacement (Fig. 14).
//!
//! This is the conventional design the paper argues against (§III-A):
//! values are cached *when first accessed*, so the first query over a
//! JSONPath always pays the parse cost, and an LRU policy evicts under the
//! byte budget. Implemented as a [`TableScanRewriter`] whose provider
//! serves cached columns from memory, parses misses on the spot (charging
//! parse time), and inserts them into the LRU.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use maxson_engine::metrics::ExecMetrics;
use maxson_engine::scan::ScanProvider;
use maxson_engine::session::{ScanContext, ScanRewrite, TableScanRewriter};
use maxson_engine::EngineError;
use maxson_json::JsonPath;
use maxson_obs::Tracer;
use maxson_storage::{Catalog, Cell, Field, Schema, Table};
use maxson_trace::JsonPathLocation;

/// One cached value column.
#[derive(Debug)]
struct LruEntry {
    values: Arc<Vec<Cell>>,
    bytes: u64,
    /// Raw table modification time at insert (for invalidation).
    table_version: u64,
    /// LRU clock at last touch.
    last_used: u64,
}

/// Shared LRU state.
#[derive(Debug, Default)]
struct LruState {
    entries: HashMap<String, LruEntry>,
    clock: u64,
    used_bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Counters reported for Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LruStats {
    /// JSONPath accesses served from the cache.
    pub hits: u64,
    /// Accesses that had to parse.
    pub misses: u64,
    /// Bytes currently resident.
    pub used_bytes: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Entries evicted to make room since the rewriter opened.
    pub evictions: u64,
}

impl LruStats {
    /// Hit ratio over all accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The online LRU rewriter/baseline.
pub struct OnlineLruRewriter {
    catalog: Catalog,
    budget_bytes: u64,
    state: Arc<Mutex<LruState>>,
    tracer: Tracer,
    /// Process-wide metric registry the resident-bytes gauge lands in.
    metrics: Arc<maxson_obs::Registry>,
}

impl OnlineLruRewriter {
    /// Open over the warehouse at `root` with a byte budget.
    pub fn open(root: impl Into<PathBuf>, budget_bytes: u64) -> crate::Result<Self> {
        Ok(OnlineLruRewriter {
            catalog: Catalog::open(root.into())?,
            budget_bytes,
            state: Arc::new(Mutex::new(LruState::default())),
            tracer: Tracer::disabled(),
            metrics: Arc::clone(maxson_obs::Registry::global()),
        })
    }

    /// Record hit/miss/evict events and per-scan spans into `tracer`
    /// (normally a clone of the session's, so LRU activity shows up in the
    /// same trace file as the queries that caused it).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Replace the metric registry (tests inject a fresh one; the default
    /// is the process-wide [`maxson_obs::Registry::global`]).
    pub fn set_metrics_registry(&mut self, registry: Arc<maxson_obs::Registry>) {
        self.metrics = registry;
    }

    /// Current counters.
    pub fn stats(&self) -> LruStats {
        let s = self.state.lock().expect("lru state lock");
        LruStats {
            hits: s.hits,
            misses: s.misses,
            used_bytes: s.used_bytes,
            entries: s.entries.len(),
            evictions: s.evictions,
        }
    }
}

impl TableScanRewriter for OnlineLruRewriter {
    fn name(&self) -> &str {
        "OnlineLRU"
    }

    fn rewrite_scan(&self, ctx: &ScanContext<'_>) -> maxson_engine::Result<Option<ScanRewrite>> {
        if ctx.json_calls.is_empty() {
            return Ok(None);
        }
        let table = self
            .catalog
            .table(ctx.database, ctx.table)
            .map_err(EngineError::Storage)?
            .clone();
        // Output schema: raw columns then one pseudo-column per call.
        let mut raw_names: Vec<String> = ctx.raw_columns.to_vec();
        // The JSON columns themselves are read by the provider to parse
        // misses, but are only part of the *output* if referenced raw.
        raw_names.sort_by_key(|c| ctx.table_schema.index_of(c));
        let raw_projection: Vec<usize> = raw_names
            .iter()
            .filter_map(|c| ctx.table_schema.index_of(c))
            .collect();
        let mut out_fields: Vec<Field> = raw_projection
            .iter()
            .map(|&i| ctx.table_schema.fields()[i].clone())
            .collect();
        let mut resolved = Vec::new();
        let mut call_fields = Vec::new();
        for (i, (column, path)) in ctx.json_calls.iter().enumerate() {
            let field = format!("__lru{i}");
            out_fields.push(Field::new(field.clone(), maxson_storage::ColumnType::Utf8));
            resolved.push(((column.clone(), path.clone()), field.clone()));
            call_fields.push((column.clone(), path.clone()));
        }
        let out_schema = Schema::new(out_fields).map_err(EngineError::Storage)?;
        let provider = LruBackedProvider {
            table,
            database: ctx.database.to_string(),
            table_name: ctx.table.to_string(),
            raw_projection,
            calls: call_fields,
            out_schema,
            state: Arc::clone(&self.state),
            budget_bytes: self.budget_bytes,
            tracer: self.tracer.clone(),
            metrics: Arc::clone(&self.metrics),
        };
        Ok(Some(ScanRewrite {
            provider: Box::new(provider),
            resolved_paths: resolved,
        }))
    }
}

/// Provider that serves JSON calls from the LRU, parsing on miss.
struct LruBackedProvider {
    table: Table,
    database: String,
    table_name: String,
    raw_projection: Vec<usize>,
    calls: Vec<(String, String)>,
    out_schema: Schema,
    state: Arc<Mutex<LruState>>,
    budget_bytes: u64,
    tracer: Tracer,
    metrics: Arc<maxson_obs::Registry>,
}

impl std::fmt::Debug for LruBackedProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LruBackedProvider({}.{})",
            self.database, self.table_name
        )
    }
}

impl ScanProvider for LruBackedProvider {
    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn scan(&self, metrics: &mut ExecMetrics) -> maxson_engine::Result<Vec<Vec<Cell>>> {
        let span = self.tracer.span("lru_scan");
        span.attr("table", format!("{}.{}", self.database, self.table_name));
        let read_start = Instant::now();
        // Read raw output columns.
        let mut raw_cols = Vec::new();
        for split in 0..self.table.file_count() {
            let (file, meta_hit) = self
                .table
                .open_split_cached(split)
                .map_err(EngineError::Storage)?;
            if meta_hit {
                metrics.meta_cache_hits += 1;
            } else {
                metrics.meta_cache_misses += 1;
            }
            let cols = file
                .read_columns(&self.raw_projection, None)
                .map_err(EngineError::Storage)?;
            raw_cols.push(cols);
        }
        let read_spent = read_start.elapsed();
        metrics.read += read_spent;
        metrics.read_wall += read_spent;

        // Resolve every call: hit -> cached column; miss -> parse now.
        let version = self.table.modified_at();
        let mut call_columns: Vec<Arc<Vec<Cell>>> = Vec::with_capacity(self.calls.len());
        for (column, path) in &self.calls {
            let loc = JsonPathLocation::new(
                self.database.clone(),
                self.table_name.clone(),
                column.clone(),
                path.clone(),
            );
            let key = loc.key();
            let hit = {
                let mut st = self.state.lock().expect("lru state lock");
                st.clock += 1;
                let clock = st.clock;
                match st.entries.get_mut(&key) {
                    Some(e) if e.table_version == version => {
                        e.last_used = clock;
                        Some(Arc::clone(&e.values))
                    }
                    _ => None,
                }
            };
            if let Some(values) = hit {
                self.state.lock().expect("lru state lock").hits += 1;
                metrics.cache_hits += values.len() as u64;
                metrics.lru_hits += 1;
                metrics.charge_path_extracts(path, values.len() as u64);
                self.tracer.add("lru.hit", 1);
                call_columns.push(values);
                continue;
            }
            // Miss: parse the whole column (the first query pays, §III-A).
            self.state.lock().expect("lru state lock").misses += 1;
            metrics.lru_misses += 1;
            self.tracer.add("lru.miss", 1);
            let col_idx = self
                .table
                .schema()
                .index_of(column)
                .ok_or_else(|| EngineError::plan(format!("column '{column}' missing")))?;
            let compiled = JsonPath::parse(path)
                .map_err(|e| EngineError::plan(format!("bad path '{path}': {e}")))?;
            let mut values = Vec::new();
            let mut bytes = 0u64;
            for split in 0..self.table.file_count() {
                let file = self.table.open_split(split).map_err(EngineError::Storage)?;
                let cols = file
                    .read_columns(&[col_idx], None)
                    .map_err(EngineError::Storage)?;
                let parse_start = Instant::now();
                let mut stats = maxson_json::tape::TapeStats::default();
                for i in 0..cols[0].len() {
                    let v = match cols[0].get(i) {
                        Cell::Str(json) => {
                            maxson_json::tape::project_path(&json, &compiled, &mut stats)
                                .map_or(Cell::Null, Cell::from)
                        }
                        _ => Cell::Null,
                    };
                    bytes += v.byte_size() as u64;
                    values.push(v);
                    metrics.parse_calls += 1;
                    // One real parse per value: the LRU fills one path at a
                    // time, so there is no intra-column sharing here.
                    metrics.docs_parsed += 1;
                }
                let parse_spent = parse_start.elapsed();
                metrics.parse += parse_spent;
                metrics.parse_wall += parse_spent;
                metrics.nodes_skipped += stats.nodes_skipped;
                metrics.charge_path_extracts(path, cols[0].len() as u64);
            }
            let values = Arc::new(values);
            // Insert with LRU eviction.
            {
                let mut st = self.state.lock().expect("lru state lock");
                st.clock += 1;
                let clock = st.clock;
                while st.used_bytes + bytes > self.budget_bytes && !st.entries.is_empty() {
                    let victim = st
                        .entries
                        .iter()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(k, _)| k.clone())
                        .expect("non-empty");
                    if let Some(e) = st.entries.remove(&victim) {
                        st.used_bytes -= e.bytes;
                        st.evictions += 1;
                        metrics.lru_evictions += 1;
                        self.tracer.add("lru.evict", 1);
                    }
                }
                if bytes <= self.budget_bytes {
                    st.used_bytes += bytes;
                    st.entries.insert(
                        key,
                        LruEntry {
                            values: Arc::clone(&values),
                            bytes,
                            table_version: version,
                            last_used: clock,
                        },
                    );
                }
                metrics.lru_resident_bytes = metrics.lru_resident_bytes.max(st.used_bytes);
                self.metrics
                    .gauge("maxson_lru_resident_bytes", &[])
                    .set(st.used_bytes);
            }
            call_columns.push(values);
        }

        // Stitch rows: raw columns then call columns, split by split.
        let mut rows = Vec::new();
        let mut offset = 0usize;
        for cols in &raw_cols {
            let n = if cols.is_empty() {
                // No raw output columns: derive length from call columns.
                call_columns.first().map(|c| c.len() - offset).unwrap_or(0)
            } else {
                cols[0].len()
            };
            for i in 0..n {
                let mut row: Vec<Cell> = cols.iter().map(|c| c.get(i)).collect();
                for cc in &call_columns {
                    row.push(cc[offset + i].clone());
                }
                metrics.bytes_read += row.iter().map(Cell::byte_size).sum::<usize>() as u64;
                rows.push(row);
            }
            offset += n;
            if cols.is_empty() {
                break;
            }
        }
        metrics.rows_scanned += rows.len() as u64;
        span.attr("rows_out", rows.len());
        Ok(rows)
    }

    fn label(&self) -> String {
        format!("OnlineLruScan({}.{})", self.database, self.table_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxson_engine::session::Session;
    use maxson_storage::file::WriteOptions;
    use maxson_storage::ColumnType;
    use std::path::PathBuf;

    fn temp_root(name: &str) -> PathBuf {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        std::env::temp_dir().join(format!("maxson-lru-{}-{nanos}-{name}", std::process::id()))
    }

    fn setup(name: &str) -> (Session, PathBuf) {
        let root = temp_root(name);
        let mut session = Session::open(&root).unwrap();
        let schema = Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("payload", ColumnType::Utf8),
        ])
        .unwrap();
        let mut catalog = session.catalog_mut();
        let t = catalog.create_table("db", "t", schema, 0).unwrap();
        let rows: Vec<Vec<Cell>> = (0..30)
            .map(|i| {
                vec![
                    Cell::Int(i),
                    Cell::from(format!(r#"{{"a": {i}, "b": "x{i}"}}"#)),
                ]
            })
            .collect();
        t.append_file(&rows, WriteOptions::default(), 1).unwrap();
        drop(catalog);
        (session, root)
    }

    #[test]
    fn first_access_misses_then_hits() {
        let (mut session, root) = setup("hits");
        let lru = OnlineLruRewriter::open(&root, u64::MAX).unwrap();
        let stats_handle = Arc::clone(&lru.state);
        session.set_scan_rewriter(Some(Box::new(lru)));
        let sql = "select get_json_object(payload, '$.a') as a from db.t";
        let r1 = session.execute(sql).unwrap();
        assert_eq!(r1.rows.len(), 30);
        assert_eq!(r1.rows[5][0], Cell::Str("5".into()));
        {
            let st = stats_handle.lock().unwrap();
            assert_eq!(st.misses, 1);
            assert_eq!(st.hits, 0);
        }
        let r2 = session.execute(sql).unwrap();
        assert_eq!(r2.rows, r1.rows);
        {
            let st = stats_handle.lock().unwrap();
            assert_eq!(st.misses, 1);
            assert_eq!(st.hits, 1);
        }
        // The hit run performs no parsing.
        assert_eq!(r2.metrics.parse_calls, 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn eviction_under_small_budget() {
        let (mut session, root) = setup("evict");
        // Budget fits roughly one column of small values.
        let lru = OnlineLruRewriter::open(&root, 80).unwrap();
        let state = Arc::clone(&lru.state);
        session.set_scan_rewriter(Some(Box::new(lru)));
        session
            .execute("select get_json_object(payload, '$.a') as a from db.t")
            .unwrap();
        session
            .execute("select get_json_object(payload, '$.b') as b from db.t")
            .unwrap();
        {
            let st = state.lock().unwrap();
            assert!(st.entries.len() <= 1, "budget forces eviction");
            assert!(st.used_bytes <= 80);
        }
        // $.a was evicted: next access misses again.
        session
            .execute("select get_json_object(payload, '$.a') as a from db.t")
            .unwrap();
        assert_eq!(state.lock().unwrap().misses, 3);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn table_update_invalidates_entries() {
        let (mut session, root) = setup("invalidate");
        let lru = OnlineLruRewriter::open(&root, u64::MAX).unwrap();
        let state = Arc::clone(&lru.state);
        session.set_scan_rewriter(Some(Box::new(lru)));
        let sql = "select get_json_object(payload, '$.a') as a from db.t";
        session.execute(sql).unwrap();
        assert_eq!(state.lock().unwrap().misses, 1);
        // Append new data: version bump.
        session
            .catalog_mut()
            .table_mut("db", "t")
            .unwrap()
            .append_file(
                &[vec![Cell::Int(99), Cell::Str(r#"{"a": 99}"#.into())]],
                WriteOptions::default(),
                7,
            )
            .unwrap();
        // The rewriter's own catalog instance must observe the change; it
        // reads from disk via Table metadata, but our in-memory Table handle
        // is stale — reopen to simulate the next planning cycle.
        let lru2 = OnlineLruRewriter::open(&root, u64::MAX).unwrap();
        // Carry over the old state to prove invalidation (versions differ).
        *lru2.state.lock().unwrap() = std::mem::take(&mut state.lock().unwrap());
        let state2 = Arc::clone(&lru2.state);
        session.set_scan_rewriter(Some(Box::new(lru2)));
        let r = session.execute(sql).unwrap();
        assert_eq!(r.rows.len(), 31);
        assert_eq!(
            state2.lock().unwrap().misses,
            2,
            "stale entry must not be served"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn hit_ratio_math() {
        let s = LruStats {
            hits: 3,
            misses: 1,
            used_bytes: 0,
            entries: 0,
            evictions: 0,
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(LruStats::default().hit_ratio(), 0.0);
    }
}
