//! End-to-end engine tests: SQL in, rows out, over real Norc tables.

use maxson_engine::session::{JsonParserKind, Session};
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};
use std::path::PathBuf;

fn temp_root(name: &str) -> PathBuf {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("maxson-e2e-{}-{nanos}-{name}", std::process::id()))
}

/// Build the Fig. 1 sales table: mall_id, date, sale_logs (JSON).
fn sales_session(name: &str) -> (Session, PathBuf) {
    let root = temp_root(name);
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("mall_id", ColumnType::Utf8),
        Field::new("date", ColumnType::Int64),
        Field::new("sale_logs", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("mydb", "t", schema, 0).unwrap();
    let items = [
        ("apple", 10, 20, 2),
        ("watermelon", 5, 50, 10),
        ("banana", 30, 90, 3),
        ("pear", 8, 24, 3),
        ("apple", 4, 8, 2),
        ("banana", 11, 33, 3),
    ];
    let rows: Vec<Vec<Cell>> = items
        .iter()
        .enumerate()
        .map(|(i, (name, count, turnover, price))| {
            vec![
                Cell::Str("0001".into()),
                Cell::Int(20190101 + i as i64 % 3),
                Cell::from(format!(
                    r#"{{"item_id": {i}, "item_name": "{name}", "sale_count": {count}, "turnover": {turnover}, "price": {price}}}"#
                )),
            ]
        })
        .collect();
    table
        .append_file(&rows, WriteOptions::default(), 1)
        .unwrap();
    drop(catalog);
    (session, root)
}

#[test]
fn fig1_top_turnover_query() {
    let (session, root) = sales_session("fig1");
    let sql = "select mall_id, get_json_object(sale_logs, '$.item_id') as item_id, \
               get_json_object(sale_logs, '$.item_name') as item_name, \
               get_json_object(sale_logs, '$.turnover') as turnover \
               from mydb.t where date between 20190101 and 20190103 \
               order by get_json_object(sale_logs, '$.turnover') desc limit 1";
    let result = session.execute(sql).unwrap();
    assert_eq!(
        result.columns,
        vec!["mall_id", "item_id", "item_name", "turnover"]
    );
    assert_eq!(result.rows.len(), 1);
    assert_eq!(result.rows[0][2], Cell::Str("banana".into()));
    assert_eq!(result.rows[0][3], Cell::Str("90".into()));
    assert!(result.metrics.parse_calls > 0);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn count_group_by_json_field() {
    let (session, root) = sales_session("groupby");
    let sql = "select get_json_object(sale_logs, '$.item_name') as item, count(*) as n \
               from mydb.t group by get_json_object(sale_logs, '$.item_name') \
               order by n desc, item limit 10";
    let result = session.execute(sql).unwrap();
    assert_eq!(
        result.rows[0],
        vec![Cell::Str("apple".into()), Cell::Int(2)]
    );
    assert_eq!(
        result.rows[1],
        vec![Cell::Str("banana".into()), Cell::Int(2)]
    );
    assert_eq!(result.rows.len(), 4);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn self_join_on_json_field() {
    let (session, root) = sales_session("selfjoin");
    let sql = "select a.date, b.date from mydb.t a join mydb.t b \
               on get_json_object(a.payload_missing_guard, '$.x') = get_json_object(b.sale_logs, '$.x') \
               limit 1";
    // Unknown column must be a planning error, not a panic.
    assert!(session.execute(sql).is_err());

    let sql = "select get_json_object(a.sale_logs, '$.item_name') as item \
               from mydb.t a join mydb.t b \
               on get_json_object(a.sale_logs, '$.item_name') = get_json_object(b.sale_logs, '$.item_name') \
               order by item limit 100";
    let result = session.execute(sql).unwrap();
    // apple:2 matches -> 4 pairs; banana -> 4; watermelon, pear -> 1 each.
    assert_eq!(result.rows.len(), 10);
    assert_eq!(result.rows[0][0], Cell::Str("apple".into()));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn arithmetic_on_json_values() {
    let (session, root) = sales_session("arith");
    let sql = "select get_json_object(sale_logs, '$.item_name') as item, \
               get_json_object(sale_logs, '$.turnover') / get_json_object(sale_logs, '$.sale_count') as unit_price \
               from mydb.t where get_json_object(sale_logs, '$.item_name') = 'banana' \
               order by item limit 10";
    let result = session.execute(sql).unwrap();
    assert_eq!(result.rows.len(), 2);
    assert_eq!(result.rows[0][1], Cell::Float(3.0));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn sum_avg_min_max_over_json() {
    let (session, root) = sales_session("aggs");
    let sql = "select sum(get_json_object(sale_logs, '$.sale_count')) as total, \
               min(get_json_object(sale_logs, '$.price')) as cheapest, \
               max(get_json_object(sale_logs, '$.price')) as dearest, \
               avg(get_json_object(sale_logs, '$.sale_count')) as mean \
               from mydb.t";
    let result = session.execute(sql).unwrap();
    assert_eq!(result.rows.len(), 1);
    assert_eq!(result.rows[0][0], Cell::Float(68.0));
    assert_eq!(result.rows[0][1], Cell::Str("2".into()));
    assert_eq!(result.rows[0][2], Cell::Str("10".into()));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn sarg_pushdown_skips_row_groups_on_raw_columns() {
    let root = temp_root("sargskip");
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("v", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("db", "big", schema, 0).unwrap();
    let rows: Vec<Vec<Cell>> = (0..100)
        .map(|i| vec![Cell::Int(i), Cell::from(format!("v{i}"))])
        .collect();
    table
        .append_file(
            &rows,
            WriteOptions {
                row_group_size: 10,
                ..Default::default()
            },
            1,
        )
        .unwrap();
    drop(catalog);
    let result = session
        .execute("select id from db.big where id >= 95")
        .unwrap();
    assert_eq!(result.rows.len(), 5);
    assert_eq!(result.metrics.row_groups_skipped, 9);
    assert_eq!(result.metrics.row_groups_read, 1);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn mison_parser_produces_same_results() {
    let (mut session, root) = sales_session("mison");
    let sql = "select get_json_object(sale_logs, '$.item_name') as item from mydb.t order by item";
    let jackson = session.execute(sql).unwrap();
    session.set_parser_kind(JsonParserKind::Mison);
    let mison = session.execute(sql).unwrap();
    assert_eq!(jackson.rows, mison.rows);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn projection_pruning_reads_only_needed_columns() {
    let (session, root) = sales_session("prune");
    // Query touching only `date`: the JSON column must not be read, so
    // bytes_read stays small.
    let slim = session.execute("select date from mydb.t").unwrap();
    let fat = session
        .execute("select date, sale_logs from mydb.t")
        .unwrap();
    assert!(slim.metrics.bytes_read < fat.metrics.bytes_read / 2);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn wildcard_select() {
    let (session, root) = sales_session("wild");
    let result = session.execute("select * from mydb.t limit 2").unwrap();
    assert_eq!(result.columns, vec!["mall_id", "date", "sale_logs"]);
    assert_eq!(result.rows.len(), 2);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn order_by_non_projected_expression() {
    let (session, root) = sales_session("hidden");
    let result = session
        .execute(
            "select get_json_object(sale_logs, '$.item_name') as item from mydb.t \
             order by get_json_object(sale_logs, '$.turnover') desc limit 2",
        )
        .unwrap();
    assert_eq!(result.columns, vec!["item"]);
    assert_eq!(result.rows[0][0], Cell::Str("banana".into()));
    assert_eq!(result.rows[1][0], Cell::Str("watermelon".into()));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn missing_json_path_yields_null() {
    let (session, root) = sales_session("nullpath");
    let result = session
        .execute("select get_json_object(sale_logs, '$.nonexistent') as v from mydb.t limit 3")
        .unwrap();
    assert!(result.rows.iter().all(|r| r[0].is_null()));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn metrics_parse_fraction_dominates_for_json_heavy_query() {
    let (session, root) = sales_session("fraction");
    let sql = "select get_json_object(sale_logs, '$.item_id') as a, \
               get_json_object(sale_logs, '$.item_name') as b, \
               get_json_object(sale_logs, '$.sale_count') as c, \
               get_json_object(sale_logs, '$.turnover') as d, \
               get_json_object(sale_logs, '$.price') as e from mydb.t";
    let result = session.execute(sql).unwrap();
    assert_eq!(result.metrics.parse_calls, 6 * 5);
    assert!(result.metrics.parse > std::time::Duration::ZERO);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn plan_display_shows_tree() {
    let (session, root) = sales_session("display");
    let result = session
        .execute("select date from mydb.t where date = 20190101 limit 1")
        .unwrap();
    assert!(result.plan_display.contains("Limit"));
    assert!(result.plan_display.contains("Scan"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn distinct_deduplicates_rows() {
    let (session, root) = sales_session("distinct");
    let result = session
        .execute("select distinct get_json_object(sale_logs, '$.item_name') as item from mydb.t order by item")
        .unwrap();
    assert_eq!(result.rows.len(), 4);
    assert_eq!(result.rows[0][0], Cell::Str("apple".into()));
    // Without DISTINCT there are 6 rows.
    let plain = session
        .execute("select get_json_object(sale_logs, '$.item_name') as item from mydb.t")
        .unwrap();
    assert_eq!(plain.rows.len(), 6);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn having_filters_groups() {
    let (session, root) = sales_session("having");
    let result = session
        .execute(
            "select get_json_object(sale_logs, '$.item_name') as item, count(*) as n \
             from mydb.t group by get_json_object(sale_logs, '$.item_name') \
             having count(*) >= 2 order by item",
        )
        .unwrap();
    assert_eq!(result.rows.len(), 2);
    assert_eq!(result.rows[0][0], Cell::Str("apple".into()));
    assert_eq!(result.rows[1][0], Cell::Str("banana".into()));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn having_without_group_by_is_an_error() {
    let (session, root) = sales_session("having-err");
    assert!(session
        .execute("select date from mydb.t having count(*) > 1")
        .is_err());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn in_list_and_not_in() {
    let (session, root) = sales_session("inlist");
    let result = session
        .execute(
            "select date from mydb.t \
             where get_json_object(sale_logs, '$.item_name') in ('apple', 'pear')",
        )
        .unwrap();
    assert_eq!(result.rows.len(), 3);
    let result = session
        .execute(
            "select date from mydb.t \
             where get_json_object(sale_logs, '$.item_name') not in ('apple', 'pear')",
        )
        .unwrap();
    assert_eq!(result.rows.len(), 3); // watermelon + 2 bananas
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn like_patterns() {
    let (session, root) = sales_session("like");
    let result = session
        .execute(
            "select distinct get_json_object(sale_logs, '$.item_name') as item \
             from mydb.t where get_json_object(sale_logs, '$.item_name') like '%an%' \
             order by item",
        )
        .unwrap();
    // banana, watermelon... 'an': banana yes, watermelon no ('an' not in it),
    // pear no, apple no.
    assert_eq!(result.rows, vec![vec![Cell::Str("banana".into())]]);
    let result = session
        .execute(
            "select distinct get_json_object(sale_logs, '$.item_name') as item \
             from mydb.t where get_json_object(sale_logs, '$.item_name') like '_ear'",
        )
        .unwrap();
    assert_eq!(result.rows, vec![vec![Cell::Str("pear".into())]]);
    let result = session
        .execute(
            "select distinct get_json_object(sale_logs, '$.item_name') as item \
             from mydb.t where get_json_object(sale_logs, '$.item_name') not like '%a%' \
             order by item",
        )
        .unwrap();
    assert_eq!(result.rows.len(), 0, "all four items contain 'a'");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn count_distinct() {
    let (session, root) = sales_session("countdistinct");
    let result = session
        .execute(
            "select count(distinct get_json_object(sale_logs, '$.item_name')) as items, \
             count(*) as total from mydb.t",
        )
        .unwrap();
    assert_eq!(result.rows[0], vec![Cell::Int(4), Cell::Int(6)]);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn having_with_cached_paths_still_works() {
    // HAVING must survive the Maxson rewrite path too (the HAVING
    // expression contributes JSON calls to the scan analysis).
    let (session, root) = sales_session("having-json");
    let result = session
        .execute(
            "select get_json_object(sale_logs, '$.item_name') as item, \
             sum(get_json_object(sale_logs, '$.turnover')) as revenue \
             from mydb.t group by get_json_object(sale_logs, '$.item_name') \
             having sum(get_json_object(sale_logs, '$.turnover')) > 30 order by item",
        )
        .unwrap();
    // apple 28, banana 123, pear 24, watermelon 50 -> banana + watermelon.
    assert_eq!(result.rows.len(), 2);
    assert_eq!(result.rows[0][0], Cell::Str("banana".into()));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn sparser_prefilter_drops_rows_without_changing_results() {
    let (mut session, root) = sales_session("prefilter");
    let sql = "select date from mydb.t \
               where get_json_object(sale_logs, '$.item_name') = 'banana'";
    let reference = session.execute(sql).unwrap();
    assert_eq!(reference.rows.len(), 2);
    assert_eq!(reference.metrics.prefilter_dropped, 0);
    assert_eq!(reference.metrics.parse_calls, 6);

    session.set_prefilter_enabled(true);
    let filtered = session.execute(sql).unwrap();
    assert_eq!(filtered.rows, reference.rows);
    // Four records don't contain "banana" at all and never reach the parser.
    assert_eq!(filtered.metrics.prefilter_dropped, 4);
    assert_eq!(filtered.metrics.parse_calls, 2);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn prefilter_is_conservative_for_unsafe_literals() {
    let (mut session, root) = sales_session("prefilter-safe");
    session.set_prefilter_enabled(true);
    // A literal with a quote cannot be used as a needle; nothing is dropped.
    let sql = "select date from mydb.t \
               where get_json_object(sale_logs, '$.item_name') = 'ba\"na'";
    let result = session.execute(sql).unwrap();
    assert_eq!(result.rows.len(), 0);
    assert_eq!(result.metrics.prefilter_dropped, 0);
    // OR predicates must not prefilter (the needle is not required).
    let sql = "select date from mydb.t \
               where get_json_object(sale_logs, '$.item_name') = 'banana' \
               or date = 20190101";
    let result = session.execute(sql).unwrap();
    assert_eq!(result.metrics.prefilter_dropped, 0);
    assert_eq!(result.rows.len(), 4); // 2 bananas + rows 0,3 from date
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn count_star_without_column_references() {
    let (session, root) = sales_session("countstar");
    let result = session.execute("select count(*) as n from mydb.t").unwrap();
    assert_eq!(result.rows, vec![vec![Cell::Int(6)]]);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn scalar_functions_end_to_end() {
    let (session, root) = sales_session("scalars");
    let result = session
        .execute(
            "select upper(get_json_object(sale_logs, '$.item_name')) as u, \
             length(get_json_object(sale_logs, '$.item_name')) as l, \
             concat(mall_id, '-', get_json_object(sale_logs, '$.item_name')) as tag, \
             substr(get_json_object(sale_logs, '$.item_name'), 1, 3) as pre, \
             coalesce(get_json_object(sale_logs, '$.missing'), 'none') as fb, \
             round(get_json_object(sale_logs, '$.turnover') / 7, 1) as r \
             from mydb.t where get_json_object(sale_logs, '$.item_name') = 'banana' limit 1",
        )
        .unwrap();
    let row = &result.rows[0];
    assert_eq!(row[0], Cell::Str("BANANA".into()));
    assert_eq!(row[1], Cell::Int(6));
    assert_eq!(row[2], Cell::Str("0001-banana".into()));
    assert_eq!(row[3], Cell::Str("ban".into()));
    assert_eq!(row[4], Cell::Str("none".into()));
    assert_eq!(row[5], Cell::Float(12.9)); // 90/7 = 12.857 -> 12.9
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn scalar_functions_null_and_error_semantics() {
    let (session, root) = sales_session("scalar-nulls");
    // concat with NULL is NULL; coalesce falls through; length of NULL is NULL.
    let result = session
        .execute(
            "select concat('a', get_json_object(sale_logs, '$.missing')) as c, \
             length(get_json_object(sale_logs, '$.missing')) as l \
             from mydb.t limit 1",
        )
        .unwrap();
    assert_eq!(result.rows[0][0], Cell::Null);
    assert_eq!(result.rows[0][1], Cell::Null);
    // Arity errors are planning/parse errors.
    assert!(session
        .execute("select substr(mall_id) from mydb.t")
        .is_err());
    assert!(session.execute("select length() from mydb.t").is_err());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn scalar_functions_compose_with_aggregates_and_having() {
    let (session, root) = sales_session("scalar-agg");
    let result = session
        .execute(
            "select upper(get_json_object(sale_logs, '$.item_name')) as item, count(*) as n \
             from mydb.t group by upper(get_json_object(sale_logs, '$.item_name')) \
             having count(*) >= 2 order by item",
        )
        .unwrap();
    assert_eq!(result.rows.len(), 2);
    assert_eq!(result.rows[0][0], Cell::Str("APPLE".into()));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn explain_returns_plan_without_executing() {
    let (session, root) = sales_session("explain");
    let result = session
        .execute("EXPLAIN select date from mydb.t where date = 20190101 limit 2")
        .unwrap();
    assert_eq!(result.columns, vec!["plan"]);
    let text: Vec<String> = result.rows.iter().map(|r| r[0].render()).collect();
    assert!(text[0].starts_with("Limit"));
    assert!(text.iter().any(|l| l.contains("Scan")));
    // No rows were scanned.
    assert_eq!(result.metrics.rows_scanned, 0);
    std::fs::remove_dir_all(&root).ok();
}
