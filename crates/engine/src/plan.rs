//! The resolved (physical) query plan.
//!
//! Expressions are resolved to column indexes and the scan carries a
//! concrete [`ScanProvider`], so a `LogicalPlan` here corresponds to what
//! the paper calls the *physical plan* — the artifact Maxson's Algorithm 1
//! modifies before execution.

use std::fmt::Write as _;

use maxson_storage::Schema;

use crate::expr::Expr;
use crate::scan::ScanProvider;
use crate::sql::ast::AggFunc;

/// A resolved plan node. Children are boxed; the tree is executed bottom-up
/// by [`crate::exec::execute_plan`].
#[derive(Debug)]
pub enum LogicalPlan {
    /// Leaf: produce rows from a provider.
    Scan {
        /// The row source (Norc reader, or Maxson's combined reader).
        provider: Box<dyn ScanProvider>,
    },
    /// Keep rows where `predicate` is true.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Boolean predicate over the input schema.
        predicate: Expr,
    },
    /// Evaluate expressions into a new schema.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, output_name)` pairs.
        exprs: Vec<(Expr, String)>,
        /// Output schema (names + types inferred as Utf8-leaning).
        schema: Schema,
    },
    /// Hash aggregate.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by key expressions over the input schema.
        group_by: Vec<Expr>,
        /// Aggregate calls: `(function, argument)`; `None` arg = COUNT(*).
        aggs: Vec<(AggFunc, Option<Expr>)>,
        /// Output schema: group keys then aggregates.
        schema: Schema,
    },
    /// Inner hash equi-join.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Key expression over the left schema.
        left_key: Expr,
        /// Key expression over the right schema.
        right_key: Expr,
        /// Output schema: left fields then right fields.
        schema: Schema,
    },
    /// Sort by keys.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(key expression, ascending)` pairs.
        keys: Vec<(Expr, bool)>,
    },
    /// Truncate to the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows to emit.
        n: usize,
    },
    /// Deduplicate rows (SELECT DISTINCT), preserving first occurrence
    /// order.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// The output schema of this node.
    pub fn schema(&self) -> &Schema {
        match self {
            LogicalPlan::Scan { provider } => provider.schema(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.schema(),
            LogicalPlan::Project { schema, .. }
            | LogicalPlan::Aggregate { schema, .. }
            | LogicalPlan::Join { schema, .. } => schema,
        }
    }

    /// Indented one-node-per-line plan rendering (like `EXPLAIN`).
    pub fn display(&self) -> String {
        let mut out = String::new();
        self.fmt_node(&mut out, 0);
        out
    }

    fn fmt_node(&self, out: &mut String, indent: usize) {
        for _ in 0..indent {
            out.push_str("  ");
        }
        match self {
            LogicalPlan::Scan { provider } => {
                let _ = writeln!(out, "Scan: {}", provider.label());
            }
            LogicalPlan::Filter { input, predicate } => {
                let _ = writeln!(out, "Filter: {predicate:?}");
                input.fmt_node(out, indent + 1);
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let names: Vec<&str> = exprs.iter().map(|(_, n)| n.as_str()).collect();
                let _ = writeln!(out, "Project: {names:?}");
                input.fmt_node(out, indent + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "Aggregate: {} keys, {} aggs",
                    group_by.len(),
                    aggs.len()
                );
                input.fmt_node(out, indent + 1);
            }
            LogicalPlan::Join { left, right, .. } => {
                let _ = writeln!(out, "HashJoin (inner)");
                left.fmt_node(out, indent + 1);
                right.fmt_node(out, indent + 1);
            }
            LogicalPlan::Sort { input, keys } => {
                let _ = writeln!(out, "Sort: {} keys", keys.len());
                input.fmt_node(out, indent + 1);
            }
            LogicalPlan::Limit { input, n } => {
                let _ = writeln!(out, "Limit: {n}");
                input.fmt_node(out, indent + 1);
            }
            LogicalPlan::Distinct { input } => {
                let _ = writeln!(out, "Distinct");
                input.fmt_node(out, indent + 1);
            }
        }
    }

    /// Count the `GetJsonObject` expressions remaining in the plan — after
    /// a Maxson rewrite this is the number of cache *misses* still paying
    /// parse cost.
    pub fn json_parse_expr_count(&self) -> usize {
        fn count_expr(e: &Expr) -> usize {
            let mut n = 0;
            e.walk(&mut |node| {
                if matches!(node, Expr::GetJsonObject { .. }) {
                    n += 1;
                }
            });
            n
        }
        match self {
            LogicalPlan::Scan { .. } => 0,
            LogicalPlan::Filter { input, predicate } => {
                count_expr(predicate) + input.json_parse_expr_count()
            }
            LogicalPlan::Project { input, exprs, .. } => {
                exprs.iter().map(|(e, _)| count_expr(e)).sum::<usize>()
                    + input.json_parse_expr_count()
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                ..
            } => {
                group_by.iter().map(count_expr).sum::<usize>()
                    + aggs
                        .iter()
                        .filter_map(|(_, a)| a.as_ref())
                        .map(count_expr)
                        .sum::<usize>()
                    + input.json_parse_expr_count()
            }
            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
                ..
            } => {
                count_expr(left_key)
                    + count_expr(right_key)
                    + left.json_parse_expr_count()
                    + right.json_parse_expr_count()
            }
            LogicalPlan::Sort { input, keys } => {
                keys.iter().map(|(e, _)| count_expr(e)).sum::<usize>()
                    + input.json_parse_expr_count()
            }
            LogicalPlan::Limit { input, .. } | LogicalPlan::Distinct { input } => {
                input.json_parse_expr_count()
            }
        }
    }

    /// Count the *distinct* `(column, path)` extraction sites in the plan —
    /// the number of per-row parses shared-parse execution pays, versus
    /// [`Self::json_parse_expr_count`] parses for the naive path. The gap
    /// between the two is the plan's intra-query dedup opportunity.
    pub fn distinct_json_path_count(&self) -> usize {
        fn collect(plan: &LogicalPlan, pairs: &mut Vec<(usize, String)>) {
            let mut visit = |e: &Expr| {
                e.walk(&mut |node| {
                    if let Expr::GetJsonObject { column, path } = node {
                        let pair = (*column, path.to_string());
                        if !pairs.contains(&pair) {
                            pairs.push(pair);
                        }
                    }
                });
            };
            match plan {
                LogicalPlan::Scan { .. } => {}
                LogicalPlan::Filter { input, predicate } => {
                    visit(predicate);
                    collect(input, pairs);
                }
                LogicalPlan::Project { input, exprs, .. } => {
                    exprs.iter().for_each(|(e, _)| visit(e));
                    collect(input, pairs);
                }
                LogicalPlan::Aggregate {
                    input,
                    group_by,
                    aggs,
                    ..
                } => {
                    group_by.iter().for_each(&mut visit);
                    aggs.iter().filter_map(|(_, a)| a.as_ref()).for_each(visit);
                    collect(input, pairs);
                }
                LogicalPlan::Join {
                    left,
                    right,
                    left_key,
                    right_key,
                    ..
                } => {
                    visit(left_key);
                    visit(right_key);
                    collect(left, pairs);
                    collect(right, pairs);
                }
                LogicalPlan::Sort { input, keys } => {
                    keys.iter().for_each(|(e, _)| visit(e));
                    collect(input, pairs);
                }
                LogicalPlan::Limit { input, .. } | LogicalPlan::Distinct { input } => {
                    collect(input, pairs);
                }
            }
        }
        let mut pairs = Vec::new();
        collect(self, &mut pairs);
        pairs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxson_json::JsonPath;
    use maxson_storage::{Cell, ColumnType, Field};

    #[derive(Debug)]
    struct FakeProvider(Schema);

    impl ScanProvider for FakeProvider {
        fn schema(&self) -> &Schema {
            &self.0
        }
        fn scan(
            &self,
            _m: &mut crate::metrics::ExecMetrics,
        ) -> crate::error::Result<Vec<Vec<Cell>>> {
            Ok(vec![])
        }
        fn label(&self) -> String {
            "Fake".into()
        }
    }

    fn fake_scan() -> LogicalPlan {
        LogicalPlan::Scan {
            provider: Box::new(FakeProvider(
                Schema::new(vec![Field::new("a", ColumnType::Utf8)]).unwrap(),
            )),
        }
    }

    #[test]
    fn schema_passthrough() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(fake_scan()),
                predicate: Expr::Literal(Cell::Bool(true)),
            }),
            n: 5,
        };
        assert_eq!(plan.schema().fields()[0].name, "a");
    }

    #[test]
    fn display_is_indented() {
        let plan = LogicalPlan::Filter {
            input: Box::new(fake_scan()),
            predicate: Expr::Literal(Cell::Bool(true)),
        };
        let text = plan.display();
        assert!(text.starts_with("Filter"));
        assert!(text.contains("\n  Scan: Fake"));
    }

    #[test]
    fn json_expr_counting() {
        let jp = |p: &str| Expr::GetJsonObject {
            column: 0,
            path: JsonPath::parse(p).unwrap(),
        };
        let plan = LogicalPlan::Project {
            schema: Schema::new(vec![Field::new("x", ColumnType::Utf8)]).unwrap(),
            exprs: vec![(jp("$.a"), "x".into())],
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(fake_scan()),
                predicate: jp("$.b"),
            }),
        };
        assert_eq!(plan.json_parse_expr_count(), 2);
    }

    #[test]
    fn distinct_json_path_counting_dedupes_across_operators() {
        let jp = |p: &str| Expr::GetJsonObject {
            column: 0,
            path: JsonPath::parse(p).unwrap(),
        };
        // $.a appears three times (projection twice, filter once), $.b once:
        // four parse expressions, two distinct extraction sites.
        let plan = LogicalPlan::Project {
            schema: Schema::new(vec![Field::new("x", ColumnType::Utf8)]).unwrap(),
            exprs: vec![(jp("$.a"), "x".into()), (jp("$.a"), "y".into())],
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(fake_scan()),
                predicate: Expr::Binary {
                    left: Box::new(jp("$.a")),
                    op: crate::sql::ast::BinaryOp::Eq,
                    right: Box::new(jp("$.b")),
                },
            }),
        };
        assert_eq!(plan.json_parse_expr_count(), 4);
        assert_eq!(plan.distinct_json_path_count(), 2);
    }
}
