//! Intra-query shared-parse extraction.
//!
//! Maxson's cache removes *cross-query* duplicate parsing, but a single
//! uncached query still re-parses: naive evaluation runs one full parse per
//! `get_json_object` call, so a query with a JSON predicate plus K
//! projected paths parses each row K+1 times. This module dedupes that
//! work *within* one query: a [`JsonExtractor`] is built once per operator
//! (or pipeline segment) from the compiled expressions, grouping every
//! distinct `(column, path)` pair by JSON column; a per-row [`RowSlots`]
//! then parses each document **at most once per column** — one shared DOM
//! walk in Jackson mode ([`maxson_json::get_json_objects`]), one shared
//! structural index in Mison mode
//! ([`MisonProjector::project_paths`]), one shared typed tape in Tape mode
//! ([`maxson_json::tape::project_paths`]) — and answers every later path
//! evaluation from the filled slots. Slots hold `Arc<str>` values, so a
//! path evaluated in both the filter and the projection clones a refcount,
//! not the text.
//!
//! Laziness is preserved: slots fill on the *first* path access for a row,
//! so rows skipped by SARG/row-group pruning never parse, and a predicate
//! that decides a row without touching any JSON path (short-circuit on a
//! raw column) parses nothing. Byte-identity with the naive path holds
//! because the shared evaluators run the exact same per-path machinery as
//! the per-call ones; only the parse is hoisted.
//!
//! Accounting: every evaluation still charges
//! [`ExecMetrics::parse_calls`]; the actual parse charges
//! [`ExecMetrics::docs_parsed`] (and parse wall time) once. The ratio of
//! the two counters is the intra-query dedup factor surfaced by
//! `ExecMetrics::summary` and the bench reports.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use maxson_json::mison::MisonProjector;
use maxson_json::JsonPath;

use crate::expr::{Expr, JsonParserKind};
use crate::metrics::ExecMetrics;

/// All paths a query needs from one JSON column, in first-seen plan order.
#[derive(Debug)]
struct ColumnGroup {
    /// Input column index holding the JSON string.
    column: usize,
    /// Distinct compiled paths over that column.
    paths: Vec<JsonPath>,
}

/// The deduplicated `(column, path)` extraction sites of one operator (or
/// scan-pipeline segment). Shared across all rows — and, being read-only,
/// across all split tasks — while each row gets its own [`RowSlots`].
#[derive(Debug)]
pub struct JsonExtractor {
    groups: Vec<ColumnGroup>,
}

impl JsonExtractor {
    /// Collect every distinct `(column, path)` pair from the given compiled
    /// expression trees. Returns `None` when the expressions contain no
    /// `GetJsonObject` at all (evaluation then skips slot management
    /// entirely). Note that Maxson-cached paths were already compiled to
    /// plain `Column` placeholders, so only *residual* uncached paths
    /// arrive here — composition with the combiner is automatic.
    pub fn from_exprs<'a>(exprs: impl IntoIterator<Item = &'a Expr>) -> Option<JsonExtractor> {
        let mut groups: Vec<ColumnGroup> = Vec::new();
        for e in exprs {
            e.walk(&mut |node| {
                if let Expr::GetJsonObject { column, path } = node {
                    match groups.iter_mut().find(|g| g.column == *column) {
                        Some(g) => {
                            if !g.paths.contains(path) {
                                g.paths.push(path.clone());
                            }
                        }
                        None => groups.push(ColumnGroup {
                            column: *column,
                            paths: vec![path.clone()],
                        }),
                    }
                }
            });
        }
        if groups.is_empty() {
            None
        } else {
            Some(JsonExtractor { groups })
        }
    }

    /// Number of JSON columns covered.
    pub fn column_count(&self) -> usize {
        self.groups.len()
    }

    /// Total distinct `(column, path)` pairs covered.
    pub fn path_count(&self) -> usize {
        self.groups.iter().map(|g| g.paths.len()).sum()
    }

    /// Locate a `(column, path)` pair: `(group index, path index)`.
    fn lookup(&self, column: usize, path: &JsonPath) -> Option<(usize, usize)> {
        let gi = self.groups.iter().position(|g| g.column == column)?;
        let pi = self.groups[gi].paths.iter().position(|p| p == path)?;
        Some((gi, pi))
    }

    /// Parse `json` once and evaluate every path of group `gi` against it.
    /// Tape mode charges its skip counter and build/navigate wall split to
    /// `metrics` (the other modes have no tape to account for).
    fn extract_group(
        &self,
        gi: usize,
        json: &str,
        parser: JsonParserKind,
        metrics: &mut ExecMetrics,
    ) -> Vec<Option<Arc<str>>> {
        let paths = &self.groups[gi].paths;
        match parser {
            JsonParserKind::Jackson => maxson_json::get_json_objects(json, paths)
                .into_iter()
                .map(|v| v.map(Arc::from))
                .collect(),
            JsonParserKind::Mison => MisonProjector::project_paths(json, paths)
                .into_iter()
                .map(|v| v.map(Arc::from))
                .collect(),
            JsonParserKind::Tape => {
                let start = Instant::now();
                let tape = maxson_json::tape::TapeDoc::build(json).ok();
                metrics.tape_build_wall += start.elapsed();
                let nav = Instant::now();
                let mut stats = maxson_json::tape::TapeStats::default();
                let values = match &tape {
                    Some(t) => t.eval_paths(paths, &mut stats),
                    None => vec![None; paths.len()],
                };
                metrics.tape_nav_wall += nav.elapsed();
                metrics.nodes_skipped += stats.nodes_skipped;
                values
            }
        }
    }
}

/// Per-row lazily-filled extraction slots over a shared [`JsonExtractor`].
///
/// Created fresh for each row; interior mutability keeps the evaluator
/// signature by-shared-reference so `Option<&RowSlots>` threads through
/// expression recursion without borrow gymnastics.
pub struct RowSlots<'e> {
    extractor: &'e JsonExtractor,
    /// One entry per column group; `None` until the first path access for
    /// this row triggers the (single) parse.
    filled: RefCell<Vec<Option<Vec<Option<Arc<str>>>>>>,
}

impl<'e> RowSlots<'e> {
    /// Empty slots for one row.
    pub fn new(extractor: &'e JsonExtractor) -> Self {
        RowSlots {
            extractor,
            filled: RefCell::new(vec![None; extractor.groups.len()]),
        }
    }

    /// Answer one `(column, path)` evaluation over this row's `json`
    /// document. Returns `None` when the pair is not covered by the
    /// extractor (the caller falls back to a direct parse); otherwise the
    /// inner `Option<Arc<str>>` is the extraction result, exactly as the
    /// naive per-call parse would produce it (shared, not copied, on every
    /// subsequent access).
    ///
    /// The first covered access parses the document and charges
    /// `docs_parsed` + parse wall time; every access (hit or fill) charges
    /// `parse_calls`, keeping that counter identical to the naive path.
    pub fn get(
        &self,
        json: &str,
        column: usize,
        path: &JsonPath,
        parser: JsonParserKind,
        metrics: &mut ExecMetrics,
    ) -> Option<Option<Arc<str>>> {
        let (gi, pi) = self.extractor.lookup(column, path)?;
        let mut filled = self.filled.borrow_mut();
        if filled[gi].is_none() {
            let kernels_before = maxson_json::kernels::thread_build_stats();
            let start = Instant::now();
            let values = self.extractor.extract_group(gi, json, parser, metrics);
            let spent = start.elapsed();
            metrics.parse += spent;
            metrics.parse_wall += spent;
            metrics.docs_parsed += 1;
            metrics.charge_bitmap_builds(kernels_before);
            filled[gi] = Some(values);
        }
        metrics.parse_calls += 1;
        metrics.charge_path_extract(path.text());
        Some(filled[gi].as_ref().expect("slot group just filled")[pi].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::BinaryOp;
    use maxson_storage::Cell;

    fn jp(column: usize, path: &str) -> Expr {
        Expr::GetJsonObject {
            column,
            path: JsonPath::parse(path).unwrap(),
        }
    }

    #[test]
    fn collector_dedupes_pairs_and_groups_by_column() {
        let filter = Expr::Binary {
            left: Box::new(jp(0, "$.a")),
            op: BinaryOp::Gt,
            right: Box::new(Expr::Literal(Cell::Int(1))),
        };
        let select = [jp(0, "$.a"), jp(0, "$.b"), jp(2, "$.a")];
        let ex = JsonExtractor::from_exprs(std::iter::once(&filter).chain(select.iter())).unwrap();
        assert_eq!(ex.column_count(), 2);
        assert_eq!(ex.path_count(), 3, "repeated $.a on column 0 deduped");
        assert!(ex.lookup(0, &JsonPath::parse("$.b").unwrap()).is_some());
        assert!(ex.lookup(2, &JsonPath::parse("$.a").unwrap()).is_some());
        assert!(ex.lookup(2, &JsonPath::parse("$.b").unwrap()).is_none());
    }

    #[test]
    fn no_json_paths_yields_no_extractor() {
        let e = Expr::Column(3);
        assert!(JsonExtractor::from_exprs([&e]).is_none());
    }

    #[test]
    fn slots_parse_once_per_row_and_answer_all_paths() {
        let exprs = [jp(0, "$.a"), jp(0, "$.b"), jp(0, "$.missing")];
        let ex = JsonExtractor::from_exprs(exprs.iter()).unwrap();
        let json = r#"{"a": 1, "b": "x"}"#;
        for parser in [
            JsonParserKind::Jackson,
            JsonParserKind::Mison,
            JsonParserKind::Tape,
        ] {
            let mut m = ExecMetrics::default();
            let slots = RowSlots::new(&ex);
            let a = slots.get(json, 0, &JsonPath::parse("$.a").unwrap(), parser, &mut m);
            let b = slots.get(json, 0, &JsonPath::parse("$.b").unwrap(), parser, &mut m);
            let miss = slots.get(
                json,
                0,
                &JsonPath::parse("$.missing").unwrap(),
                parser,
                &mut m,
            );
            assert_eq!(a, Some(Some("1".into())));
            assert_eq!(b, Some(Some("x".into())));
            assert_eq!(miss, Some(None));
            assert_eq!(m.docs_parsed, 1, "one parse for three evaluations");
            assert_eq!(m.parse_calls, 3);
            // Uncovered pairs fall back to the caller.
            assert!(slots
                .get(json, 1, &JsonPath::parse("$.a").unwrap(), parser, &mut m)
                .is_none());
        }
    }

    #[test]
    fn slots_stay_lazy_until_first_access() {
        let exprs = [jp(0, "$.a")];
        let ex = JsonExtractor::from_exprs(exprs.iter()).unwrap();
        let m = ExecMetrics::default();
        let _slots = RowSlots::new(&ex);
        assert_eq!(m.docs_parsed, 0, "constructing slots must not parse");
        drop(_slots);
        assert_eq!(m.parse_calls, 0);
    }
}
