//! Engine error type.

use std::fmt;

use maxson_storage::StorageError;

/// Result alias used throughout `maxson-engine`.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors raised while parsing, planning, or executing a query.
#[derive(Debug)]
pub enum EngineError {
    /// SQL text failed to tokenize or parse.
    Parse {
        /// Description of the problem.
        message: String,
        /// Approximate character offset in the SQL text.
        offset: usize,
    },
    /// Name resolution or semantic validation failed.
    Plan {
        /// Description of the problem.
        message: String,
    },
    /// A runtime failure during execution.
    Exec {
        /// Description of the problem.
        message: String,
    },
    /// The storage layer failed.
    Storage(StorageError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse { message, offset } => {
                write!(f, "SQL parse error at offset {offset}: {message}")
            }
            EngineError::Plan { message } => write!(f, "planning error: {message}"),
            EngineError::Exec { message } => write!(f, "execution error: {message}"),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl EngineError {
    /// Convenience constructor for planning errors.
    pub fn plan(message: impl Into<String>) -> Self {
        EngineError::Plan {
            message: message.into(),
        }
    }

    /// Convenience constructor for execution errors.
    pub fn exec(message: impl Into<String>) -> Self {
        EngineError::Exec {
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = EngineError::Parse {
            message: "unexpected token".into(),
            offset: 12,
        };
        assert!(e.to_string().contains("offset 12"));
        assert!(EngineError::plan("x").to_string().contains("planning"));
        assert!(EngineError::exec("y").to_string().contains("execution"));
    }
}
