//! A SparkSQL-like analytical query engine substrate.
//!
//! The paper implements Maxson *inside* SparkSQL: the plan rewriter
//! (Algorithm 1) runs while SQL is compiled to a physical plan, and the
//! value combiner (Algorithm 2) runs inside the table-scan phase. This crate
//! rebuilds exactly the engine surface those mechanisms need:
//!
//! * [`sql`] — tokenizer, AST, and a recursive-descent parser for the SQL
//!   subset the paper's workload uses (SELECT/WHERE/GROUP BY/ORDER BY/
//!   LIMIT/JOIN plus `get_json_object`),
//! * [`expr`] — a physical expression tree with SQL NULL semantics; the
//!   `get_json_object` expression is where JSON parse time is burned and
//!   metered,
//! * [`extract`] — intra-query shared-parse extraction: each JSON document
//!   is parsed once per row and all the query's paths are answered from
//!   that single parse (toggle: `MAXSON_SHARED_PARSE`),
//! * [`plan`] — the logical plan with a [`scan::ScanProvider`]
//!   extension point that Maxson's combined reader plugs into,
//! * [`exec`] — volcano-style operators (scan, filter, project, hash
//!   aggregate, hash join, sort, limit) over materialized row batches,
//! * [`metrics`] — per-phase instrumentation (Read / Parse / Compute), the
//!   measurement behind the paper's Fig. 3 and Fig. 12,
//! * [`explain`] — the `EXPLAIN ANALYZE` renderer: the recorded span tree
//!   annotated with per-operator wall time, rows, and cache counters,
//! * [`session`] — the user-facing entry point: a catalog plus
//!   `execute(sql)` with pluggable plan rewriters, a per-query span tracer
//!   (`maxson-obs`), and Chrome-trace export via `MAXSON_TRACE=<path>` or
//!   `Session::set_trace_path`.
//!
//! ```no_run
//! use maxson_engine::session::Session;
//!
//! let mut session = Session::open("/tmp/warehouse").unwrap();
//! let result = session
//!     .execute("select get_json_object(logs, '$.item') as item from mydb.t limit 3")
//!     .unwrap();
//! println!("{}", result.to_display_string());
//! ```

pub mod error;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod extract;
pub mod fingerprint;
pub mod metrics;
pub mod plan;
pub mod pool;
pub mod querylog;
pub mod reuse;
pub mod scan;
pub mod session;
pub mod sql;

pub use error::{EngineError, Result};
pub use exec::ExecOptions;
pub use expr::Expr;
pub use fingerprint::{fnv1a64, stmt_fingerprint, table_key};
pub use metrics::ExecMetrics;
pub use plan::LogicalPlan;
pub use pool::SplitScheduler;
pub use querylog::{QueryLog, QueryLogEntry};
pub use reuse::{ReuseCache, ReuseStats};
pub use session::{
    CatalogRead, CatalogWrite, JsonParserKind, QueryResult, Session, TableScanRewriter,
};
// Observability handles, re-exported so downstream crates don't need a
// direct `maxson-obs` dependency to hold or inspect a tracer or charge the
// process-wide metric registry.
pub use maxson_obs::{
    Counter, Gauge, HistogramHandle, LatencyHistogram, OpRollup, Registry, SpanGuard, SpanId,
    TraceSnapshot, Tracer,
};
