//! Structured JSONL query log.
//!
//! One line per executed query, written append-only to the path named by
//! `MAXSON_QUERY_LOG` (or [`crate::session::Session::set_query_log`]).
//! Each line is a self-contained JSON object with a stable field order:
//!
//! ```json
//! {"fingerprint":"9f86d081884c7d65","sql":"select ...","parser":"tape",
//!  "simd":"avx2","mmap":true,"threads":4,"shared_parse":true,"epoch":2,
//!  "reuse":"miss","rows":100,"wall_us":1234,"planning_us":88,"slow":false,
//!  "counters":{"rows_scanned":100,"bytes_read":5120,"parse_calls":300,
//!   "docs_parsed":100,"cache_hits":0,"lru_hits":0,"lru_misses":0,
//!   "nodes_skipped":40,"bitmap_builds":100,"bitmap_build_wall_us":52,
//!   "meta_cache_hits":1,"meta_cache_misses":0}}
//! ```
//!
//! The `fingerprint` is [`crate::fingerprint::stmt_fingerprint`]: FNV-1a
//! over the canonical normalized statement text (alias/whitespace
//! insensitive, commutative predicates sorted), so equivalent queries
//! collide across machines and sessions — the same identity the reuse
//! cache and the workload sketch key on. The `reuse` field records how
//! the reuse cache participated (`off`/`hit`/`fragment`/`fill`/`miss`/
//! `disabled`/`poisoned`). The `slow` flag trips when wall time exceeds
//! the session's threshold (`MAXSON_SLOW_MS`, default 1000).
//!
//! Writes happen after the result is materialized, serialized under one
//! mutex per log (sessions cloned from one `Session` share the handle),
//! so concurrent queries interleave whole lines, never bytes. A write
//! failure is reported as an error by `execute` — telemetry must be
//! trustworthy or loud, never silently partial.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use maxson_json::value::JsonNumber;
use maxson_json::JsonValue;

use crate::error::{EngineError, Result};
use crate::metrics::ExecMetrics;
// The identity hash lives in the shared fingerprint module now; re-export
// so `querylog::fnv1a64` callers keep compiling.
pub use crate::fingerprint::fnv1a64;

/// Everything one query-log line records besides the counters.
pub struct QueryLogEntry<'a> {
    /// Normalized-plan FNV-1a fingerprint.
    pub fingerprint: u64,
    /// The SQL text as submitted (trimmed).
    pub sql: &'a str,
    /// Parser mode name (`jackson` / `mison` / `tape`).
    pub parser: &'a str,
    /// Structural-kernel tier name (`avx2` / `sse2` / `swar` / `scalar`).
    pub simd: &'a str,
    /// Whether Norc part files are memory-mapped.
    pub mmap: bool,
    /// Configured worker threads (resolved; 1 = serial).
    pub threads: u64,
    /// Whether shared-parse extraction is on.
    pub shared_parse: bool,
    /// Warehouse epoch the query planned against.
    pub epoch: u64,
    /// Reuse-cache participation (`off` / `hit` / `fragment` / `fill` /
    /// `miss` / `disabled` / `poisoned`).
    pub reuse: &'a str,
    /// Output row count.
    pub rows: u64,
    /// Whole-query wall time.
    pub wall: Duration,
    /// Slow-query threshold in effect.
    pub slow_threshold: Duration,
}

/// An append-only JSONL query log.
pub struct QueryLog {
    path: PathBuf,
    file: Mutex<File>,
}

impl std::fmt::Debug for QueryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QueryLog({})", self.path.display())
    }
}

impl QueryLog {
    /// Open (creating or appending to) the log at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| EngineError::exec(format!("query log {}: {e}", path.display())))?;
        Ok(QueryLog {
            path,
            file: Mutex::new(file),
        })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one line for a finished query.
    pub fn record(&self, entry: &QueryLogEntry<'_>, metrics: &ExecMetrics) -> Result<()> {
        let n = |v: u64| JsonValue::Number(JsonNumber::Int(v as i64));
        let counters = JsonValue::object(vec![
            ("rows_scanned".into(), n(metrics.rows_scanned)),
            ("bytes_read".into(), n(metrics.bytes_read)),
            ("parse_calls".into(), n(metrics.parse_calls)),
            ("docs_parsed".into(), n(metrics.docs_parsed)),
            ("cache_hits".into(), n(metrics.cache_hits)),
            ("lru_hits".into(), n(metrics.lru_hits)),
            ("lru_misses".into(), n(metrics.lru_misses)),
            ("nodes_skipped".into(), n(metrics.nodes_skipped)),
            ("bitmap_builds".into(), n(metrics.bitmap_builds)),
            (
                "bitmap_build_wall_us".into(),
                n(metrics.bitmap_build_wall.as_micros() as u64),
            ),
            ("meta_cache_hits".into(), n(metrics.meta_cache_hits)),
            ("meta_cache_misses".into(), n(metrics.meta_cache_misses)),
        ]);
        let line = JsonValue::object(vec![
            (
                "fingerprint".into(),
                JsonValue::String(format!("{:016x}", entry.fingerprint)),
            ),
            ("sql".into(), JsonValue::String(entry.sql.to_string())),
            ("parser".into(), JsonValue::String(entry.parser.to_string())),
            ("simd".into(), JsonValue::String(entry.simd.to_string())),
            ("mmap".into(), JsonValue::Bool(entry.mmap)),
            ("threads".into(), n(entry.threads)),
            ("shared_parse".into(), JsonValue::Bool(entry.shared_parse)),
            ("epoch".into(), n(entry.epoch)),
            ("reuse".into(), JsonValue::String(entry.reuse.to_string())),
            ("rows".into(), n(entry.rows)),
            ("wall_us".into(), n(entry.wall.as_micros() as u64)),
            ("planning_us".into(), n(metrics.planning.as_micros() as u64)),
            (
                "slow".into(),
                JsonValue::Bool(entry.wall > entry.slow_threshold),
            ),
            ("counters".into(), counters),
        ]);
        let mut text = maxson_json::to_string(&line);
        text.push('\n');
        let mut file = self.file.lock().expect("query log poisoned");
        file.write_all(text.as_bytes())
            .map_err(|e| EngineError::exec(format!("query log {}: {e}", self.path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_appends_parseable_lines() {
        let path = std::env::temp_dir().join(format!(
            "maxson-qlog-{}-{}.jsonl",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let log = QueryLog::open(&path).unwrap();
        let metrics = ExecMetrics {
            rows_scanned: 10,
            parse_calls: 30,
            docs_parsed: 10,
            ..Default::default()
        };
        for i in 0..3u64 {
            let entry = QueryLogEntry {
                fingerprint: fnv1a64(b"plan"),
                sql: "select 1 from db.t",
                parser: "tape",
                simd: "scalar",
                mmap: true,
                threads: i + 1,
                shared_parse: true,
                epoch: 7,
                reuse: "miss",
                rows: 10,
                wall: Duration::from_millis(2),
                slow_threshold: Duration::from_millis(1000),
            };
            log.record(&entry, &metrics).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v = maxson_json::parse(line).unwrap();
            assert_eq!(v.get("parser").and_then(|p| p.as_str()), Some("tape"));
            assert_eq!(v.get("reuse").and_then(|r| r.as_str()), Some("miss"));
            assert_eq!(v.get("slow").and_then(|s| s.as_bool()), Some(false));
            assert_eq!(
                v.get("counters")
                    .and_then(|c| c.get("parse_calls"))
                    .and_then(|x| x.as_i64()),
                Some(30)
            );
            assert_eq!(
                v.get("fingerprint").and_then(|f| f.as_str()),
                Some(format!("{:016x}", fnv1a64(b"plan")).as_str())
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn slow_flag_trips_past_threshold() {
        let path = std::env::temp_dir().join(format!(
            "maxson-qlog-slow-{}-{}.jsonl",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let log = QueryLog::open(&path).unwrap();
        let entry = QueryLogEntry {
            fingerprint: 0,
            sql: "q",
            parser: "jackson",
            simd: "scalar",
            mmap: false,
            threads: 1,
            shared_parse: false,
            epoch: 0,
            reuse: "off",
            rows: 0,
            wall: Duration::from_millis(5),
            slow_threshold: Duration::from_millis(2),
        };
        log.record(&entry, &ExecMetrics::default()).unwrap();
        let v = maxson_json::parse(std::fs::read_to_string(&path).unwrap().trim()).unwrap();
        assert_eq!(v.get("slow").and_then(|s| s.as_bool()), Some(true));
        std::fs::remove_file(&path).ok();
    }
}
