//! Volcano-style (materialized) plan execution, with optional
//! split-parallel scan pipelines.
//!
//! ## Parallel execution model
//!
//! The executor recognizes *scan pipeline segments* — `Scan`,
//! `Filter(Scan)`, `Project([Filter](Scan))`, and
//! `Aggregate([Filter](Scan))` — and, when the scan provider exposes more
//! than one split and [`ExecOptions::threads`] allows it, fans the segment
//! out one task per split on a scoped-thread pool
//! ([`crate::pool::run_split_tasks`]). Each task runs
//! scan→filter→project (or scan→filter→partial-aggregate) against its own
//! [`ExecMetrics`]; the barrier absorbs task metrics and reassembles rows
//! (or merges aggregate partials) **in split order**, which makes the
//! output byte-identical to the serial path:
//!
//! * row pipelines: the serial scan visits splits in index order, so
//!   concatenating per-split outputs in index order reproduces the exact
//!   serial row sequence;
//! * aggregates: partial states merge in split order. `SUM`/`AVG` over
//!   floats defer their addends and fold them at finish time in input
//!   order, so the float additions happen in exactly the sequence the
//!   serial accumulator would use (float addition is not associative —
//!   summing per-split subtotals would *not* be bit-identical). Integer
//!   sums use wrapping i64 arithmetic, which is associative. Grouped
//!   output keeps first-seen group order because split 0's groups are
//!   merged first.
//!
//! Plans that are not segment-shaped (joins, sorts, HAVING chains, …) run
//! serially at the top but still parallelize any segment found deeper in
//! their inputs.

use std::collections::HashMap;

use maxson_obs::{SpanGuard, SpanId, Tracer};
use maxson_storage::{Cell, CellKey, RowKey, RowKeySlice};

use crate::error::{EngineError, Result};
use crate::expr::{truthy, Expr, JsonParserKind};
use crate::extract::{JsonExtractor, RowSlots};
use crate::metrics::ExecMetrics;
use crate::plan::LogicalPlan;
use crate::pool;
use crate::scan::{Batch, BatchData, ScanProvider};
use crate::sql::ast::AggFunc;

/// Knobs controlling one plan execution.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Maximum worker threads for split-parallel segments. `1` is the
    /// serial reference path (no pool involvement at all).
    pub threads: usize,
    /// Intra-query shared-parse extraction: parse each JSON document once
    /// per row and answer every path the query needs from that single
    /// parse. Off = the naive one-parse-per-`get_json_object` baseline.
    pub shared_parse: bool,
    /// Cooperative split scheduler: when set, every split task (inline or
    /// pooled) runs inside an acquire/release bracket so a query server can
    /// time-slice split execution fairly across concurrent queries.
    pub scheduler: Option<std::sync::Arc<dyn pool::SplitScheduler>>,
}

impl ExecOptions {
    /// The serial reference configuration (shared-parse still follows the
    /// `MAXSON_SHARED_PARSE` environment toggle).
    pub fn serial() -> Self {
        ExecOptions {
            threads: 1,
            shared_parse: shared_parse_from_env(),
            scheduler: None,
        }
    }

    /// Explicit thread count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions {
            threads: threads.max(1),
            shared_parse: shared_parse_from_env(),
            scheduler: None,
        }
    }

    /// Override the shared-parse toggle (builder style).
    pub fn with_shared_parse(mut self, on: bool) -> Self {
        self.shared_parse = on;
        self
    }

    /// Attach (or clear) a cooperative split scheduler (builder style).
    pub fn with_scheduler(
        mut self,
        scheduler: Option<std::sync::Arc<dyn pool::SplitScheduler>>,
    ) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Resolve from the environment: `MAXSON_THREADS` if set to a positive
    /// integer (otherwise the number of available cores), and
    /// `MAXSON_SHARED_PARSE` (default on; `0` disables).
    pub fn from_env() -> Self {
        let threads = std::env::var("MAXSON_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(default_threads);
        ExecOptions {
            threads,
            shared_parse: shared_parse_from_env(),
            scheduler: None,
        }
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions::from_env()
    }
}

/// Available hardware parallelism (1 when it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve the `MAXSON_SHARED_PARSE` toggle: default on, `0` disables.
pub fn shared_parse_from_env() -> bool {
    std::env::var("MAXSON_SHARED_PARSE")
        .map(|v| v.trim() != "0")
        .unwrap_or(true)
}

/// Execute a plan to completion, returning the output rows. Threading is
/// resolved from the environment ([`ExecOptions::from_env`]).
pub fn execute_plan(
    plan: &LogicalPlan,
    parser: JsonParserKind,
    metrics: &mut ExecMetrics,
) -> Result<Vec<Vec<Cell>>> {
    execute_plan_with(plan, parser, metrics, ExecOptions::from_env())
}

/// Execute a plan to completion with explicit options (untraced).
pub fn execute_plan_with(
    plan: &LogicalPlan,
    parser: JsonParserKind,
    metrics: &mut ExecMetrics,
    opts: ExecOptions,
) -> Result<Vec<Vec<Cell>>> {
    execute_plan_traced(plan, parser, metrics, &opts, &Tracer::disabled(), None)
}

/// Execute a plan to completion, recording one span per operator (and per
/// split, inside scan pipelines) under `parent`. With a disabled tracer
/// every hook is a branch on a bool — rows and metrics are identical to
/// the untraced path (see `tests/tracing_differential.rs`).
pub fn execute_plan_traced(
    plan: &LogicalPlan,
    parser: JsonParserKind,
    metrics: &mut ExecMetrics,
    opts: &ExecOptions,
    tracer: &Tracer,
    parent: Option<SpanId>,
) -> Result<Vec<Vec<Cell>>> {
    // Segment-shaped plans run through the unified scan pipeline at every
    // thread count: it is what lets one row's parse be shared across the
    // filter *and* the projection/aggregation above it.
    if let Some(rows) = run_pipeline(plan, parser, metrics, opts, tracer, parent)? {
        return Ok(rows);
    }
    match plan {
        LogicalPlan::Scan { provider } => {
            let span = tracer.child("scan", parent);
            span.attr("label", provider.label());
            let before = counters_before(tracer, metrics);
            let rows = provider.scan(metrics)?;
            span.attr("rows_out", rows.len());
            attr_counter_deltas(&span, before.as_ref(), metrics);
            Ok(rows)
        }
        LogicalPlan::Filter { input, predicate } => {
            let span = tracer.child("filter", parent);
            let rows = execute_plan_traced(input, parser, metrics, opts, tracer, span.id())?;
            span.attr("rows_in", rows.len());
            let before = counters_before(tracer, metrics);
            let out = filter_rows(rows, predicate, parser, metrics, opts.shared_parse)?;
            span.attr("rows_out", out.len());
            attr_counter_deltas(&span, before.as_ref(), metrics);
            Ok(out)
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let span = tracer.child("project", parent);
            let rows = execute_plan_traced(input, parser, metrics, opts, tracer, span.id())?;
            span.attr("rows_in", rows.len());
            let before = counters_before(tracer, metrics);
            let out = project_exprs(rows, exprs, parser, metrics, opts.shared_parse)?;
            span.attr("rows_out", out.len());
            attr_counter_deltas(&span, before.as_ref(), metrics);
            Ok(out)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let span = tracer.child("hash_agg", parent);
            let rows = execute_plan_traced(input, parser, metrics, opts, tracer, span.id())?;
            span.attr("rows_in", rows.len());
            let before = counters_before(tracer, metrics);
            let out = aggregate(rows, group_by, aggs, parser, metrics, opts.shared_parse)?;
            span.attr("rows_out", out.len());
            attr_counter_deltas(&span, before.as_ref(), metrics);
            Ok(out)
        }
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
            ..
        } => {
            let span = tracer.child("hash_join", parent);
            let left_rows = execute_plan_traced(left, parser, metrics, opts, tracer, span.id())?;
            let right_rows = execute_plan_traced(right, parser, metrics, opts, tracer, span.id())?;
            span.attr("rows_left", left_rows.len());
            span.attr("rows_right", right_rows.len());
            let before = counters_before(tracer, metrics);
            let out = hash_join(
                left_rows,
                right_rows,
                left_key,
                right_key,
                parser,
                metrics,
                opts.shared_parse,
            )?;
            span.attr("rows_out", out.len());
            attr_counter_deltas(&span, before.as_ref(), metrics);
            Ok(out)
        }
        LogicalPlan::Sort { input, keys } => {
            let span = tracer.child("sort", parent);
            let rows = execute_plan_traced(input, parser, metrics, opts, tracer, span.id())?;
            span.attr("rows_in", rows.len());
            let before = counters_before(tracer, metrics);
            let out = sort_rows(rows, keys, parser, metrics, opts.shared_parse)?;
            attr_counter_deltas(&span, before.as_ref(), metrics);
            Ok(out)
        }
        LogicalPlan::Limit { input, n } => {
            let span = tracer.child("limit", parent);
            let mut rows = execute_plan_traced(input, parser, metrics, opts, tracer, span.id())?;
            span.attr("rows_in", rows.len());
            rows.truncate(*n);
            span.attr("rows_out", rows.len());
            Ok(rows)
        }
        LogicalPlan::Distinct { input } => {
            let span = tracer.child("distinct", parent);
            let rows = execute_plan_traced(input, parser, metrics, opts, tracer, span.id())?;
            span.attr("rows_in", rows.len());
            let mut seen: std::collections::HashSet<RowKey> = std::collections::HashSet::new();
            let mut out = Vec::new();
            for row in rows {
                // Probe with the borrowed row; own a key (cheap cell
                // clones, no string build) only for first-seen rows.
                if !seen.contains(RowKeySlice::new(&row)) {
                    seen.insert(RowKey(row.clone()));
                    out.push(row);
                }
            }
            span.attr("rows_out", out.len());
            Ok(out)
        }
    }
}

/// Snapshot the counters an operator span will diff against — only when
/// tracing, so the untraced path never clones.
fn counters_before(tracer: &Tracer, metrics: &ExecMetrics) -> Option<ExecMetrics> {
    tracer.is_enabled().then(|| metrics.clone())
}

/// Annotate a span with the integer-counter deltas an operator charged
/// (zero deltas are omitted, keeping rendered plans compact and
/// deterministic across thread counts).
fn attr_counter_deltas(span: &SpanGuard<'_>, before: Option<&ExecMetrics>, after: &ExecMetrics) {
    let Some(b) = before else { return };
    for (key, delta) in [
        ("rows_scanned", after.rows_scanned - b.rows_scanned),
        ("bytes_read", after.bytes_read - b.bytes_read),
        ("parse_calls", after.parse_calls - b.parse_calls),
        ("docs_parsed", after.docs_parsed - b.docs_parsed),
        ("cache_hits", after.cache_hits - b.cache_hits),
        ("rg_read", after.row_groups_read - b.row_groups_read),
        (
            "rg_skipped",
            after.row_groups_skipped - b.row_groups_skipped,
        ),
        (
            "prefilter_dropped",
            after.prefilter_dropped - b.prefilter_dropped,
        ),
        (
            "cells_materialized",
            after.cells_materialized - b.cells_materialized,
        ),
        (
            "batch_rows_skipped",
            after.batch_rows_skipped - b.batch_rows_skipped,
        ),
        ("lru_hits", after.lru_hits - b.lru_hits),
        ("lru_misses", after.lru_misses - b.lru_misses),
        ("lru_evictions", after.lru_evictions - b.lru_evictions),
        ("nodes_skipped", after.nodes_skipped - b.nodes_skipped),
        ("bitmap_builds", after.bitmap_builds - b.bitmap_builds),
        ("bitmap_bytes", after.bitmap_bytes - b.bitmap_bytes),
    ] {
        if delta > 0 {
            span.attr(key, delta);
        }
    }
    // Kernel attribution rides along only when this operator actually built
    // structural bitmaps, so Jackson-mode span trees are unchanged.
    if after.bitmap_builds > b.bitmap_builds {
        let wall_us =
            (after.bitmap_build_wall.saturating_sub(b.bitmap_build_wall)).as_micros() as u64;
        if wall_us > 0 {
            span.attr("bitmap_wall_us", wall_us);
        }
        span.attr("simd", maxson_json::kernels::active().name());
    }
}

fn filter_rows(
    rows: Vec<Vec<Cell>>,
    predicate: &Expr,
    parser: JsonParserKind,
    metrics: &mut ExecMetrics,
    shared_parse: bool,
) -> Result<Vec<Vec<Cell>>> {
    let extractor = shared_extractor(shared_parse, [predicate]);
    let mut out = Vec::new();
    for row in rows {
        let slots = extractor.as_ref().map(RowSlots::new);
        if truthy(&predicate.eval_with(&row, parser, metrics, slots.as_ref())?) {
            out.push(row);
        }
    }
    Ok(out)
}

fn project_exprs(
    rows: Vec<Vec<Cell>>,
    exprs: &[(Expr, String)],
    parser: JsonParserKind,
    metrics: &mut ExecMetrics,
    shared_parse: bool,
) -> Result<Vec<Vec<Cell>>> {
    let extractor = shared_extractor(shared_parse, exprs.iter().map(|(e, _)| e));
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let slots = extractor.as_ref().map(RowSlots::new);
        let mut projected = Vec::with_capacity(exprs.len());
        for (e, _) in exprs {
            projected.push(e.eval_with(&row, parser, metrics, slots.as_ref())?);
        }
        out.push(projected);
    }
    Ok(out)
}

/// Build a shared-parse extractor over `exprs` when the toggle is on (and
/// the expressions contain any JSON path at all).
fn shared_extractor<'a>(
    shared_parse: bool,
    exprs: impl IntoIterator<Item = &'a Expr>,
) -> Option<JsonExtractor> {
    if shared_parse {
        JsonExtractor::from_exprs(exprs)
    } else {
        None
    }
}

// ----------------------------------------------------------------------
// Split-parallel scan pipeline
// ----------------------------------------------------------------------

/// A parallelizable plan prefix: scan, optional filter, then either a
/// projection or an aggregation (never both — the planner puts the
/// post-aggregate projection above the Aggregate node, where it stays
/// serial because it only touches a handful of result rows).
struct PipelineSegment<'a> {
    provider: &'a dyn ScanProvider,
    filter: Option<&'a Expr>,
    project: Option<&'a [(Expr, String)]>,
    agg: Option<(&'a [Expr], &'a [(AggFunc, Option<Expr>)])>,
    /// Shared-parse extraction sites across the *whole* segment (filter
    /// plus projection or aggregation), so one row-parse serves every
    /// stage. `None` when the toggle is off or no stage touches JSON.
    /// Read-only, hence safely shared across split tasks.
    extractor: Option<JsonExtractor>,
    /// Scan-schema columns the filter reads (ascending). For columnar
    /// batches only these are materialized before the filter runs.
    filter_cols: Vec<usize>,
    /// The complement of `filter_cols` over the scan schema (ascending):
    /// materialized only for rows the filter keeps.
    rest_cols: Vec<usize>,
}

impl<'a> PipelineSegment<'a> {
    fn extract(plan: &'a LogicalPlan, shared_parse: bool) -> Option<Self> {
        fn base(plan: &LogicalPlan) -> Option<(&dyn ScanProvider, Option<&Expr>)> {
            match plan {
                LogicalPlan::Scan { provider } => Some((provider.as_ref(), None)),
                LogicalPlan::Filter { input, predicate } => match input.as_ref() {
                    LogicalPlan::Scan { provider } => Some((provider.as_ref(), Some(predicate))),
                    _ => None,
                },
                _ => None,
            }
        }
        let mut segment = match plan {
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                ..
            } => {
                let (provider, filter) = base(input)?;
                PipelineSegment {
                    provider,
                    filter,
                    project: None,
                    agg: Some((group_by, aggs)),
                    extractor: None,
                    filter_cols: Vec::new(),
                    rest_cols: Vec::new(),
                }
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let (provider, filter) = base(input)?;
                PipelineSegment {
                    provider,
                    filter,
                    project: Some(exprs),
                    agg: None,
                    extractor: None,
                    filter_cols: Vec::new(),
                    rest_cols: Vec::new(),
                }
            }
            other => {
                let (provider, filter) = base(other)?;
                PipelineSegment {
                    provider,
                    filter,
                    project: None,
                    agg: None,
                    extractor: None,
                    filter_cols: Vec::new(),
                    rest_cols: Vec::new(),
                }
            }
        };
        if shared_parse {
            let mut exprs: Vec<&Expr> = Vec::new();
            if let Some(p) = segment.filter {
                exprs.push(p);
            }
            if let Some(list) = segment.project {
                exprs.extend(list.iter().map(|(e, _)| e));
            }
            if let Some((group_by, aggs)) = segment.agg {
                exprs.extend(group_by.iter());
                exprs.extend(aggs.iter().filter_map(|(_, a)| a.as_ref()));
            }
            segment.extractor = JsonExtractor::from_exprs(exprs);
        }
        if let Some(predicate) = segment.filter {
            let mut referenced = std::collections::BTreeSet::new();
            predicate.collect_columns(&mut referenced);
            let width = segment.provider.schema().fields().len();
            // Out-of-range references (a planner bug) are left out so the
            // filter's own eval reports the error instead of an index panic.
            segment.filter_cols = referenced.iter().copied().filter(|&c| c < width).collect();
            segment.rest_cols = (0..width).filter(|c| !referenced.contains(c)).collect();
        }
        Some(segment)
    }

    /// One split as a batch (`None` = the provider's whole-table scan, used
    /// for degenerate zero-split providers).
    fn scan_batch(&self, split: Option<usize>, metrics: &mut ExecMetrics) -> Result<Batch> {
        match split {
            Some(s) => self.provider.scan_split_batch(s, metrics),
            None => self.provider.scan_batch(metrics),
        }
    }

    /// Materialize columnar row `i` into `scratch` with the filter applied
    /// lazily: only the predicate's columns are built before it runs; the
    /// rest are built only when the row survives. Returns `false` (and
    /// charges `batch_rows_skipped`) for rejected rows — their non-predicate
    /// slots then hold stale cells nothing reads.
    fn fill_row(
        &self,
        cols: &[maxson_storage::ColumnData],
        i: usize,
        scratch: &mut [Cell],
        parser: JsonParserKind,
        metrics: &mut ExecMetrics,
        slots: Option<&RowSlots<'_>>,
    ) -> Result<bool> {
        match self.filter {
            Some(predicate) => {
                for &c in &self.filter_cols {
                    scratch[c] = cols[c].get(i);
                }
                metrics.cells_materialized += self.filter_cols.len() as u64;
                if !truthy(&predicate.eval_with(scratch, parser, metrics, slots)?) {
                    metrics.batch_rows_skipped += 1;
                    return Ok(false);
                }
                for &c in &self.rest_cols {
                    scratch[c] = cols[c].get(i);
                }
                metrics.cells_materialized += self.rest_cols.len() as u64;
            }
            None => {
                for (c, col) in cols.iter().enumerate() {
                    scratch[c] = col.get(i);
                }
                metrics.cells_materialized += cols.len() as u64;
            }
        }
        Ok(true)
    }

    /// The surviving row indexes of a columnar batch, charging
    /// `batch_rows_skipped` for rows the selection vector drops (they are
    /// never materialized at all).
    fn batch_indexes(n: usize, selection: Option<Vec<u32>>, metrics: &mut ExecMetrics) -> Vec<u32> {
        match selection {
            Some(sel) => {
                metrics.batch_rows_skipped += (n - sel.len()) as u64;
                sel
            }
            None => (0..n as u32).collect(),
        }
    }

    /// Scan one split and run the filter (and projection, if any) over it,
    /// row at a time so both stages share one [`RowSlots`] — the filter's
    /// parse is reused by the projection. Columnar batches reuse one
    /// scratch row and materialize cells late; row-major batches keep the
    /// pre-batching row loop byte for byte.
    fn run_rows(
        &self,
        split: Option<usize>,
        parser: JsonParserKind,
        metrics: &mut ExecMetrics,
    ) -> Result<Vec<Vec<Cell>>> {
        let batch = self.scan_batch(split, metrics)?;
        let selection = batch.selection;
        let cols = match batch.data {
            BatchData::Rows(rows) => {
                let rows = Batch {
                    data: BatchData::Rows(rows),
                    selection,
                }
                .into_rows(metrics);
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let slots = self.extractor.as_ref().map(RowSlots::new);
                    if let Some(predicate) = self.filter {
                        if !truthy(&predicate.eval_with(&row, parser, metrics, slots.as_ref())?) {
                            continue;
                        }
                    }
                    match self.project {
                        Some(exprs) => {
                            let mut projected = Vec::with_capacity(exprs.len());
                            for (e, _) in exprs {
                                projected.push(e.eval_with(
                                    &row,
                                    parser,
                                    metrics,
                                    slots.as_ref(),
                                )?);
                            }
                            out.push(projected);
                        }
                        None => out.push(row),
                    }
                }
                return Ok(out);
            }
            BatchData::Columns(cols) => cols,
        };
        let n = cols.first().map_or(0, |c| c.len());
        let indexes = Self::batch_indexes(n, selection, metrics);
        let mut scratch: Vec<Cell> = vec![Cell::Null; cols.len()];
        let mut out = Vec::new();
        for &i in &indexes {
            let slots = self.extractor.as_ref().map(RowSlots::new);
            if !self.fill_row(
                &cols,
                i as usize,
                &mut scratch,
                parser,
                metrics,
                slots.as_ref(),
            )? {
                continue;
            }
            match self.project {
                Some(exprs) => {
                    let mut projected = Vec::with_capacity(exprs.len());
                    for (e, _) in exprs {
                        projected.push(e.eval_with(&scratch, parser, metrics, slots.as_ref())?);
                    }
                    out.push(projected);
                }
                // Cheap: cell clones are refcount bumps on shared buffers.
                None => out.push(scratch.clone()),
            }
        }
        Ok(out)
    }

    /// Scan one split and fold it into an aggregate partial, sharing each
    /// row's parse between the filter and the group-key/argument
    /// evaluations. Columnar batches materialize cells late, as in
    /// [`PipelineSegment::run_rows`].
    fn run_agg(
        &self,
        split: Option<usize>,
        partial: &mut AggPartial,
        parser: JsonParserKind,
        metrics: &mut ExecMetrics,
    ) -> Result<()> {
        let (group_by, aggs) = self.agg.expect("run_agg requires an aggregate segment");
        let batch = self.scan_batch(split, metrics)?;
        let selection = batch.selection;
        let cols = match batch.data {
            BatchData::Rows(rows) => {
                let rows = Batch {
                    data: BatchData::Rows(rows),
                    selection,
                }
                .into_rows(metrics);
                for row in rows {
                    let slots = self.extractor.as_ref().map(RowSlots::new);
                    if let Some(predicate) = self.filter {
                        if !truthy(&predicate.eval_with(&row, parser, metrics, slots.as_ref())?) {
                            continue;
                        }
                    }
                    partial.update(&row, group_by, aggs, parser, metrics, slots.as_ref())?;
                }
                return Ok(());
            }
            BatchData::Columns(cols) => cols,
        };
        let n = cols.first().map_or(0, |c| c.len());
        let indexes = Self::batch_indexes(n, selection, metrics);
        let mut scratch: Vec<Cell> = vec![Cell::Null; cols.len()];
        for &i in &indexes {
            let slots = self.extractor.as_ref().map(RowSlots::new);
            if !self.fill_row(
                &cols,
                i as usize,
                &mut scratch,
                parser,
                metrics,
                slots.as_ref(),
            )? {
                continue;
            }
            partial.update(&scratch, group_by, aggs, parser, metrics, slots.as_ref())?;
        }
        Ok(())
    }
}

/// Record one pool run's shape in the query metrics.
fn note_pool_run(metrics: &mut ExecMetrics, threads_spawned: usize, walls: &[std::time::Duration]) {
    let (p50, p95, skew) = pool::wall_stats(walls);
    let run = ExecMetrics {
        threads_used: threads_spawned as u64,
        par_tasks: walls.len() as u64,
        task_wall_p50: p50,
        task_wall_p95: p95,
        task_skew: skew,
        ..Default::default()
    };
    metrics.absorb(&run);
}

/// Run `plan` through the unified scan pipeline if it has segment shape.
/// Returns `Ok(None)` when the plan shape does not qualify, in which case
/// the caller falls back to the per-operator path. Serial execution (one
/// thread, or fewer than two splits) walks the splits sequentially on the
/// calling thread in index order — provably the same rows and metrics as
/// the old chained operators, since `scan()` is exactly that loop — while
/// parallel execution fans splits out over the pool.
fn run_pipeline(
    plan: &LogicalPlan,
    parser: JsonParserKind,
    metrics: &mut ExecMetrics,
    opts: &ExecOptions,
    tracer: &Tracer,
    parent: Option<SpanId>,
) -> Result<Option<Vec<Vec<Cell>>>> {
    let Some(segment) = PipelineSegment::extract(plan, opts.shared_parse) else {
        return Ok(None);
    };
    let splits = segment.provider.split_count();
    let span = tracer.child("scan_pipeline", parent);
    if span.is_recording() {
        span.attr("label", segment.provider.label());
        let mut stages = String::from("scan");
        if segment.filter.is_some() {
            stages.push_str("+filter");
        }
        if segment.project.is_some() {
            stages.push_str("+project");
        }
        if segment.agg.is_some() {
            stages.push_str("+agg");
        }
        span.attr("stages", stages);
        span.attr("splits", splits);
    }
    // Single-split (and empty) tables stay serial even with many threads:
    // spawning threads for one task buys nothing and must not change
    // observable behavior (threads_used stays 0).
    if opts.threads <= 1 || splits <= 1 {
        // Degenerate providers report zero splits; run their whole-table
        // `scan()` as one pseudo-split to preserve their behavior.
        let split_ids: Vec<Option<usize>> = if splits == 0 {
            vec![None]
        } else {
            (0..splits).map(Some).collect()
        };
        match segment.agg {
            None => {
                let mut out = Vec::new();
                for split in split_ids {
                    let split_span = tracer.child("split", span.id());
                    if let Some(s) = split {
                        split_span.attr("split", s);
                    }
                    let before = counters_before(tracer, metrics);
                    let rows = segment.run_rows(split, parser, metrics)?;
                    split_span.attr("rows_out", rows.len());
                    attr_counter_deltas(&split_span, before.as_ref(), metrics);
                    out.extend(rows);
                }
                span.attr("rows_out", out.len());
                return Ok(Some(out));
            }
            Some((group_by, aggs)) => {
                let mut partial = AggPartial::new(group_by, aggs);
                for split in split_ids {
                    let split_span = tracer.child("split", span.id());
                    if let Some(s) = split {
                        split_span.attr("split", s);
                    }
                    let before = counters_before(tracer, metrics);
                    segment.run_agg(split, &mut partial, parser, metrics)?;
                    attr_counter_deltas(&split_span, before.as_ref(), metrics);
                }
                let out = finish_aggregate(partial);
                span.attr("rows_out", out.len());
                return Ok(Some(out));
            }
        }
    }
    // Worker tasks parent their per-split spans on the pipeline span even
    // though they record from pool threads — the guard id is Copy and the
    // tracer is Sync, so each split lands on its own thread track.
    let pipe_id = span.id();
    match segment.agg {
        None => {
            let run =
                pool::run_split_tasks(splits, opts.threads, opts.scheduler.as_deref(), |split| {
                    let mut task_metrics = ExecMetrics::default();
                    let split_span = tracer.child("split", pipe_id);
                    split_span.attr("split", split);
                    let zero = counters_before(tracer, &ExecMetrics::default());
                    let rows = segment.run_rows(Some(split), parser, &mut task_metrics)?;
                    split_span.attr("rows_out", rows.len());
                    attr_counter_deltas(&split_span, zero.as_ref(), &task_metrics);
                    Ok((rows, task_metrics))
                })?;
            note_pool_run(metrics, run.threads_spawned, &run.task_walls);
            let workers = run.threads_spawned.max(1) as u32;
            let mut out = Vec::new();
            for (rows, mut task_metrics) in run.results {
                scale_wall_gauges(&mut task_metrics, workers);
                metrics.absorb(&task_metrics);
                out.extend(rows);
            }
            span.attr("rows_out", out.len());
            Ok(Some(out))
        }
        Some((group_by, aggs)) => {
            let run =
                pool::run_split_tasks(splits, opts.threads, opts.scheduler.as_deref(), |split| {
                    let mut task_metrics = ExecMetrics::default();
                    let split_span = tracer.child("split", pipe_id);
                    split_span.attr("split", split);
                    let zero = counters_before(tracer, &ExecMetrics::default());
                    let mut partial = AggPartial::new(group_by, aggs);
                    segment.run_agg(Some(split), &mut partial, parser, &mut task_metrics)?;
                    attr_counter_deltas(&split_span, zero.as_ref(), &task_metrics);
                    Ok((partial, task_metrics))
                })?;
            note_pool_run(metrics, run.threads_spawned, &run.task_walls);
            let workers = run.threads_spawned.max(1) as u32;
            let mut merged: Option<AggPartial> = None;
            for (partial, mut task_metrics) in run.results {
                scale_wall_gauges(&mut task_metrics, workers);
                metrics.absorb(&task_metrics);
                merged = Some(match merged {
                    None => partial,
                    Some(mut acc) => {
                        acc.merge(partial);
                        acc
                    }
                });
            }
            let merged = merged.expect("split count >= 2 yields partials");
            let out = finish_aggregate(merged);
            span.attr("rows_out", out.len());
            Ok(Some(out))
        }
    }
}

/// Turn a pool task's serially-charged wall gauges into this run's
/// wall-clock estimate: `workers` tasks overlap, so each one contributes
/// roughly `1/workers` of elapsed time. Applied before the barrier absorbs
/// task metrics (division distributes over the per-task sum, so absorb
/// stays order-insensitive).
fn scale_wall_gauges(m: &mut ExecMetrics, workers: u32) {
    m.read_wall /= workers;
    m.parse_wall /= workers;
}

// ----------------------------------------------------------------------
// Aggregation
// ----------------------------------------------------------------------

/// Running state of one aggregate call.
///
/// `Sum` and `Avg` **defer** their float addends instead of accumulating a
/// running `f64`: float addition is not associative, so the only way
/// parallel partials can finish to the exact bits of the serial result is
/// to replay the additions in serial input order at `finish` time. Partial
/// merge is then just addend concatenation (split order = input order).
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    CountDistinct(std::collections::HashSet<CellKey>),
    Sum {
        /// Coerced float value of every non-null input, in input order.
        addends: Vec<f64>,
        all_int: bool,
        isum: i64,
    },
    Min(Option<Cell>),
    Max(Option<Cell>),
    Avg {
        addends: Vec<f64>,
    },
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::CountDistinct => AggState::CountDistinct(std::collections::HashSet::new()),
            AggFunc::Sum => AggState::Sum {
                addends: Vec::new(),
                all_int: true,
                isum: 0,
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg {
                addends: Vec::new(),
            },
        }
    }

    fn update(&mut self, value: Option<&Cell>) {
        match self {
            AggState::Count(n) => {
                // COUNT(*) counts every row (value None); COUNT(expr) skips NULL.
                match value {
                    None => *n += 1,
                    Some(c) if !c.is_null() => *n += 1,
                    _ => {}
                }
            }
            AggState::CountDistinct(set) => {
                if let Some(c) = value {
                    if !c.is_null() {
                        set.insert(CellKey(c.clone()));
                    }
                }
            }
            AggState::Sum {
                addends,
                all_int,
                isum,
            } => {
                if let Some(c) = value {
                    if let Some(f) = c.coerce_f64() {
                        addends.push(f);
                        match c {
                            Cell::Int(i) => *isum = isum.wrapping_add(*i),
                            _ => *all_int = false,
                        }
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(c) = value {
                    if !c.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|m| c.sql_cmp(m) == Some(std::cmp::Ordering::Less))
                    {
                        *cur = Some(c.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(c) = value {
                    if !c.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|m| c.sql_cmp(m) == Some(std::cmp::Ordering::Greater))
                    {
                        *cur = Some(c.clone());
                    }
                }
            }
            AggState::Avg { addends } => {
                if let Some(c) = value {
                    if let Some(f) = c.coerce_f64() {
                        addends.push(f);
                    }
                }
            }
        }
    }

    /// Merge a later split's state into this one. `other` must come from
    /// the same aggregate call (same variant), built over rows that follow
    /// this state's rows in input order.
    ///
    /// Every operation here is exact: counters add, sets union, addend
    /// lists concatenate (float folding is deferred to [`AggState::finish`]
    /// so it happens in global input order), and MIN/MAX treat the other
    /// side's extremum as one more update candidate. The single caveat is
    /// `sql_cmp` returning `None` for incomparable mixed-type pairs, where
    /// MIN/MAX keep the incumbent exactly like the serial fold does when it
    /// meets the same pair in the same order.
    fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::CountDistinct(a), AggState::CountDistinct(b)) => a.extend(b),
            (
                AggState::Sum {
                    addends,
                    all_int,
                    isum,
                },
                AggState::Sum {
                    addends: other_addends,
                    all_int: other_all_int,
                    isum: other_isum,
                },
            ) => {
                addends.extend(other_addends);
                *all_int &= other_all_int;
                *isum = isum.wrapping_add(other_isum);
            }
            (AggState::Min(cur), AggState::Min(candidate)) => {
                if let Some(c) = candidate {
                    if cur
                        .as_ref()
                        .is_none_or(|m| c.sql_cmp(m) == Some(std::cmp::Ordering::Less))
                    {
                        *cur = Some(c);
                    }
                }
            }
            (AggState::Max(cur), AggState::Max(candidate)) => {
                if let Some(c) = candidate {
                    if cur
                        .as_ref()
                        .is_none_or(|m| c.sql_cmp(m) == Some(std::cmp::Ordering::Greater))
                    {
                        *cur = Some(c);
                    }
                }
            }
            (
                AggState::Avg { addends },
                AggState::Avg {
                    addends: other_addends,
                },
            ) => addends.extend(other_addends),
            _ => unreachable!("merging mismatched aggregate states"),
        }
    }

    fn finish(self) -> Cell {
        match self {
            AggState::Count(n) => Cell::Int(n),
            AggState::CountDistinct(set) => Cell::Int(set.len() as i64),
            AggState::Sum {
                addends,
                all_int,
                isum,
            } => {
                if addends.is_empty() {
                    Cell::Null
                } else if all_int {
                    Cell::Int(isum)
                } else {
                    // Left fold from 0.0 in input order: bit-identical to the
                    // incremental serial accumulator.
                    Cell::Float(addends.iter().fold(0.0, |acc, &x| acc + x))
                }
            }
            AggState::Min(c) | AggState::Max(c) => c.unwrap_or(Cell::Null),
            AggState::Avg { addends } => {
                if addends.is_empty() {
                    Cell::Null
                } else {
                    let sum = addends.iter().fold(0.0, |acc, &x| acc + x);
                    Cell::Float(sum / addends.len() as f64)
                }
            }
        }
    }
}

/// Aggregate state over one slice of input rows, mergeable across splits.
#[derive(Debug)]
enum AggPartial {
    Global(Vec<AggState>),
    Grouped {
        /// Group keys in first-seen order. The key cells double as the
        /// output key columns, so no separate per-group row is stored.
        order: Vec<RowKey>,
        groups: HashMap<RowKey, Vec<AggState>>,
    },
}

impl AggPartial {
    /// Empty partial of the right shape for `group_by` / `aggs`.
    fn new(group_by: &[Expr], aggs: &[(AggFunc, Option<Expr>)]) -> AggPartial {
        if group_by.is_empty() {
            AggPartial::Global(aggs.iter().map(|(f, _)| AggState::new(*f)).collect())
        } else {
            AggPartial::Grouped {
                order: Vec::new(),
                groups: HashMap::new(),
            }
        }
    }

    /// Fold one input row into this partial. `slots` (when present) shares
    /// the row's JSON parse across group keys, aggregate arguments, and the
    /// caller's already-evaluated filter.
    fn update(
        &mut self,
        row: &[Cell],
        group_by: &[Expr],
        aggs: &[(AggFunc, Option<Expr>)],
        parser: JsonParserKind,
        metrics: &mut ExecMetrics,
        slots: Option<&RowSlots<'_>>,
    ) -> Result<()> {
        let states = match self {
            AggPartial::Global(states) => states,
            AggPartial::Grouped { order, groups } => {
                let mut keys = Vec::with_capacity(group_by.len());
                for g in group_by {
                    keys.push(g.eval_with(row, parser, metrics, slots)?);
                }
                // Probe with the evaluated cells directly — no per-row key
                // string. Only a first-seen group owns its key (cheap cell
                // clones).
                if !groups.contains_key(RowKeySlice::new(&keys)) {
                    let key = RowKey(keys.clone());
                    order.push(key.clone());
                    groups.insert(key, aggs.iter().map(|(f, _)| AggState::new(*f)).collect());
                }
                groups
                    .get_mut(RowKeySlice::new(&keys))
                    .expect("group inserted above")
            }
        };
        for (state, (_, arg)) in states.iter_mut().zip(aggs) {
            match arg {
                None => state.update(None),
                Some(e) => {
                    let v = e.eval_with(row, parser, metrics, slots)?;
                    state.update(Some(&v));
                }
            }
        }
        Ok(())
    }

    /// Merge a later split's partial into this one, preserving this side's
    /// first-seen group order and appending the other side's new groups in
    /// their own first-seen order — exactly the order a serial pass over
    /// the concatenated input would have discovered them in.
    fn merge(&mut self, other: AggPartial) {
        match (self, other) {
            (AggPartial::Global(states), AggPartial::Global(other_states)) => {
                for (state, other_state) in states.iter_mut().zip(other_states) {
                    state.merge(other_state);
                }
            }
            (
                AggPartial::Grouped { order, groups },
                AggPartial::Grouped {
                    order: other_order,
                    groups: mut other_groups,
                },
            ) => {
                for key in other_order {
                    let states = other_groups
                        .remove(&key)
                        .expect("group key recorded in order list");
                    match groups.entry(key) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            for (state, other_state) in e.get_mut().iter_mut().zip(states) {
                                state.merge(other_state);
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            order.push(e.key().clone());
                            e.insert(states);
                        }
                    }
                }
            }
            _ => unreachable!("merging mismatched aggregate partials"),
        }
    }
}

/// Build the aggregate partial for one slice of input rows (first-seen
/// group order for deterministic output). With `shared_parse`, each row
/// parses its JSON documents once across group keys and aggregate args.
fn partial_aggregate(
    rows: &[Vec<Cell>],
    group_by: &[Expr],
    aggs: &[(AggFunc, Option<Expr>)],
    parser: JsonParserKind,
    metrics: &mut ExecMetrics,
    shared_parse: bool,
) -> Result<AggPartial> {
    let extractor = shared_extractor(
        shared_parse,
        group_by
            .iter()
            .chain(aggs.iter().filter_map(|(_, a)| a.as_ref())),
    );
    let mut partial = AggPartial::new(group_by, aggs);
    for row in rows {
        let slots = extractor.as_ref().map(RowSlots::new);
        partial.update(row, group_by, aggs, parser, metrics, slots.as_ref())?;
    }
    Ok(partial)
}

/// Finish a (possibly merged) partial into output rows.
fn finish_aggregate(partial: AggPartial) -> Vec<Vec<Cell>> {
    match partial {
        AggPartial::Global(states) => {
            vec![states.into_iter().map(AggState::finish).collect()]
        }
        AggPartial::Grouped { order, mut groups } => {
            let mut out = Vec::with_capacity(order.len());
            for key in order {
                let states = groups
                    .remove(&key)
                    .expect("group key recorded in order list");
                let mut row = key.into_cells();
                row.extend(states.into_iter().map(AggState::finish));
                out.push(row);
            }
            out
        }
    }
}

/// Serial aggregation: one partial over the whole input, finished. The
/// parallel path goes through the same `partial_aggregate` /
/// `finish_aggregate` pair, so there is a single aggregation
/// implementation to trust.
fn aggregate(
    rows: Vec<Vec<Cell>>,
    group_by: &[Expr],
    aggs: &[(AggFunc, Option<Expr>)],
    parser: JsonParserKind,
    metrics: &mut ExecMetrics,
    shared_parse: bool,
) -> Result<Vec<Vec<Cell>>> {
    let partial = partial_aggregate(&rows, group_by, aggs, parser, metrics, shared_parse)?;
    Ok(finish_aggregate(partial))
}

fn hash_join(
    left_rows: Vec<Vec<Cell>>,
    right_rows: Vec<Vec<Cell>>,
    left_key: &Expr,
    right_key: &Expr,
    parser: JsonParserKind,
    metrics: &mut ExecMetrics,
    shared_parse: bool,
) -> Result<Vec<Vec<Cell>>> {
    // Each side keys on one expression over its own rows, so the shared
    // extractor covers that single expression (still worthwhile: a path
    // repeated inside one key expression parses once).
    let right_extractor = shared_extractor(shared_parse, [right_key]);
    let left_extractor = shared_extractor(shared_parse, [left_key]);
    // Build on the right side.
    let mut table: HashMap<CellKey, Vec<usize>> = HashMap::new();
    let mut right_keys = Vec::with_capacity(right_rows.len());
    for (i, row) in right_rows.iter().enumerate() {
        let slots = right_extractor.as_ref().map(RowSlots::new);
        let k = right_key.eval_with(row, parser, metrics, slots.as_ref())?;
        if !k.is_null() {
            table.entry(CellKey(k.clone())).or_default().push(i);
        }
        right_keys.push(k);
    }
    let mut out = Vec::new();
    for lrow in &left_rows {
        let slots = left_extractor.as_ref().map(RowSlots::new);
        let k = left_key.eval_with(lrow, parser, metrics, slots.as_ref())?;
        if k.is_null() {
            continue;
        }
        if let Some(matches) = table.get(&CellKey(k.clone())) {
            for &ri in matches {
                let mut combined = lrow.clone();
                combined.extend(right_rows[ri].iter().cloned());
                out.push(combined);
            }
        }
    }
    Ok(out)
}

fn sort_rows(
    rows: Vec<Vec<Cell>>,
    keys: &[(Expr, bool)],
    parser: JsonParserKind,
    metrics: &mut ExecMetrics,
    shared_parse: bool,
) -> Result<Vec<Vec<Cell>>> {
    let extractor = shared_extractor(shared_parse, keys.iter().map(|(e, _)| e));
    // Precompute sort keys once per row (get_json_object keys are costly).
    let mut keyed: Vec<(Vec<Cell>, Vec<Cell>)> = Vec::with_capacity(rows.len());
    for row in rows {
        let slots = extractor.as_ref().map(RowSlots::new);
        let mut ks = Vec::with_capacity(keys.len());
        for (e, _) in keys {
            ks.push(e.eval_with(&row, parser, metrics, slots.as_ref())?);
        }
        keyed.push((ks, row));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for ((a, b), (_, asc)) in ka.iter().zip(kb).zip(keys) {
            let ord = a.total_cmp(b);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(keyed.into_iter().map(|(_, row)| row).collect())
}

/// Evaluate a standalone expression list over rows (helper for tests).
pub fn project_rows(
    rows: &[Vec<Cell>],
    exprs: &[Expr],
    parser: JsonParserKind,
    metrics: &mut ExecMetrics,
) -> Result<Vec<Vec<Cell>>> {
    rows.iter()
        .map(|row| {
            exprs
                .iter()
                .map(|e| e.eval(row, parser, metrics))
                .collect::<Result<Vec<Cell>>>()
        })
        .collect::<Result<Vec<_>>>()
        .map_err(|e| EngineError::exec(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::BinaryOp;
    use maxson_storage::{ColumnType, Field, Schema};

    fn rows3() -> Vec<Vec<Cell>> {
        vec![
            vec![Cell::Str("a".into()), Cell::Int(1)],
            vec![Cell::Str("b".into()), Cell::Int(2)],
            vec![Cell::Str("a".into()), Cell::Int(3)],
            vec![Cell::Str("c".into()), Cell::Null],
        ]
    }

    fn m() -> ExecMetrics {
        ExecMetrics::default()
    }

    /// Test provider with an explicit split structure.
    #[derive(Debug)]
    struct SplitFixed {
        schema: Schema,
        splits: Vec<Vec<Vec<Cell>>>,
        /// Index of a split whose scan should panic (poisoned data).
        poisoned: Option<usize>,
    }

    impl SplitFixed {
        fn new(splits: Vec<Vec<Vec<Cell>>>) -> Self {
            SplitFixed {
                schema: Schema::new(vec![
                    Field::new("tag", ColumnType::Utf8),
                    Field::new("v", ColumnType::Int64),
                ])
                .unwrap(),
                splits,
                poisoned: None,
            }
        }
    }

    impl ScanProvider for SplitFixed {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn scan(&self, m: &mut ExecMetrics) -> crate::error::Result<Vec<Vec<Cell>>> {
            let mut rows = Vec::new();
            for s in 0..self.splits.len() {
                rows.extend(self.scan_split(s, m)?);
            }
            Ok(rows)
        }
        fn split_count(&self) -> usize {
            self.splits.len()
        }
        fn scan_split(
            &self,
            split: usize,
            m: &mut ExecMetrics,
        ) -> crate::error::Result<Vec<Vec<Cell>>> {
            if self.poisoned == Some(split) {
                panic!("corrupt split body");
            }
            let rows = self.splits[split].clone();
            m.rows_scanned += rows.len() as u64;
            Ok(rows)
        }
        fn label(&self) -> String {
            "SplitFixed".into()
        }
    }

    fn ten_split_plan(poisoned: Option<usize>) -> LogicalPlan {
        // 10 splits x 8 rows with cycling tags and float-ish values.
        let splits: Vec<Vec<Vec<Cell>>> = (0..10)
            .map(|s| {
                (0..8)
                    .map(|i| {
                        let n = (s * 8 + i) as i64;
                        vec![Cell::from(format!("g{}", n % 3)), Cell::Int(n)]
                    })
                    .collect()
            })
            .collect();
        let mut provider = SplitFixed::new(splits);
        provider.poisoned = poisoned;
        LogicalPlan::Scan {
            provider: Box::new(provider),
        }
    }

    #[test]
    fn global_aggregates() {
        let aggs = vec![
            (AggFunc::Count, None),
            (AggFunc::Count, Some(Expr::Column(1))),
            (AggFunc::Sum, Some(Expr::Column(1))),
            (AggFunc::Min, Some(Expr::Column(1))),
            (AggFunc::Max, Some(Expr::Column(1))),
            (AggFunc::Avg, Some(Expr::Column(1))),
        ];
        let out = aggregate(rows3(), &[], &aggs, JsonParserKind::Jackson, &mut m(), true).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Cell::Int(4)); // COUNT(*)
        assert_eq!(out[0][1], Cell::Int(3)); // COUNT(v) skips null
        assert_eq!(out[0][2], Cell::Int(6)); // SUM
        assert_eq!(out[0][3], Cell::Int(1)); // MIN
        assert_eq!(out[0][4], Cell::Int(3)); // MAX
        assert_eq!(out[0][5], Cell::Float(2.0)); // AVG
    }

    #[test]
    fn empty_input_aggregates() {
        let aggs = vec![
            (AggFunc::Count, None),
            (AggFunc::Sum, Some(Expr::Column(0))),
            (AggFunc::Avg, Some(Expr::Column(0))),
            (AggFunc::Min, Some(Expr::Column(0))),
        ];
        let out = aggregate(vec![], &[], &aggs, JsonParserKind::Jackson, &mut m(), true).unwrap();
        assert_eq!(
            out[0],
            vec![Cell::Int(0), Cell::Null, Cell::Null, Cell::Null]
        );
    }

    #[test]
    fn grouped_aggregates_preserve_first_seen_order() {
        let aggs = vec![
            (AggFunc::Count, None),
            (AggFunc::Sum, Some(Expr::Column(1))),
        ];
        let out = aggregate(
            rows3(),
            &[Expr::Column(0)],
            &aggs,
            JsonParserKind::Jackson,
            &mut m(),
            true,
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(
            out[0],
            vec![Cell::Str("a".into()), Cell::Int(2), Cell::Int(4)]
        );
        assert_eq!(
            out[1],
            vec![Cell::Str("b".into()), Cell::Int(1), Cell::Int(2)]
        );
        assert_eq!(
            out[2],
            vec![Cell::Str("c".into()), Cell::Int(1), Cell::Null]
        );
    }

    /// Float SUM/AVG must be bitwise identical however the input is split
    /// into merged partials — the property the whole deferred-addend design
    /// exists for (0.1 + 0.2 + 0.3 famously re-associates differently).
    #[test]
    fn float_sum_is_bitwise_identical_across_split_boundaries() {
        let values: Vec<f64> = (1..=23).map(|i| 0.1 * i as f64).collect();
        let rows: Vec<Vec<Cell>> = values.iter().map(|&v| vec![Cell::Float(v)]).collect();
        let aggs = vec![
            (AggFunc::Sum, Some(Expr::Column(0))),
            (AggFunc::Avg, Some(Expr::Column(0))),
        ];
        let serial = aggregate(
            rows.clone(),
            &[],
            &aggs,
            JsonParserKind::Jackson,
            &mut m(),
            true,
        )
        .unwrap();
        for cut1 in 0..rows.len() {
            for cut2 in cut1..rows.len() {
                let mut acc = partial_aggregate(
                    &rows[..cut1],
                    &[],
                    &aggs,
                    JsonParserKind::Jackson,
                    &mut m(),
                    true,
                )
                .unwrap();
                for chunk in [&rows[cut1..cut2], &rows[cut2..]] {
                    let part = partial_aggregate(
                        chunk,
                        &[],
                        &aggs,
                        JsonParserKind::Jackson,
                        &mut m(),
                        true,
                    )
                    .unwrap();
                    acc.merge(part);
                }
                let merged = finish_aggregate(acc);
                // Compare exact bits, not approximate equality.
                let (Cell::Float(a), Cell::Float(b)) = (&serial[0][0], &merged[0][0]) else {
                    panic!("expected float sums");
                };
                assert_eq!(a.to_bits(), b.to_bits(), "cut at {cut1}/{cut2}");
                assert_eq!(serial[0], merged[0]);
            }
        }
    }

    #[test]
    fn grouped_merge_preserves_global_first_seen_order() {
        let rows = rows3();
        let aggs = vec![
            (AggFunc::Count, None),
            (AggFunc::Sum, Some(Expr::Column(1))),
        ];
        let group = vec![Expr::Column(0)];
        let serial = aggregate(
            rows.clone(),
            &group,
            &aggs,
            JsonParserKind::Jackson,
            &mut m(),
            true,
        )
        .unwrap();
        for cut in 0..=rows.len() {
            let mut acc = partial_aggregate(
                &rows[..cut],
                &group,
                &aggs,
                JsonParserKind::Jackson,
                &mut m(),
                true,
            )
            .unwrap();
            let rest = partial_aggregate(
                &rows[cut..],
                &group,
                &aggs,
                JsonParserKind::Jackson,
                &mut m(),
                true,
            )
            .unwrap();
            acc.merge(rest);
            assert_eq!(finish_aggregate(acc), serial, "cut at {cut}");
        }
    }

    #[test]
    fn count_distinct_merges_as_set_union() {
        let rows = rows3();
        let aggs = vec![(AggFunc::CountDistinct, Some(Expr::Column(0)))];
        let serial = aggregate(
            rows.clone(),
            &[],
            &aggs,
            JsonParserKind::Jackson,
            &mut m(),
            true,
        )
        .unwrap();
        let mut acc = partial_aggregate(
            &rows[..2],
            &[],
            &aggs,
            JsonParserKind::Jackson,
            &mut m(),
            true,
        )
        .unwrap();
        let rest = partial_aggregate(
            &rows[2..],
            &[],
            &aggs,
            JsonParserKind::Jackson,
            &mut m(),
            true,
        )
        .unwrap();
        acc.merge(rest);
        assert_eq!(finish_aggregate(acc), serial);
        assert_eq!(serial[0][0], Cell::Int(3));
    }

    #[test]
    fn join_matches_and_skips_nulls() {
        let left = vec![
            vec![Cell::Int(1), Cell::Str("l1".into())],
            vec![Cell::Int(2), Cell::Str("l2".into())],
            vec![Cell::Null, Cell::Str("ln".into())],
        ];
        let right = vec![
            vec![Cell::Int(2), Cell::Str("r2".into())],
            vec![Cell::Int(2), Cell::Str("r2b".into())],
            vec![Cell::Int(3), Cell::Str("r3".into())],
            vec![Cell::Null, Cell::Str("rn".into())],
        ];
        let out = hash_join(
            left,
            right,
            &Expr::Column(0),
            &Expr::Column(0),
            JsonParserKind::Jackson,
            &mut m(),
            true,
        )
        .unwrap();
        // Only key 2 matches, twice.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 4);
        assert_eq!(out[0][1], Cell::Str("l2".into()));
        assert_eq!(out[1][3], Cell::Str("r2b".into()));
    }

    #[test]
    fn join_keys_compare_numerically_across_types() {
        let left = vec![vec![Cell::Int(2)]];
        let right = vec![vec![Cell::Float(2.0)]];
        let out = hash_join(
            left,
            right,
            &Expr::Column(0),
            &Expr::Column(0),
            JsonParserKind::Jackson,
            &mut m(),
            true,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn sort_multi_key_with_direction() {
        let rows = vec![
            vec![Cell::Str("b".into()), Cell::Int(1)],
            vec![Cell::Str("a".into()), Cell::Int(2)],
            vec![Cell::Str("a".into()), Cell::Int(1)],
        ];
        let keys = vec![(Expr::Column(0), true), (Expr::Column(1), false)];
        let out = sort_rows(rows, &keys, JsonParserKind::Jackson, &mut m(), true).unwrap();
        assert_eq!(out[0], vec![Cell::Str("a".into()), Cell::Int(2)]);
        assert_eq!(out[1], vec![Cell::Str("a".into()), Cell::Int(1)]);
        assert_eq!(out[2], vec![Cell::Str("b".into()), Cell::Int(1)]);
    }

    #[test]
    fn sort_nulls_first() {
        let rows = vec![vec![Cell::Int(5)], vec![Cell::Null], vec![Cell::Int(1)]];
        let out = sort_rows(
            rows,
            &[(Expr::Column(0), true)],
            JsonParserKind::Jackson,
            &mut m(),
            true,
        )
        .unwrap();
        assert_eq!(out[0][0], Cell::Null);
        assert_eq!(out[1][0], Cell::Int(1));
    }

    #[test]
    fn sum_mixed_int_float_is_float() {
        let rows = vec![vec![Cell::Int(1)], vec![Cell::Float(2.5)]];
        let aggs = vec![(AggFunc::Sum, Some(Expr::Column(0)))];
        let out = aggregate(rows, &[], &aggs, JsonParserKind::Jackson, &mut m(), true).unwrap();
        assert_eq!(out[0][0], Cell::Float(3.5));
    }

    #[test]
    fn sum_of_numeric_strings_coerces() {
        // JSON-extracted values arrive as strings; SUM must still work.
        let rows = vec![vec![Cell::Str("10".into())], vec![Cell::Str("5".into())]];
        let aggs = vec![(AggFunc::Sum, Some(Expr::Column(0)))];
        let out = aggregate(rows, &[], &aggs, JsonParserKind::Jackson, &mut m(), true).unwrap();
        assert_eq!(out[0][0], Cell::Float(15.0));
    }

    #[test]
    fn filter_and_limit_via_execute_plan() {
        // Build a plan over a fake provider.
        use crate::scan::ScanProvider;

        #[derive(Debug)]
        struct Fixed(Schema, Vec<Vec<Cell>>);
        impl ScanProvider for Fixed {
            fn schema(&self) -> &Schema {
                &self.0
            }
            fn scan(&self, _m: &mut ExecMetrics) -> crate::error::Result<Vec<Vec<Cell>>> {
                Ok(self.1.clone())
            }
            fn label(&self) -> String {
                "Fixed".into()
            }
        }
        let schema = Schema::new(vec![Field::new("v", ColumnType::Int64)]).unwrap();
        let rows: Vec<Vec<Cell>> = (0..10).map(|i| vec![Cell::Int(i)]).collect();
        let plan = LogicalPlan::Limit {
            n: 3,
            input: Box::new(LogicalPlan::Filter {
                predicate: Expr::Binary {
                    left: Box::new(Expr::Column(0)),
                    op: BinaryOp::GtEq,
                    right: Box::new(Expr::Literal(Cell::Int(4))),
                },
                input: Box::new(LogicalPlan::Scan {
                    provider: Box::new(Fixed(schema, rows)),
                }),
            }),
        };
        let out = execute_plan(&plan, JsonParserKind::Jackson, &mut m()).unwrap();
        assert_eq!(
            out,
            vec![vec![Cell::Int(4)], vec![Cell::Int(5)], vec![Cell::Int(6)]]
        );
    }

    #[test]
    fn exec_options_resolution() {
        assert_eq!(ExecOptions::serial().threads, 1);
        assert_eq!(ExecOptions::with_threads(0).threads, 1);
        assert_eq!(ExecOptions::with_threads(7).threads, 7);
        assert!(default_threads() >= 1);
    }

    /// The same multi-split plan at 1/2/4/8 threads: identical rows and
    /// identical absorbed counters, with pool gauges set only when threads
    /// were actually used.
    #[test]
    fn parallel_scan_filter_matches_serial_exactly() {
        let predicate = Expr::Binary {
            left: Box::new(Expr::Column(1)),
            op: BinaryOp::GtEq,
            right: Box::new(Expr::Literal(Cell::Int(13))),
        };
        let plan = LogicalPlan::Filter {
            predicate,
            input: Box::new(ten_split_plan(None)),
        };
        let mut serial_m = m();
        let serial = execute_plan_with(
            &plan,
            JsonParserKind::Jackson,
            &mut serial_m,
            ExecOptions::serial(),
        )
        .unwrap();
        assert_eq!(serial_m.threads_used, 0, "serial path never touches pool");
        for threads in [2, 4, 8] {
            let mut par_m = m();
            let parallel = execute_plan_with(
                &plan,
                JsonParserKind::Jackson,
                &mut par_m,
                ExecOptions::with_threads(threads),
            )
            .unwrap();
            assert_eq!(parallel, serial, "{threads} threads");
            assert_eq!(par_m.rows_scanned, serial_m.rows_scanned);
            assert_eq!(par_m.threads_used, threads as u64);
            assert_eq!(par_m.par_tasks, 10);
            assert!(par_m.task_skew >= 1.0);
        }
    }

    #[test]
    fn parallel_grouped_aggregate_matches_serial_exactly() {
        let plan = LogicalPlan::Aggregate {
            input: Box::new(ten_split_plan(None)),
            group_by: vec![Expr::Column(0)],
            aggs: vec![
                (AggFunc::Count, None),
                (AggFunc::Sum, Some(Expr::Column(1))),
                (AggFunc::Min, Some(Expr::Column(1))),
                (AggFunc::Max, Some(Expr::Column(1))),
                (AggFunc::Avg, Some(Expr::Column(1))),
            ],
            schema: Schema::new(vec![Field::new("g", ColumnType::Utf8)]).unwrap(),
        };
        let mut serial_m = m();
        let serial = execute_plan_with(
            &plan,
            JsonParserKind::Jackson,
            &mut serial_m,
            ExecOptions::serial(),
        )
        .unwrap();
        let mut par_m = m();
        let parallel = execute_plan_with(
            &plan,
            JsonParserKind::Jackson,
            &mut par_m,
            ExecOptions::with_threads(4),
        )
        .unwrap();
        assert_eq!(parallel, serial);
        assert_eq!(par_m.rows_scanned, serial_m.rows_scanned);
    }

    #[test]
    fn poisoned_split_propagates_error_with_split_index() {
        let plan = ten_split_plan(Some(7));
        let mut metrics = m();
        let err = execute_plan_with(
            &plan,
            JsonParserKind::Jackson,
            &mut metrics,
            ExecOptions::with_threads(4),
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("split 7"), "error must name the split: {msg}");
        assert!(msg.contains("corrupt split body"), "{msg}");
    }

    #[test]
    fn single_split_scan_stays_serial_even_with_many_threads() {
        let splits = vec![(0..5)
            .map(|i| vec![Cell::Str("g0".into()), Cell::Int(i)])
            .collect()];
        let plan = LogicalPlan::Scan {
            provider: Box::new(SplitFixed::new(splits)),
        };
        let mut metrics = m();
        let rows = execute_plan_with(
            &plan,
            JsonParserKind::Jackson,
            &mut metrics,
            ExecOptions::with_threads(8),
        )
        .unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(metrics.threads_used, 0, "single split must not use pool");
        assert_eq!(metrics.par_tasks, 0);
    }

    #[test]
    fn empty_table_stays_serial() {
        let plan = LogicalPlan::Scan {
            provider: Box::new(SplitFixed::new(Vec::new())),
        };
        let mut metrics = m();
        let rows = execute_plan_with(
            &plan,
            JsonParserKind::Jackson,
            &mut metrics,
            ExecOptions::with_threads(8),
        )
        .unwrap();
        assert!(rows.is_empty());
        assert_eq!(metrics.threads_used, 0);
    }

    fn jp(column: usize, path: &str) -> Expr {
        Expr::GetJsonObject {
            column,
            path: maxson_json::JsonPath::parse(path).unwrap(),
        }
    }

    /// 2 splits x 4 rows; col 0 is a JSON document, col 1 a raw int.
    fn json_split_plan() -> LogicalPlan {
        let splits: Vec<Vec<Vec<Cell>>> = (0..2)
            .map(|s| {
                (0..4)
                    .map(|i| {
                        let n = s * 4 + i;
                        vec![
                            Cell::from(format!(r#"{{"a": {n}, "b": "t{n}", "v": {}}}"#, n % 3)),
                            Cell::Int(n as i64),
                        ]
                    })
                    .collect()
            })
            .collect();
        LogicalPlan::Scan {
            provider: Box::new(SplitFixed::new(splits)),
        }
    }

    fn json_project(input: LogicalPlan, filter: Expr) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(LogicalPlan::Filter {
                predicate: filter,
                input: Box::new(input),
            }),
            exprs: vec![
                (jp(0, "$.a"), "a".into()),
                (jp(0, "$.b"), "b".into()),
                (jp(0, "$.v"), "v".into()),
            ],
            schema: Schema::new(vec![
                Field::new("a", ColumnType::Utf8),
                Field::new("b", ColumnType::Utf8),
                Field::new("v", ColumnType::Utf8),
            ])
            .unwrap(),
        }
    }

    /// Shared-parse must be invisible in the output (byte-identical rows,
    /// same parse_calls) while collapsing docs_parsed to one per row across
    /// the filter *and* the projection above it.
    #[test]
    fn shared_parse_pipeline_matches_naive_and_dedupes() {
        let filter = Expr::Binary {
            left: Box::new(jp(0, "$.v")),
            op: BinaryOp::Gt,
            right: Box::new(Expr::Literal(Cell::Int(0))),
        };
        let plan = json_project(json_split_plan(), filter);
        for parser in [
            JsonParserKind::Jackson,
            JsonParserKind::Mison,
            JsonParserKind::Tape,
        ] {
            let mut naive_m = m();
            let naive = execute_plan_with(
                &plan,
                parser,
                &mut naive_m,
                ExecOptions::serial().with_shared_parse(false),
            )
            .unwrap();
            let mut shared_m = m();
            let shared = execute_plan_with(
                &plan,
                parser,
                &mut shared_m,
                ExecOptions::serial().with_shared_parse(true),
            )
            .unwrap();
            assert_eq!(shared, naive, "{parser:?}");
            assert_eq!(naive.len(), 5, "rows with $.v in {{1,2}}");
            // 8 filter evals + 3 projected paths x 5 passing rows.
            assert_eq!(naive_m.parse_calls, 23);
            assert_eq!(shared_m.parse_calls, 23, "parse_calls must not change");
            assert_eq!(naive_m.docs_parsed, 23, "naive parses once per call");
            assert_eq!(shared_m.docs_parsed, 8, "shared parses once per row");
            // Parallel shared run: same rows, same thread-invariant counters.
            let mut par_m = m();
            let parallel = execute_plan_with(
                &plan,
                parser,
                &mut par_m,
                ExecOptions::with_threads(4).with_shared_parse(true),
            )
            .unwrap();
            assert_eq!(parallel, naive);
            assert_eq!(par_m.parse_calls, 23);
            assert_eq!(par_m.docs_parsed, 8);
        }
    }

    /// Rows rejected by a raw-column predicate must not parse at all:
    /// slots fill on first JSON access, which never happens for them.
    #[test]
    fn shared_parse_stays_lazy_for_filtered_rows() {
        let filter = Expr::Binary {
            left: Box::new(Expr::Column(1)),
            op: BinaryOp::GtEq,
            right: Box::new(Expr::Literal(Cell::Int(6))),
        };
        let plan = json_project(json_split_plan(), filter);
        let mut shared_m = m();
        let shared = execute_plan_with(
            &plan,
            JsonParserKind::Jackson,
            &mut shared_m,
            ExecOptions::serial().with_shared_parse(true),
        )
        .unwrap();
        assert_eq!(shared.len(), 2);
        assert_eq!(shared_m.parse_calls, 6, "3 paths x 2 passing rows");
        assert_eq!(shared_m.docs_parsed, 2, "skipped rows parse nothing");
    }

    /// Aggregation over JSON group keys and arguments shares the filter's
    /// parse too, and stays byte-identical to the naive path at any thread
    /// count.
    #[test]
    fn shared_parse_aggregate_matches_naive() {
        let filter = Expr::Binary {
            left: Box::new(jp(0, "$.v")),
            op: BinaryOp::GtEq,
            right: Box::new(Expr::Literal(Cell::Int(0))),
        };
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Filter {
                predicate: filter,
                input: Box::new(json_split_plan()),
            }),
            group_by: vec![jp(0, "$.v")],
            aggs: vec![(AggFunc::Count, None), (AggFunc::Sum, Some(jp(0, "$.a")))],
            schema: Schema::new(vec![Field::new("v", ColumnType::Utf8)]).unwrap(),
        };
        for parser in [
            JsonParserKind::Jackson,
            JsonParserKind::Mison,
            JsonParserKind::Tape,
        ] {
            let mut naive_m = m();
            let naive = execute_plan_with(
                &plan,
                parser,
                &mut naive_m,
                ExecOptions::serial().with_shared_parse(false),
            )
            .unwrap();
            for threads in [1, 4] {
                let mut shared_m = m();
                let shared = execute_plan_with(
                    &plan,
                    parser,
                    &mut shared_m,
                    ExecOptions::with_threads(threads).with_shared_parse(true),
                )
                .unwrap();
                assert_eq!(shared, naive, "{parser:?} at {threads} threads");
                // Filter + group key + SUM arg all served by one parse/row.
                assert_eq!(shared_m.parse_calls, naive_m.parse_calls);
                assert_eq!(shared_m.parse_calls, 24);
                assert_eq!(shared_m.docs_parsed, 8);
            }
            assert_eq!(naive_m.docs_parsed, 24);
        }
    }
}
