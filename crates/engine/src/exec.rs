//! Volcano-style (materialized) plan execution.

use std::collections::HashMap;

use maxson_storage::Cell;

use crate::error::{EngineError, Result};
use crate::expr::{truthy, Expr, JsonParserKind};
use crate::metrics::ExecMetrics;
use crate::plan::LogicalPlan;
use crate::sql::ast::AggFunc;

/// Execute a plan to completion, returning the output rows.
pub fn execute_plan(
    plan: &LogicalPlan,
    parser: JsonParserKind,
    metrics: &mut ExecMetrics,
) -> Result<Vec<Vec<Cell>>> {
    match plan {
        LogicalPlan::Scan { provider } => provider.scan(metrics),
        LogicalPlan::Filter { input, predicate } => {
            let rows = execute_plan(input, parser, metrics)?;
            let mut out = Vec::new();
            for row in rows {
                if truthy(&predicate.eval(&row, parser, metrics)?) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let rows = execute_plan(input, parser, metrics)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut projected = Vec::with_capacity(exprs.len());
                for (e, _) in exprs {
                    projected.push(e.eval(&row, parser, metrics)?);
                }
                out.push(projected);
            }
            Ok(out)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let rows = execute_plan(input, parser, metrics)?;
            aggregate(rows, group_by, aggs, parser, metrics)
        }
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
            ..
        } => {
            let left_rows = execute_plan(left, parser, metrics)?;
            let right_rows = execute_plan(right, parser, metrics)?;
            hash_join(left_rows, right_rows, left_key, right_key, parser, metrics)
        }
        LogicalPlan::Sort { input, keys } => {
            let rows = execute_plan(input, parser, metrics)?;
            sort_rows(rows, keys, parser, metrics)
        }
        LogicalPlan::Limit { input, n } => {
            let mut rows = execute_plan(input, parser, metrics)?;
            rows.truncate(*n);
            Ok(rows)
        }
        LogicalPlan::Distinct { input } => {
            let rows = execute_plan(input, parser, metrics)?;
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for row in rows {
                let key: String = row
                    .iter()
                    .map(Cell::key_string)
                    .collect::<Vec<_>>()
                    .join("\u{1}");
                if seen.insert(key) {
                    out.push(row);
                }
            }
            Ok(out)
        }
    }
}

/// Running state of one aggregate call.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    CountDistinct(std::collections::HashSet<String>),
    Sum {
        sum: f64,
        any: bool,
        all_int: bool,
        isum: i64,
    },
    Min(Option<Cell>),
    Max(Option<Cell>),
    Avg {
        sum: f64,
        n: i64,
    },
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::CountDistinct => AggState::CountDistinct(std::collections::HashSet::new()),
            AggFunc::Sum => AggState::Sum {
                sum: 0.0,
                any: false,
                all_int: true,
                isum: 0,
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, value: Option<&Cell>) {
        match self {
            AggState::Count(n) => {
                // COUNT(*) counts every row (value None); COUNT(expr) skips NULL.
                match value {
                    None => *n += 1,
                    Some(c) if !c.is_null() => *n += 1,
                    _ => {}
                }
            }
            AggState::CountDistinct(set) => {
                if let Some(c) = value {
                    if !c.is_null() {
                        set.insert(c.key_string());
                    }
                }
            }
            AggState::Sum {
                sum,
                any,
                all_int,
                isum,
            } => {
                if let Some(c) = value {
                    if let Some(f) = c.coerce_f64() {
                        *sum += f;
                        *any = true;
                        match c {
                            Cell::Int(i) => *isum = isum.wrapping_add(*i),
                            _ => *all_int = false,
                        }
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(c) = value {
                    if !c.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|m| c.sql_cmp(m) == Some(std::cmp::Ordering::Less))
                    {
                        *cur = Some(c.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(c) = value {
                    if !c.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|m| c.sql_cmp(m) == Some(std::cmp::Ordering::Greater))
                    {
                        *cur = Some(c.clone());
                    }
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(c) = value {
                    if let Some(f) = c.coerce_f64() {
                        *sum += f;
                        *n += 1;
                    }
                }
            }
        }
    }

    fn finish(self) -> Cell {
        match self {
            AggState::Count(n) => Cell::Int(n),
            AggState::CountDistinct(set) => Cell::Int(set.len() as i64),
            AggState::Sum {
                sum,
                any,
                all_int,
                isum,
            } => {
                if !any {
                    Cell::Null
                } else if all_int {
                    Cell::Int(isum)
                } else {
                    Cell::Float(sum)
                }
            }
            AggState::Min(c) | AggState::Max(c) => c.unwrap_or(Cell::Null),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Cell::Null
                } else {
                    Cell::Float(sum / n as f64)
                }
            }
        }
    }
}

fn aggregate(
    rows: Vec<Vec<Cell>>,
    group_by: &[Expr],
    aggs: &[(AggFunc, Option<Expr>)],
    parser: JsonParserKind,
    metrics: &mut ExecMetrics,
) -> Result<Vec<Vec<Cell>>> {
    // Global aggregate (no GROUP BY): exactly one output row.
    if group_by.is_empty() {
        let mut states: Vec<AggState> = aggs.iter().map(|(f, _)| AggState::new(*f)).collect();
        for row in &rows {
            for (state, (_, arg)) in states.iter_mut().zip(aggs) {
                match arg {
                    None => state.update(None),
                    Some(e) => {
                        let v = e.eval(row, parser, metrics)?;
                        state.update(Some(&v));
                    }
                }
            }
        }
        return Ok(vec![states.into_iter().map(AggState::finish).collect()]);
    }
    // Hash grouping; remember first-seen order for deterministic output.
    let mut groups: HashMap<String, (Vec<Cell>, Vec<AggState>)> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for row in &rows {
        let mut keys = Vec::with_capacity(group_by.len());
        let mut key_str = String::new();
        for g in group_by {
            let k = g.eval(row, parser, metrics)?;
            key_str.push_str(&k.key_string());
            key_str.push('\u{1}');
            keys.push(k);
        }
        let entry = groups.entry(key_str.clone()).or_insert_with(|| {
            order.push(key_str.clone());
            (keys, aggs.iter().map(|(f, _)| AggState::new(*f)).collect())
        });
        for (state, (_, arg)) in entry.1.iter_mut().zip(aggs) {
            match arg {
                None => state.update(None),
                Some(e) => {
                    let v = e.eval(row, parser, metrics)?;
                    state.update(Some(&v));
                }
            }
        }
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let (keys, states) = groups
            .remove(&key)
            .expect("group key recorded in order list");
        let mut row = keys;
        row.extend(states.into_iter().map(AggState::finish));
        out.push(row);
    }
    Ok(out)
}

fn hash_join(
    left_rows: Vec<Vec<Cell>>,
    right_rows: Vec<Vec<Cell>>,
    left_key: &Expr,
    right_key: &Expr,
    parser: JsonParserKind,
    metrics: &mut ExecMetrics,
) -> Result<Vec<Vec<Cell>>> {
    // Build on the right side.
    let mut table: HashMap<String, Vec<usize>> = HashMap::new();
    let mut right_keys = Vec::with_capacity(right_rows.len());
    for (i, row) in right_rows.iter().enumerate() {
        let k = right_key.eval(row, parser, metrics)?;
        if !k.is_null() {
            table.entry(k.key_string()).or_default().push(i);
        }
        right_keys.push(k);
    }
    let mut out = Vec::new();
    for lrow in &left_rows {
        let k = left_key.eval(lrow, parser, metrics)?;
        if k.is_null() {
            continue;
        }
        if let Some(matches) = table.get(&k.key_string()) {
            for &ri in matches {
                let mut combined = lrow.clone();
                combined.extend(right_rows[ri].iter().cloned());
                out.push(combined);
            }
        }
    }
    Ok(out)
}

fn sort_rows(
    rows: Vec<Vec<Cell>>,
    keys: &[(Expr, bool)],
    parser: JsonParserKind,
    metrics: &mut ExecMetrics,
) -> Result<Vec<Vec<Cell>>> {
    // Precompute sort keys once per row (get_json_object keys are costly).
    let mut keyed: Vec<(Vec<Cell>, Vec<Cell>)> = Vec::with_capacity(rows.len());
    for row in rows {
        let mut ks = Vec::with_capacity(keys.len());
        for (e, _) in keys {
            ks.push(e.eval(&row, parser, metrics)?);
        }
        keyed.push((ks, row));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for ((a, b), (_, asc)) in ka.iter().zip(kb).zip(keys) {
            let ord = a.total_cmp(b);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(keyed.into_iter().map(|(_, row)| row).collect())
}

/// Evaluate a standalone expression list over rows (helper for tests).
pub fn project_rows(
    rows: &[Vec<Cell>],
    exprs: &[Expr],
    parser: JsonParserKind,
    metrics: &mut ExecMetrics,
) -> Result<Vec<Vec<Cell>>> {
    rows.iter()
        .map(|row| {
            exprs
                .iter()
                .map(|e| e.eval(row, parser, metrics))
                .collect::<Result<Vec<Cell>>>()
        })
        .collect::<Result<Vec<_>>>()
        .map_err(|e| EngineError::exec(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::BinaryOp;

    fn rows3() -> Vec<Vec<Cell>> {
        vec![
            vec![Cell::Str("a".into()), Cell::Int(1)],
            vec![Cell::Str("b".into()), Cell::Int(2)],
            vec![Cell::Str("a".into()), Cell::Int(3)],
            vec![Cell::Str("c".into()), Cell::Null],
        ]
    }

    fn m() -> ExecMetrics {
        ExecMetrics::default()
    }

    #[test]
    fn global_aggregates() {
        let aggs = vec![
            (AggFunc::Count, None),
            (AggFunc::Count, Some(Expr::Column(1))),
            (AggFunc::Sum, Some(Expr::Column(1))),
            (AggFunc::Min, Some(Expr::Column(1))),
            (AggFunc::Max, Some(Expr::Column(1))),
            (AggFunc::Avg, Some(Expr::Column(1))),
        ];
        let out = aggregate(rows3(), &[], &aggs, JsonParserKind::Jackson, &mut m()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Cell::Int(4)); // COUNT(*)
        assert_eq!(out[0][1], Cell::Int(3)); // COUNT(v) skips null
        assert_eq!(out[0][2], Cell::Int(6)); // SUM
        assert_eq!(out[0][3], Cell::Int(1)); // MIN
        assert_eq!(out[0][4], Cell::Int(3)); // MAX
        assert_eq!(out[0][5], Cell::Float(2.0)); // AVG
    }

    #[test]
    fn empty_input_aggregates() {
        let aggs = vec![
            (AggFunc::Count, None),
            (AggFunc::Sum, Some(Expr::Column(0))),
            (AggFunc::Avg, Some(Expr::Column(0))),
            (AggFunc::Min, Some(Expr::Column(0))),
        ];
        let out = aggregate(vec![], &[], &aggs, JsonParserKind::Jackson, &mut m()).unwrap();
        assert_eq!(
            out[0],
            vec![Cell::Int(0), Cell::Null, Cell::Null, Cell::Null]
        );
    }

    #[test]
    fn grouped_aggregates_preserve_first_seen_order() {
        let aggs = vec![
            (AggFunc::Count, None),
            (AggFunc::Sum, Some(Expr::Column(1))),
        ];
        let out = aggregate(
            rows3(),
            &[Expr::Column(0)],
            &aggs,
            JsonParserKind::Jackson,
            &mut m(),
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(
            out[0],
            vec![Cell::Str("a".into()), Cell::Int(2), Cell::Int(4)]
        );
        assert_eq!(
            out[1],
            vec![Cell::Str("b".into()), Cell::Int(1), Cell::Int(2)]
        );
        assert_eq!(
            out[2],
            vec![Cell::Str("c".into()), Cell::Int(1), Cell::Null]
        );
    }

    #[test]
    fn join_matches_and_skips_nulls() {
        let left = vec![
            vec![Cell::Int(1), Cell::Str("l1".into())],
            vec![Cell::Int(2), Cell::Str("l2".into())],
            vec![Cell::Null, Cell::Str("ln".into())],
        ];
        let right = vec![
            vec![Cell::Int(2), Cell::Str("r2".into())],
            vec![Cell::Int(2), Cell::Str("r2b".into())],
            vec![Cell::Int(3), Cell::Str("r3".into())],
            vec![Cell::Null, Cell::Str("rn".into())],
        ];
        let out = hash_join(
            left,
            right,
            &Expr::Column(0),
            &Expr::Column(0),
            JsonParserKind::Jackson,
            &mut m(),
        )
        .unwrap();
        // Only key 2 matches, twice.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 4);
        assert_eq!(out[0][1], Cell::Str("l2".into()));
        assert_eq!(out[1][3], Cell::Str("r2b".into()));
    }

    #[test]
    fn join_keys_compare_numerically_across_types() {
        let left = vec![vec![Cell::Int(2)]];
        let right = vec![vec![Cell::Float(2.0)]];
        let out = hash_join(
            left,
            right,
            &Expr::Column(0),
            &Expr::Column(0),
            JsonParserKind::Jackson,
            &mut m(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn sort_multi_key_with_direction() {
        let rows = vec![
            vec![Cell::Str("b".into()), Cell::Int(1)],
            vec![Cell::Str("a".into()), Cell::Int(2)],
            vec![Cell::Str("a".into()), Cell::Int(1)],
        ];
        let keys = vec![(Expr::Column(0), true), (Expr::Column(1), false)];
        let out = sort_rows(rows, &keys, JsonParserKind::Jackson, &mut m()).unwrap();
        assert_eq!(out[0], vec![Cell::Str("a".into()), Cell::Int(2)]);
        assert_eq!(out[1], vec![Cell::Str("a".into()), Cell::Int(1)]);
        assert_eq!(out[2], vec![Cell::Str("b".into()), Cell::Int(1)]);
    }

    #[test]
    fn sort_nulls_first() {
        let rows = vec![vec![Cell::Int(5)], vec![Cell::Null], vec![Cell::Int(1)]];
        let out = sort_rows(
            rows,
            &[(Expr::Column(0), true)],
            JsonParserKind::Jackson,
            &mut m(),
        )
        .unwrap();
        assert_eq!(out[0][0], Cell::Null);
        assert_eq!(out[1][0], Cell::Int(1));
    }

    #[test]
    fn sum_mixed_int_float_is_float() {
        let rows = vec![vec![Cell::Int(1)], vec![Cell::Float(2.5)]];
        let aggs = vec![(AggFunc::Sum, Some(Expr::Column(0)))];
        let out = aggregate(rows, &[], &aggs, JsonParserKind::Jackson, &mut m()).unwrap();
        assert_eq!(out[0][0], Cell::Float(3.5));
    }

    #[test]
    fn sum_of_numeric_strings_coerces() {
        // JSON-extracted values arrive as strings; SUM must still work.
        let rows = vec![vec![Cell::Str("10".into())], vec![Cell::Str("5".into())]];
        let aggs = vec![(AggFunc::Sum, Some(Expr::Column(0)))];
        let out = aggregate(rows, &[], &aggs, JsonParserKind::Jackson, &mut m()).unwrap();
        assert_eq!(out[0][0], Cell::Float(15.0));
    }

    #[test]
    fn filter_and_limit_via_execute_plan() {
        // Build a plan over a fake provider.
        use crate::scan::ScanProvider;
        use maxson_storage::{ColumnType, Field, Schema};

        #[derive(Debug)]
        struct Fixed(Schema, Vec<Vec<Cell>>);
        impl ScanProvider for Fixed {
            fn schema(&self) -> &Schema {
                &self.0
            }
            fn scan(&self, _m: &mut ExecMetrics) -> crate::error::Result<Vec<Vec<Cell>>> {
                Ok(self.1.clone())
            }
            fn label(&self) -> String {
                "Fixed".into()
            }
        }
        let schema = Schema::new(vec![Field::new("v", ColumnType::Int64)]).unwrap();
        let rows: Vec<Vec<Cell>> = (0..10).map(|i| vec![Cell::Int(i)]).collect();
        let plan = LogicalPlan::Limit {
            n: 3,
            input: Box::new(LogicalPlan::Filter {
                predicate: Expr::Binary {
                    left: Box::new(Expr::Column(0)),
                    op: BinaryOp::GtEq,
                    right: Box::new(Expr::Literal(Cell::Int(4))),
                },
                input: Box::new(LogicalPlan::Scan {
                    provider: Box::new(Fixed(schema, rows)),
                }),
            }),
        };
        let out = execute_plan(&plan, JsonParserKind::Jackson, &mut m()).unwrap();
        assert_eq!(
            out,
            vec![vec![Cell::Int(4)], vec![Cell::Int(5)], vec![Cell::Int(6)]]
        );
    }
}
