//! SQL front end: tokenizer, AST, and parser.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{AggFunc, BinaryOp, OrderItem, SelectItem, SelectStatement, SqlExpr, TableRef};
pub use lexer::{tokenize, Token, TokenKind};
pub use parser::parse_select;
