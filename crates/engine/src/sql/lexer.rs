//! SQL tokenizer.

use crate::error::{EngineError, Result};

/// Token kinds produced by [`tokenize`].
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword or identifier (uppercased keywords are matched by the
    /// parser; the original text is preserved).
    Ident(String),
    /// Single-quoted string literal (quotes stripped, '' unescaped).
    StringLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// One of `( ) , . * = < > <= >= <> != + - / %`
    Symbol(&'static str),
}

/// One token plus its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Character offset in the SQL text.
    pub offset: usize,
}

/// Tokenize SQL text. Comments (`-- ...`) are skipped.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(EngineError::Parse {
                                message: "unterminated string literal".into(),
                                offset: start,
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Copy one UTF-8 scalar.
                            let rest = &sql[i..];
                            let c = rest.chars().next().expect("in-bounds char");
                            s.push(c);
                            i += c.len_utf8();
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::StringLit(s),
                    offset: start,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &sql[start..i];
                let kind = if is_float {
                    TokenKind::FloatLit(text.parse().map_err(|_| EngineError::Parse {
                        message: format!("bad float literal '{text}'"),
                        offset: start,
                    })?)
                } else {
                    TokenKind::IntLit(text.parse().map_err(|_| EngineError::Parse {
                        message: format!("bad int literal '{text}'"),
                        offset: start,
                    })?)
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'`' => {
                let start = i;
                let quoted = b == b'`';
                if quoted {
                    i += 1;
                    let qs = i;
                    while i < bytes.len() && bytes[i] != b'`' {
                        i += 1;
                    }
                    if i >= bytes.len() {
                        return Err(EngineError::Parse {
                            message: "unterminated quoted identifier".into(),
                            offset: start,
                        });
                    }
                    tokens.push(Token {
                        kind: TokenKind::Ident(sql[qs..i].to_string()),
                        offset: start,
                    });
                    i += 1;
                } else {
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Ident(sql[start..i].to_string()),
                        offset: start,
                    });
                }
            }
            _ => {
                let two: Option<&'static str> = match (b, bytes.get(i + 1)) {
                    (b'<', Some(b'=')) => Some("<="),
                    (b'>', Some(b'=')) => Some(">="),
                    (b'<', Some(b'>')) => Some("<>"),
                    (b'!', Some(b'=')) => Some("<>"),
                    _ => None,
                };
                if let Some(sym) = two {
                    tokens.push(Token {
                        kind: TokenKind::Symbol(sym),
                        offset: i,
                    });
                    i += 2;
                    continue;
                }
                let one: &'static str = match b {
                    b'(' => "(",
                    b')' => ")",
                    b',' => ",",
                    b'.' => ".",
                    b'*' => "*",
                    b'=' => "=",
                    b'<' => "<",
                    b'>' => ">",
                    b'+' => "+",
                    b'-' => "-",
                    b'/' => "/",
                    b'%' => "%",
                    _ => {
                        return Err(EngineError::Parse {
                            message: format!("unexpected character '{}'", b as char),
                            offset: i,
                        })
                    }
                };
                tokens.push(Token {
                    kind: TokenKind::Symbol(one),
                    offset: i,
                });
                i += 1;
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("select a, 1 from t"),
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Symbol(","),
                TokenKind::IntLit(1),
                TokenKind::Ident("from".into()),
                TokenKind::Ident("t".into()),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'it''s' '$.a.b'"),
            vec![
                TokenKind::StringLit("it's".into()),
                TokenKind::StringLit("$.a.b".into()),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 2.5 1e3 7.25e-1"),
            vec![
                TokenKind::IntLit(42),
                TokenKind::FloatLit(2.5),
                TokenKind::FloatLit(1000.0),
                TokenKind::FloatLit(0.725),
            ]
        );
    }

    #[test]
    fn operators_and_comments() {
        assert_eq!(
            kinds("a >= 1 -- trailing\n<> != <"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Symbol(">="),
                TokenKind::IntLit(1),
                TokenKind::Symbol("<>"),
                TokenKind::Symbol("<>"),
                TokenKind::Symbol("<"),
            ]
        );
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(
            kinds("`weird name`"),
            vec![TokenKind::Ident("weird name".into())]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("`unterminated").is_err());
        assert!(tokenize("a ~ b").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let toks = tokenize("ab cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }
}
