//! SQL abstract syntax tree.

use maxson_storage::Cell;

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// `SELECT DISTINCT` deduplicates the output rows.
    pub distinct: bool,
    /// Items of the SELECT list.
    pub items: Vec<SelectItem>,
    /// FROM clause (a table, optionally self-joined).
    pub from: TableRef,
    /// Optional INNER JOIN: `(table, on_left, on_right)`.
    pub join: Option<JoinClause>,
    /// WHERE predicate.
    pub where_clause: Option<SqlExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<SqlExpr>,
    /// HAVING predicate (post-aggregate filter).
    pub having: Option<SqlExpr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

/// One item of a SELECT list: expression plus optional alias, or `*`.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — every column of the input.
    Wildcard,
    /// `expr [AS alias]`.
    Expr {
        /// The expression.
        expr: SqlExpr,
        /// Explicit alias, if given.
        alias: Option<String>,
    },
}

/// A table reference `db.table [alias]` (db defaults to `default`).
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Database name.
    pub database: String,
    /// Table name.
    pub table: String,
    /// Optional alias used to qualify columns.
    pub alias: Option<String>,
}

/// An INNER JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The joined table.
    pub table: TableRef,
    /// Left side of the equi-join condition.
    pub on_left: SqlExpr,
    /// Right side of the equi-join condition.
    pub on_right: SqlExpr,
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort key expression.
    pub expr: SqlExpr,
    /// `true` for ascending (the default).
    pub asc: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(expr)` / `COUNT(*)`
    Count,
    /// `COUNT(DISTINCT expr)`
    CountDistinct,
    /// `SUM(expr)`
    Sum,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
    /// `AVG(expr)`
    Avg,
}

impl AggFunc {
    /// Parse a function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            // COUNT(DISTINCT x) is recognized by the parser, not by name.
            "sum" => Some(AggFunc::Sum),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "avg" => Some(AggFunc::Avg),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::CountDistinct => "count_distinct",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// `length(s)` — character count.
    Length,
    /// `lower(s)`.
    Lower,
    /// `upper(s)`.
    Upper,
    /// `concat(a, b, ...)` — NULL if any argument is NULL (Hive semantics).
    Concat,
    /// `coalesce(a, b, ...)` — first non-NULL argument.
    Coalesce,
    /// `substr(s, start [, len])` — 1-based, like Hive.
    Substr,
    /// `abs(x)`.
    Abs,
    /// `round(x [, digits])`.
    Round,
}

impl ScalarFunc {
    /// Parse a function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name.to_ascii_lowercase().as_str() {
            "length" => ScalarFunc::Length,
            "lower" => ScalarFunc::Lower,
            "upper" => ScalarFunc::Upper,
            "concat" => ScalarFunc::Concat,
            "coalesce" => ScalarFunc::Coalesce,
            "substr" | "substring" => ScalarFunc::Substr,
            "abs" => ScalarFunc::Abs,
            "round" => ScalarFunc::Round,
            _ => return None,
        })
    }

    /// Valid argument-count range.
    pub fn arity(self) -> (usize, usize) {
        match self {
            ScalarFunc::Length | ScalarFunc::Lower | ScalarFunc::Upper | ScalarFunc::Abs => (1, 1),
            ScalarFunc::Concat | ScalarFunc::Coalesce => (1, usize::MAX),
            ScalarFunc::Substr => (2, 3),
            ScalarFunc::Round => (1, 2),
        }
    }
}

/// An expression as parsed from SQL (names unresolved).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Column reference, optionally qualified: `[alias.]name`.
    Column {
        /// Qualifier (table alias), if present.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal cell.
    Literal(Cell),
    /// `get_json_object(column_expr, 'jsonpath')`.
    GetJsonObject {
        /// The JSON string column argument.
        column: Box<SqlExpr>,
        /// JSONPath text as written.
        path: String,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<SqlExpr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<SqlExpr>,
    },
    /// `NOT expr`.
    Not(Box<SqlExpr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<SqlExpr>,
        /// `true` for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr BETWEEN low AND high` (inclusive).
    Between {
        /// The tested expression.
        expr: Box<SqlExpr>,
        /// Lower bound.
        low: Box<SqlExpr>,
        /// Upper bound.
        high: Box<SqlExpr>,
    },
    /// Aggregate call. `COUNT(*)` has `arg == None`.
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// Argument (None = `*`).
        arg: Option<Box<SqlExpr>>,
    },
    /// Unary minus.
    Neg(Box<SqlExpr>),
    /// `expr [NOT] IN (literal, ...)`.
    InList {
        /// The tested expression.
        expr: Box<SqlExpr>,
        /// List members.
        items: Vec<SqlExpr>,
        /// `true` for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'` with `%` and `_` wildcards.
    Like {
        /// The tested expression.
        expr: Box<SqlExpr>,
        /// The pattern text.
        pattern: String,
        /// `true` for `NOT LIKE`.
        negated: bool,
    },
    /// A built-in scalar function call.
    Function {
        /// Which function.
        func: ScalarFunc,
        /// Arguments in order.
        args: Vec<SqlExpr>,
    },
}

impl SqlExpr {
    /// Walk the tree, calling `f` on every node (pre-order).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a SqlExpr)) {
        f(self);
        match self {
            SqlExpr::GetJsonObject { column, .. } => column.walk(f),
            SqlExpr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            SqlExpr::Not(e) | SqlExpr::Neg(e) => e.walk(f),
            SqlExpr::IsNull { expr, .. } => expr.walk(f),
            SqlExpr::Between { expr, low, high } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            SqlExpr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.walk(f);
                }
            }
            SqlExpr::InList { expr, items, .. } => {
                expr.walk(f);
                for i in items {
                    i.walk(f);
                }
            }
            SqlExpr::Like { expr, .. } => expr.walk(f),
            SqlExpr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            SqlExpr::Column { .. } | SqlExpr::Literal(_) => {}
        }
    }

    /// `true` if the subtree contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, SqlExpr::Aggregate { .. }) {
                found = true;
            }
        });
        found
    }

    /// Collect the distinct `get_json_object` calls as
    /// `(column_name, path_text)`, in first-seen order. Repeated calls on
    /// the same column/path are one extraction site — the unit both the
    /// Maxson cache and shared-parse execution reason about — so they are
    /// reported once. Only direct column arguments are reported (the form
    /// the paper's workload uses).
    pub fn json_path_calls(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::new();
        self.walk(&mut |e| {
            if let SqlExpr::GetJsonObject { column, path } = e {
                if let SqlExpr::Column { name, .. } = column.as_ref() {
                    if !out.iter().any(|(c, p)| c == name && p == path) {
                        out.push((name.clone(), path.clone()));
                    }
                }
            }
        });
        out
    }

    /// A default output name for an unaliased select item (Hive-style).
    pub fn default_name(&self, position: usize) -> String {
        match self {
            SqlExpr::Column { name, .. } => name.clone(),
            SqlExpr::Aggregate { func, .. } => format!("{}_{position}", func.name()),
            _ => format!("_c{position}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_visits_all_nodes() {
        let e = SqlExpr::Binary {
            left: Box::new(SqlExpr::Column {
                qualifier: None,
                name: "a".into(),
            }),
            op: BinaryOp::Add,
            right: Box::new(SqlExpr::Not(Box::new(SqlExpr::Literal(Cell::Bool(true))))),
        };
        let mut n = 0;
        e.walk(&mut |_| n += 1);
        assert_eq!(n, 4);
    }

    #[test]
    fn json_path_calls_collected() {
        let e = SqlExpr::Binary {
            left: Box::new(SqlExpr::GetJsonObject {
                column: Box::new(SqlExpr::Column {
                    qualifier: None,
                    name: "logs".into(),
                }),
                path: "$.id".into(),
            }),
            op: BinaryOp::Gt,
            right: Box::new(SqlExpr::Literal(Cell::Int(10))),
        };
        assert_eq!(e.json_path_calls(), vec![("logs".into(), "$.id".into())]);
    }

    #[test]
    fn json_path_calls_dedupe_repeated_sites() {
        let call = |name: &str, path: &str| SqlExpr::GetJsonObject {
            column: Box::new(SqlExpr::Column {
                qualifier: None,
                name: name.into(),
            }),
            path: path.into(),
        };
        // `$.id` referenced twice on the same column is one extraction site;
        // the same path on another column is a different one.
        let e = SqlExpr::Binary {
            left: Box::new(SqlExpr::Binary {
                left: Box::new(call("logs", "$.id")),
                op: BinaryOp::Add,
                right: Box::new(call("logs", "$.id")),
            }),
            op: BinaryOp::Add,
            right: Box::new(call("events", "$.id")),
        };
        assert_eq!(
            e.json_path_calls(),
            vec![
                ("logs".into(), "$.id".into()),
                ("events".into(), "$.id".into()),
            ]
        );
    }

    #[test]
    fn aggregate_detection() {
        let agg = SqlExpr::Aggregate {
            func: AggFunc::Count,
            arg: None,
        };
        assert!(agg.contains_aggregate());
        let plain = SqlExpr::Literal(Cell::Int(1));
        assert!(!plain.contains_aggregate());
    }

    #[test]
    fn agg_func_names() {
        assert_eq!(AggFunc::from_name("COUNT"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("avg"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::from_name("nope"), None);
    }
}
