//! Recursive-descent SQL parser for the warehouse query subset.

use maxson_storage::Cell;

use crate::error::{EngineError, Result};
use crate::sql::ast::{
    AggFunc, BinaryOp, JoinClause, OrderItem, ScalarFunc, SelectItem, SelectStatement, SqlExpr,
    TableRef,
};
use crate::sql::lexer::{tokenize, Token, TokenKind};

/// Parse a single `SELECT` statement.
pub fn parse_select(sql: &str) -> Result<SelectStatement> {
    let tokens = tokenize(sql)?;
    let mut p = SqlParser { tokens, pos: 0 };
    let stmt = p.select()?;
    if p.pos < p.tokens.len() {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(stmt)
}

struct SqlParser {
    tokens: Vec<Token>,
    pos: usize,
}

impl SqlParser {
    fn err(&self, message: impl Into<String>) -> EngineError {
        EngineError::Parse {
            message: message.into(),
            offset: self.tokens.get(self.pos).map_or(0, |t| t.offset),
        }
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn next(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume a keyword (case-insensitive identifier) if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(TokenKind::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if let Some(TokenKind::Symbol(s)) = self.peek() {
            if *s == sym {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_sym(&mut self, sym: &str) -> Result<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{sym}'")))
        }
    }

    /// `true` when the next identifier equals one of the reserved words that
    /// terminate an expression list.
    fn at_clause_boundary(&self) -> bool {
        match self.peek() {
            Some(TokenKind::Ident(s)) => matches!(
                s.to_ascii_lowercase().as_str(),
                "from"
                    | "where"
                    | "group"
                    | "order"
                    | "limit"
                    | "join"
                    | "on"
                    | "as"
                    | "and"
                    | "or"
                    | "asc"
                    | "desc"
                    | "inner"
                    | "having"
                    | "in"
                    | "like"
                    | "not"
                    | "between"
                    | "is"
            ),
            _ => false,
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(TokenKind::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn select(&mut self) -> Result<SelectStatement> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = Vec::new();
        loop {
            if self.eat_sym("*") {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else if !self.at_clause_boundary() {
                    // Bare alias: `expr name`.
                    match self.peek() {
                        Some(TokenKind::Ident(_)) => Some(self.ident()?),
                        _ => None,
                    }
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_kw("from")?;
        let from = self.table_ref()?;
        let join = if self.eat_kw("join") || (self.eat_kw("inner") && self.eat_kw("join")) {
            let table = self.table_ref()?;
            self.expect_kw("on")?;
            // Parse at additive precedence so the `=` separating the two
            // join keys is not swallowed by the comparison rule.
            let on_left = self.additive()?;
            self.expect_sym("=")?;
            let on_right = self.additive()?;
            Some(JoinClause {
                table,
                on_left,
                on_right,
            })
        } else {
            None
        };
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push(OrderItem { expr, asc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(TokenKind::IntLit(n)) if n >= 0 => Some(n as usize),
                _ => return Err(self.err("expected non-negative integer after LIMIT")),
            }
        } else {
            None
        };
        Ok(SelectStatement {
            distinct,
            items,
            from,
            join,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let first = self.ident()?;
        let (database, table) = if self.eat_sym(".") {
            (first, self.ident()?)
        } else {
            ("default".to_string(), first)
        };
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if !self.at_clause_boundary() {
            match self.peek() {
                Some(TokenKind::Ident(_)) => Some(self.ident()?),
                _ => None,
            }
        } else {
            None
        };
        Ok(TableRef {
            database,
            table,
            alias,
        })
    }

    // Expression precedence: OR < AND < NOT < comparison/BETWEEN/IS < add < mul < unary.
    fn expr(&mut self) -> Result<SqlExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = SqlExpr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = SqlExpr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SqlExpr> {
        if self.eat_kw("not") {
            Ok(SqlExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<SqlExpr> {
        let left = self.additive()?;
        // `NOT IN` / `NOT LIKE` (prefix NOT of a whole expression is
        // handled one level up in not_expr).
        let negated_postfix = {
            let save = self.pos;
            if self.eat_kw("not") {
                if matches!(self.peek(), Some(TokenKind::Ident(s))
                    if s.eq_ignore_ascii_case("in") || s.eq_ignore_ascii_case("like"))
                {
                    true
                } else {
                    self.pos = save;
                    false
                }
            } else {
                false
            }
        };
        if self.eat_kw("in") {
            self.expect_sym("(")?;
            let mut items = Vec::new();
            loop {
                items.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(SqlExpr::InList {
                expr: Box::new(left),
                items,
                negated: negated_postfix,
            });
        }
        if self.eat_kw("like") {
            let pattern = match self.next() {
                Some(TokenKind::StringLit(s)) => s,
                _ => return Err(self.err("LIKE requires a string pattern")),
            };
            return Ok(SqlExpr::Like {
                expr: Box::new(left),
                pattern,
                negated: negated_postfix,
            });
        }
        if negated_postfix {
            return Err(self.err("expected IN or LIKE after NOT"));
        }
        if self.eat_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(SqlExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
            });
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(SqlExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let op = match self.peek() {
            Some(TokenKind::Symbol("=")) => Some(BinaryOp::Eq),
            Some(TokenKind::Symbol("<>")) => Some(BinaryOp::NotEq),
            Some(TokenKind::Symbol("<")) => Some(BinaryOp::Lt),
            Some(TokenKind::Symbol("<=")) => Some(BinaryOp::LtEq),
            Some(TokenKind::Symbol(">")) => Some(BinaryOp::Gt),
            Some(TokenKind::Symbol(">=")) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(SqlExpr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<SqlExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Symbol("+")) => BinaryOp::Add,
                Some(TokenKind::Symbol("-")) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = SqlExpr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<SqlExpr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Symbol("*")) => BinaryOp::Mul,
                Some(TokenKind::Symbol("/")) => BinaryOp::Div,
                Some(TokenKind::Symbol("%")) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = SqlExpr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<SqlExpr> {
        if self.eat_sym("-") {
            return Ok(SqlExpr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<SqlExpr> {
        match self.next() {
            Some(TokenKind::IntLit(n)) => Ok(SqlExpr::Literal(Cell::Int(n))),
            Some(TokenKind::FloatLit(f)) => Ok(SqlExpr::Literal(Cell::Float(f))),
            Some(TokenKind::StringLit(s)) => Ok(SqlExpr::Literal(Cell::from(s))),
            Some(TokenKind::Symbol("(")) => {
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(TokenKind::Ident(name)) => {
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "true" => return Ok(SqlExpr::Literal(Cell::Bool(true))),
                    "false" => return Ok(SqlExpr::Literal(Cell::Bool(false))),
                    "null" => return Ok(SqlExpr::Literal(Cell::Null)),
                    _ => {}
                }
                if self.eat_sym("(") {
                    // Function call.
                    if lower == "get_json_object" {
                        let column = self.expr()?;
                        self.expect_sym(",")?;
                        let path = match self.next() {
                            Some(TokenKind::StringLit(s)) => s,
                            _ => return Err(self.err("get_json_object requires a string JSONPath")),
                        };
                        self.expect_sym(")")?;
                        return Ok(SqlExpr::GetJsonObject {
                            column: Box::new(column),
                            path,
                        });
                    }
                    if let Some(func) = AggFunc::from_name(&lower) {
                        let (func, arg) = if self.eat_sym("*") {
                            (func, None)
                        } else if func == AggFunc::Count && self.eat_kw("distinct") {
                            (AggFunc::CountDistinct, Some(Box::new(self.expr()?)))
                        } else {
                            (func, Some(Box::new(self.expr()?)))
                        };
                        self.expect_sym(")")?;
                        return Ok(SqlExpr::Aggregate { func, arg });
                    }
                    if let Some(func) = ScalarFunc::from_name(&lower) {
                        let mut args = Vec::new();
                        if !self.eat_sym(")") {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat_sym(",") {
                                    break;
                                }
                            }
                            self.expect_sym(")")?;
                        }
                        let (min, max) = func.arity();
                        if args.len() < min || args.len() > max {
                            return Err(self.err(format!(
                                "wrong argument count for {name}: got {}",
                                args.len()
                            )));
                        }
                        return Ok(SqlExpr::Function { func, args });
                    }
                    return Err(self.err(format!("unknown function '{name}'")));
                }
                if self.eat_sym(".") {
                    let column = self.ident()?;
                    return Ok(SqlExpr::Column {
                        qualifier: Some(name),
                        name: column,
                    });
                }
                Ok(SqlExpr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(format!("unexpected token {other:?} in expression")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig1_query_parses() {
        let sql = "select mall_id, get_json_object(sale_logs, '$.item_id') as item_id, \
                   get_json_object(sale_logs, '$.turnover') as turnover \
                   from mydb.T where date between '20190101' and '20190103' \
                   order by get_json_object(sale_logs, '$.turnover') limit 1";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.items.len(), 3);
        assert_eq!(stmt.from.database, "mydb");
        assert_eq!(stmt.from.table, "T");
        assert!(matches!(stmt.where_clause, Some(SqlExpr::Between { .. })));
        assert_eq!(stmt.order_by.len(), 1);
        assert_eq!(stmt.limit, Some(1));
    }

    #[test]
    fn fig8_query_parses() {
        let sql = "select non_json_column0, non_json_column1, \
                   get_json_object(json_column0, '$.id') as json_column0_id, \
                   get_json_object(json_column0, '$.url') as json_column0_url \
                   from T where get_json_object(json_column0, '$.id') > 10000";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.from.database, "default");
        let w = stmt.where_clause.unwrap();
        assert_eq!(
            w.json_path_calls(),
            vec![("json_column0".to_string(), "$.id".to_string())]
        );
    }

    #[test]
    fn group_by_and_aggregates() {
        let sql = "select k, count(*) as n, sum(v) from t group by k order by n desc limit 5";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.group_by.len(), 1);
        let SelectItem::Expr { expr, alias } = &stmt.items[1] else {
            panic!()
        };
        assert!(expr.contains_aggregate());
        assert_eq!(alias.as_deref(), Some("n"));
        assert!(!stmt.order_by[0].asc);
    }

    #[test]
    fn self_join_parses() {
        let sql = "select a.id, b.id from db.t a join db.t b on a.k = b.k where a.id < 10";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.from.alias.as_deref(), Some("a"));
        let join = stmt.join.unwrap();
        assert_eq!(join.table.alias.as_deref(), Some("b"));
        assert_eq!(
            join.on_left,
            SqlExpr::Column {
                qualifier: Some("a".into()),
                name: "k".into()
            }
        );
    }

    #[test]
    fn wildcard_and_bare_alias() {
        let stmt = parse_select("select *, v total from t").unwrap();
        assert_eq!(stmt.items[0], SelectItem::Wildcard);
        let SelectItem::Expr { alias, .. } = &stmt.items[1] else {
            panic!()
        };
        assert_eq!(alias.as_deref(), Some("total"));
    }

    #[test]
    fn operator_precedence() {
        let stmt = parse_select("select a + b * 2 from t where x = 1 or y = 2 and z = 3").unwrap();
        let SelectItem::Expr { expr, .. } = &stmt.items[0] else {
            panic!()
        };
        // a + (b * 2)
        let SqlExpr::Binary { op, right, .. } = expr else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Add);
        assert!(matches!(
            right.as_ref(),
            SqlExpr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
        // x=1 OR (y=2 AND z=3)
        let SqlExpr::Binary { op, .. } = stmt.where_clause.as_ref().unwrap() else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Or);
    }

    #[test]
    fn is_null_and_not() {
        let stmt = parse_select("select v from t where v is not null and not (v > 3)").unwrap();
        let w = stmt.where_clause.unwrap();
        let SqlExpr::Binary { left, right, .. } = &w else {
            panic!()
        };
        assert!(matches!(
            left.as_ref(),
            SqlExpr::IsNull { negated: true, .. }
        ));
        assert!(matches!(right.as_ref(), SqlExpr::Not(_)));
    }

    #[test]
    fn literals() {
        let stmt = parse_select("select 1, 2.5, 'x', true, false, null, -3 from t").unwrap();
        let cells: Vec<_> = stmt
            .items
            .iter()
            .map(|it| match it {
                SelectItem::Expr { expr, .. } => expr.clone(),
                _ => panic!(),
            })
            .collect();
        assert_eq!(cells[0], SqlExpr::Literal(Cell::Int(1)));
        assert_eq!(cells[3], SqlExpr::Literal(Cell::Bool(true)));
        assert_eq!(cells[5], SqlExpr::Literal(Cell::Null));
        assert!(matches!(cells[6], SqlExpr::Neg(_)));
    }

    #[test]
    fn distinct_and_having() {
        let stmt =
            parse_select("select distinct k, count(*) as n from t group by k having count(*) > 2")
                .unwrap();
        assert!(stmt.distinct);
        assert!(stmt.having.is_some());
        let plain = parse_select("select k from t").unwrap();
        assert!(!plain.distinct);
        assert!(plain.having.is_none());
    }

    #[test]
    fn in_list_not_in_like_not_like() {
        let stmt = parse_select(
            "select v from t where v in (1, 2, 3) and name not in ('a')              and name like 'x%' and name not like '_y'",
        )
        .unwrap();
        let mut in_count = 0;
        let mut like_count = 0;
        stmt.where_clause.unwrap().walk(&mut |e| match e {
            SqlExpr::InList { items, negated, .. } => {
                in_count += 1;
                if !negated {
                    assert_eq!(items.len(), 3);
                }
            }
            SqlExpr::Like {
                pattern, negated, ..
            } => {
                like_count += 1;
                if !negated {
                    assert_eq!(pattern, "x%");
                }
            }
            _ => {}
        });
        assert_eq!(in_count, 2);
        assert_eq!(like_count, 2);
    }

    #[test]
    fn count_distinct_parses() {
        let stmt = parse_select("select count(distinct v) from t").unwrap();
        let SelectItem::Expr { expr, .. } = &stmt.items[0] else {
            panic!()
        };
        assert!(matches!(
            expr,
            SqlExpr::Aggregate {
                func: AggFunc::CountDistinct,
                arg: Some(_)
            }
        ));
    }

    #[test]
    fn new_syntax_errors() {
        for bad in [
            "select v from t where v in ()",
            "select v from t where v in (1",
            "select v from t where v like 5",
            "select v from t where v not 5",
        ] {
            assert!(parse_select(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "select",
            "select from t",
            "select a t", // missing FROM
            "select a from t limit 'x'",
            "select unknown_func(a) from t",
            "select get_json_object(a) from t",
            "select a from t where",
            "select a from t extra_garbage +",
        ] {
            assert!(parse_select(bad).is_err(), "expected error for {bad:?}");
        }
    }
}
