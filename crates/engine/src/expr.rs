//! Physical (resolved) expressions and their evaluation.
//!
//! Physical expressions reference input columns by *index* into the
//! operator's input schema. `GetJsonObject` is the expression where JSON
//! parsing happens — its evaluation time is charged to
//! [`ExecMetrics::parse`], which is how the engine reproduces the paper's
//! parse-cost measurements. Maxson's Algorithm 1 rewrite replaces
//! `GetJsonObject` nodes with plain `Column` references into cache-provided
//! slots, making the parse cost vanish.

use std::cmp::Ordering;
use std::time::Instant;

use maxson_json::mison::MisonProjector;
use maxson_json::JsonPath;
use maxson_storage::Cell;

use crate::error::{EngineError, Result};
use crate::extract::RowSlots;
use crate::metrics::ExecMetrics;
use crate::sql::ast::{BinaryOp, ScalarFunc};

/// How `get_json_object` parses records: the full-DOM "Jackson" baseline,
/// the structural-index "Mison" projector (Fig. 15's parser axis), or the
/// two-stage "Tape" parser (On-Demand style: structural index → typed tape
/// with skip markers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JsonParserKind {
    /// Full recursive-descent DOM parse (SparkSQL's default Jackson).
    #[default]
    Jackson,
    /// Mison-style structural-index projection.
    Mison,
    /// Tape-based on-demand navigation: skip markers hop over unqueried
    /// subtrees without materializing them.
    Tape,
}

impl JsonParserKind {
    /// Human/bench-facing name ("jackson" / "mison" / "tape").
    pub fn name(&self) -> &'static str {
        match self {
            JsonParserKind::Jackson => "jackson",
            JsonParserKind::Mison => "mison",
            JsonParserKind::Tape => "tape",
        }
    }

    /// Parse a `MAXSON_PARSER` value (case-insensitive). `None` for
    /// unrecognized names.
    pub fn from_name(name: &str) -> Option<JsonParserKind> {
        match name.trim().to_ascii_lowercase().as_str() {
            "jackson" => Some(JsonParserKind::Jackson),
            "mison" => Some(JsonParserKind::Mison),
            "tape" => Some(JsonParserKind::Tape),
            _ => None,
        }
    }
}

/// A resolved physical expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Input column by index.
    Column(usize),
    /// Constant.
    Literal(Cell),
    /// `get_json_object(input_column, path)` — the parse hot spot.
    GetJsonObject {
        /// Input column holding the JSON string.
        column: usize,
        /// Compiled JSONPath.
        path: JsonPath,
    },
    /// Binary operation with SQL NULL semantics.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical NOT (three-valued).
    Not(Box<Expr>),
    /// `IS NULL` / `IS NOT NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// `true` for IS NOT NULL.
        negated: bool,
    },
    /// Inclusive range test.
    Between {
        /// Operand.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// `expr [NOT] IN (values...)` with SQL NULL semantics.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// List members.
        items: Vec<Expr>,
        /// `true` for NOT IN.
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'` (`%` any run, `_` one char).
    Like {
        /// The tested expression.
        expr: Box<Expr>,
        /// Pattern text.
        pattern: String,
        /// `true` for NOT LIKE.
        negated: bool,
    },
    /// A built-in scalar function.
    Function {
        /// Which function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Record every input-column index this expression reads into `out`.
    /// The batched scan pipeline uses this to materialize only the
    /// predicate's columns before the filter runs; rows the filter rejects
    /// never materialize the rest.
    pub fn collect_columns(&self, out: &mut std::collections::BTreeSet<usize>) {
        match self {
            Expr::Column(i) => {
                out.insert(*i);
            }
            Expr::Literal(_) => {}
            Expr::GetJsonObject { column, .. } => {
                out.insert(*column);
            }
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.collect_columns(out),
            Expr::IsNull { expr, .. } => expr.collect_columns(out),
            Expr::Between { expr, low, high } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            Expr::InList { expr, items, .. } => {
                expr.collect_columns(out);
                for item in items {
                    item.collect_columns(out);
                }
            }
            Expr::Like { expr, .. } => expr.collect_columns(out),
            Expr::Function { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
        }
    }

    /// Evaluate against one row. JSON parse time is charged to `metrics`.
    /// Every `get_json_object` runs its own full parse (the naive path);
    /// use [`Expr::eval_with`] to share parses across calls via row slots.
    pub fn eval(
        &self,
        row: &[Cell],
        parser: JsonParserKind,
        metrics: &mut ExecMetrics,
    ) -> Result<Cell> {
        self.eval_with(row, parser, metrics, None)
    }

    /// Evaluate against one row, answering `GetJsonObject` nodes from the
    /// shared-parse `slots` when provided (and covered); uncovered pairs —
    /// and `slots: None` — fall back to a per-call parse.
    pub fn eval_with(
        &self,
        row: &[Cell],
        parser: JsonParserKind,
        metrics: &mut ExecMetrics,
        slots: Option<&RowSlots<'_>>,
    ) -> Result<Cell> {
        match self {
            Expr::Column(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| EngineError::exec(format!("column index {i} out of range"))),
            Expr::Literal(c) => Ok(c.clone()),
            Expr::GetJsonObject { column, path } => {
                let cell = row.get(*column).ok_or_else(|| {
                    EngineError::exec(format!("column index {column} out of range"))
                })?;
                let Cell::Str(json) = cell else {
                    return Ok(Cell::Null);
                };
                if let Some(slots) = slots {
                    if let Some(extracted) = slots.get(json, *column, path, parser, metrics) {
                        return Ok(extracted.map_or(Cell::Null, Cell::from));
                    }
                }
                let kernels_before = maxson_json::kernels::thread_build_stats();
                let start = Instant::now();
                let cell = match parser {
                    JsonParserKind::Jackson => {
                        maxson_json::get_json_object(json, path).map_or(Cell::Null, Cell::from)
                    }
                    JsonParserKind::Mison => {
                        MisonProjector::project_path(json, path).map_or(Cell::Null, Cell::from)
                    }
                    JsonParserKind::Tape => {
                        let tape = maxson_json::tape::TapeDoc::build(json).ok();
                        let built = start.elapsed();
                        metrics.tape_build_wall += built;
                        let mut stats = maxson_json::tape::TapeStats::default();
                        let out = tape.as_ref().and_then(|t| t.eval_path(path, &mut stats));
                        metrics.tape_nav_wall += start.elapsed().saturating_sub(built);
                        metrics.nodes_skipped += stats.nodes_skipped;
                        out.map_or(Cell::Null, Cell::from)
                    }
                };
                let spent = start.elapsed();
                metrics.parse += spent;
                metrics.parse_wall += spent;
                metrics.parse_calls += 1;
                metrics.docs_parsed += 1;
                metrics.charge_path_extract(path.text());
                metrics.charge_bitmap_builds(kernels_before);
                Ok(cell)
            }
            Expr::Binary { left, op, right } => {
                let l = left.eval_with(row, parser, metrics, slots)?;
                let r = right.eval_with(row, parser, metrics, slots)?;
                eval_binary(&l, *op, &r)
            }
            Expr::Not(e) => match e.eval_with(row, parser, metrics, slots)? {
                Cell::Null => Ok(Cell::Null),
                c => Ok(Cell::Bool(!truthy(&c))),
            },
            Expr::IsNull { expr, negated } => {
                let v = expr.eval_with(row, parser, metrics, slots)?;
                Ok(Cell::Bool(v.is_null() != *negated))
            }
            Expr::Between { expr, low, high } => {
                let v = expr.eval_with(row, parser, metrics, slots)?;
                let lo = low.eval_with(row, parser, metrics, slots)?;
                let hi = high.eval_with(row, parser, metrics, slots)?;
                match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                    (Some(a), Some(b)) => {
                        Ok(Cell::Bool(a != Ordering::Less && b != Ordering::Greater))
                    }
                    _ => Ok(Cell::Null),
                }
            }
            Expr::Neg(e) => match e.eval_with(row, parser, metrics, slots)? {
                Cell::Null => Ok(Cell::Null),
                Cell::Int(i) => Ok(Cell::Int(-i)),
                Cell::Float(f) => Ok(Cell::Float(-f)),
                c => match c.coerce_f64() {
                    Some(f) => Ok(Cell::Float(-f)),
                    None => Ok(Cell::Null),
                },
            },
            Expr::InList {
                expr,
                items,
                negated,
            } => {
                let v = expr.eval_with(row, parser, metrics, slots)?;
                if v.is_null() {
                    return Ok(Cell::Null);
                }
                // SQL semantics: TRUE if any member equals; if none equals
                // but a member is NULL, the result is NULL.
                let mut saw_null = false;
                let mut found = false;
                for item in items {
                    let m = item.eval_with(row, parser, metrics, slots)?;
                    if m.is_null() {
                        saw_null = true;
                        continue;
                    }
                    if v.sql_cmp(&m) == Some(std::cmp::Ordering::Equal) {
                        found = true;
                        break;
                    }
                }
                Ok(if found {
                    Cell::Bool(!negated)
                } else if saw_null {
                    Cell::Null
                } else {
                    Cell::Bool(*negated)
                })
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval_with(row, parser, metrics, slots)?;
                if v.is_null() {
                    return Ok(Cell::Null);
                }
                let text = v.render();
                let m = like_match(&text, pattern);
                Ok(Cell::Bool(m != *negated))
            }
            Expr::Function { func, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(a.eval_with(row, parser, metrics, slots)?);
                }
                Ok(eval_scalar(*func, &values))
            }
        }
    }

    /// Walk the tree (pre-order).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Not(e) | Expr::Neg(e) => e.walk(f),
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Between { expr, low, high } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::InList { expr, items, .. } => {
                expr.walk(f);
                for i in items {
                    i.walk(f);
                }
            }
            Expr::Like { expr, .. } => expr.walk(f),
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Column(_) | Expr::Literal(_) | Expr::GetJsonObject { .. } => {}
        }
    }

    /// Rewrite the tree bottom-up: `f` maps each node after its children
    /// were rewritten. This is the primitive Maxson's Algorithm 1 uses to
    /// swap `GetJsonObject` nodes for cache-slot column references.
    pub fn rewrite(self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        let rewritten = match self {
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(left.rewrite(f)),
                op,
                right: Box::new(right.rewrite(f)),
            },
            Expr::Not(e) => Expr::Not(Box::new(e.rewrite(f))),
            Expr::Neg(e) => Expr::Neg(Box::new(e.rewrite(f))),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.rewrite(f)),
                negated,
            },
            Expr::Between { expr, low, high } => Expr::Between {
                expr: Box::new(expr.rewrite(f)),
                low: Box::new(low.rewrite(f)),
                high: Box::new(high.rewrite(f)),
            },
            Expr::InList {
                expr,
                items,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.rewrite(f)),
                items: items.into_iter().map(|i| i.rewrite(f)).collect(),
                negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.rewrite(f)),
                pattern,
                negated,
            },
            Expr::Function { func, args } => Expr::Function {
                func,
                args: args.into_iter().map(|a| a.rewrite(f)).collect(),
            },
            leaf => leaf,
        };
        f(rewritten)
    }

    /// Indexes of all input columns referenced by the tree.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.walk(&mut |e| match e {
            Expr::Column(i) => cols.push(*i),
            Expr::GetJsonObject { column, .. } => cols.push(*column),
            _ => {}
        });
        cols.sort_unstable();
        cols.dedup();
        cols
    }
}

/// SQL LIKE matching: `%` matches any run (including empty), `_` exactly
/// one character. Case-sensitive, matching Hive's default.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => {
                // Try every split point (including consuming nothing).
                for k in 0..=t.len() {
                    if rec(&t[k..], &p[1..]) {
                        return true;
                    }
                }
                false
            }
            Some('_') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some(c) => t.first() == Some(c) && rec(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

/// Evaluate a built-in scalar function with Hive-leaning semantics.
fn eval_scalar(func: ScalarFunc, args: &[Cell]) -> Cell {
    match func {
        ScalarFunc::Length => match &args[0] {
            Cell::Null => Cell::Null,
            c => Cell::Int(c.render().chars().count() as i64),
        },
        ScalarFunc::Lower => match &args[0] {
            Cell::Null => Cell::Null,
            c => Cell::from(c.render().to_lowercase()),
        },
        ScalarFunc::Upper => match &args[0] {
            Cell::Null => Cell::Null,
            c => Cell::from(c.render().to_uppercase()),
        },
        ScalarFunc::Concat => {
            let mut out = String::new();
            for a in args {
                if a.is_null() {
                    return Cell::Null;
                }
                out.push_str(&a.render());
            }
            Cell::from(out)
        }
        ScalarFunc::Coalesce => args
            .iter()
            .find(|a| !a.is_null())
            .cloned()
            .unwrap_or(Cell::Null),
        ScalarFunc::Substr => {
            if args[0].is_null() {
                return Cell::Null;
            }
            let text = args[0].render();
            let chars: Vec<char> = text.chars().collect();
            let Some(start) = args[1].coerce_i64() else {
                return Cell::Null;
            };
            // 1-based; negative counts from the end (Hive).
            let begin = if start > 0 {
                (start - 1) as usize
            } else if start < 0 {
                chars.len().saturating_sub(start.unsigned_abs() as usize)
            } else {
                0
            };
            let len = match args.get(2) {
                Some(c) => match c.coerce_i64() {
                    Some(l) if l >= 0 => l as usize,
                    _ => return Cell::Null,
                },
                None => usize::MAX,
            };
            Cell::from(chars.iter().skip(begin).take(len).collect::<String>())
        }
        ScalarFunc::Abs => match args[0].coerce_f64() {
            None => Cell::Null,
            Some(f) => match &args[0] {
                Cell::Int(i) => Cell::Int(i.wrapping_abs()),
                _ => Cell::Float(f.abs()),
            },
        },
        ScalarFunc::Round => {
            let Some(x) = args[0].coerce_f64() else {
                return Cell::Null;
            };
            let digits = args.get(1).and_then(Cell::coerce_i64).unwrap_or(0);
            let factor = 10f64.powi(digits as i32);
            let rounded = (x * factor).round() / factor;
            if digits <= 0 {
                Cell::Int(rounded as i64)
            } else {
                Cell::Float(rounded)
            }
        }
    }
}

/// SQL truthiness: FALSE/NULL filter a row out; everything else passes.
pub fn truthy(cell: &Cell) -> bool {
    match cell {
        Cell::Bool(b) => *b,
        Cell::Null => false,
        Cell::Int(i) => *i != 0,
        Cell::Float(f) => *f != 0.0,
        Cell::Str(s) => !s.is_empty(),
    }
}

fn eval_binary(l: &Cell, op: BinaryOp, r: &Cell) -> Result<Cell> {
    use BinaryOp::*;
    match op {
        And => Ok(match (l, r) {
            // SQL three-valued logic.
            (Cell::Null, x) | (x, Cell::Null) => {
                if !x.is_null() && !truthy(x) {
                    Cell::Bool(false)
                } else {
                    Cell::Null
                }
            }
            (a, b) => Cell::Bool(truthy(a) && truthy(b)),
        }),
        Or => Ok(match (l, r) {
            (Cell::Null, x) | (x, Cell::Null) => {
                if !x.is_null() && truthy(x) {
                    Cell::Bool(true)
                } else {
                    Cell::Null
                }
            }
            (a, b) => Cell::Bool(truthy(a) || truthy(b)),
        }),
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let Some(ord) = l.sql_cmp(r) else {
                return Ok(Cell::Null);
            };
            let b = match op {
                Eq => ord == Ordering::Equal,
                NotEq => ord != Ordering::Equal,
                Lt => ord == Ordering::Less,
                LtEq => ord != Ordering::Greater,
                Gt => ord == Ordering::Greater,
                GtEq => ord != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Cell::Bool(b))
        }
        Add | Sub | Mul | Div | Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Cell::Null);
            }
            // Integer arithmetic when both sides are exact ints (except Div).
            if let (Cell::Int(a), Cell::Int(b)) = (l, r) {
                return Ok(match op {
                    Add => Cell::Int(a.wrapping_add(*b)),
                    Sub => Cell::Int(a.wrapping_sub(*b)),
                    Mul => Cell::Int(a.wrapping_mul(*b)),
                    Div => {
                        if *b == 0 {
                            Cell::Null
                        } else {
                            Cell::Float(*a as f64 / *b as f64)
                        }
                    }
                    Mod => {
                        if *b == 0 {
                            Cell::Null
                        } else {
                            Cell::Int(a % b)
                        }
                    }
                    _ => unreachable!(),
                });
            }
            let (Some(a), Some(b)) = (l.coerce_f64(), r.coerce_f64()) else {
                return Ok(Cell::Null);
            };
            Ok(match op {
                Add => Cell::Float(a + b),
                Sub => Cell::Float(a - b),
                Mul => Cell::Float(a * b),
                Div => {
                    if b == 0.0 {
                        Cell::Null
                    } else {
                        Cell::Float(a / b)
                    }
                }
                Mod => {
                    if b == 0.0 {
                        Cell::Null
                    } else {
                        Cell::Float(a % b)
                    }
                }
                _ => unreachable!(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(e: &Expr, row: &[Cell]) -> Cell {
        let mut m = ExecMetrics::default();
        e.eval(row, JsonParserKind::Jackson, &mut m).unwrap()
    }

    fn bin(l: Expr, op: BinaryOp, r: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(l),
            op,
            right: Box::new(r),
        }
    }

    #[test]
    fn column_and_literal() {
        let row = vec![Cell::Int(7), Cell::Str("x".into())];
        assert_eq!(eval(&Expr::Column(1), &row), Cell::Str("x".into()));
        assert_eq!(eval(&Expr::Literal(Cell::Int(3)), &row), Cell::Int(3));
        let mut m = ExecMetrics::default();
        assert!(Expr::Column(9)
            .eval(&row, JsonParserKind::Jackson, &mut m)
            .is_err());
    }

    #[test]
    fn get_json_object_charges_parse_time() {
        let row = vec![Cell::Str(r#"{"a": {"b": 42}}"#.into())];
        let e = Expr::GetJsonObject {
            column: 0,
            path: JsonPath::parse("$.a.b").unwrap(),
        };
        let mut m = ExecMetrics::default();
        for _ in 0..10 {
            assert_eq!(
                e.eval(&row, JsonParserKind::Jackson, &mut m).unwrap(),
                Cell::Str("42".into())
            );
        }
        assert_eq!(m.parse_calls, 10);
        assert_eq!(m.docs_parsed, 10, "naive path parses per call");
        assert!(m.parse > std::time::Duration::ZERO);
    }

    /// Shared-parse slots must change the counters (one parse, many calls)
    /// without changing any result.
    #[test]
    fn eval_with_slots_shares_one_parse_across_paths() {
        use crate::extract::{JsonExtractor, RowSlots};
        let row = vec![Cell::Str(r#"{"a": {"b": 42}, "c": "x"}"#.into())];
        let paths = ["$.a.b", "$.c", "$.missing"];
        let exprs: Vec<Expr> = paths
            .iter()
            .map(|p| Expr::GetJsonObject {
                column: 0,
                path: JsonPath::parse(p).unwrap(),
            })
            .collect();
        let ex = JsonExtractor::from_exprs(exprs.iter()).unwrap();
        for parser in [
            JsonParserKind::Jackson,
            JsonParserKind::Mison,
            JsonParserKind::Tape,
        ] {
            let mut shared_m = ExecMetrics::default();
            let slots = RowSlots::new(&ex);
            let shared: Vec<Cell> = exprs
                .iter()
                .map(|e| {
                    e.eval_with(&row, parser, &mut shared_m, Some(&slots))
                        .unwrap()
                })
                .collect();
            let mut naive_m = ExecMetrics::default();
            let naive: Vec<Cell> = exprs
                .iter()
                .map(|e| e.eval(&row, parser, &mut naive_m).unwrap())
                .collect();
            assert_eq!(shared, naive, "{parser:?}");
            assert_eq!(shared_m.parse_calls, naive_m.parse_calls);
            assert_eq!(shared_m.docs_parsed, 1);
            assert_eq!(naive_m.docs_parsed, 3);
        }
    }

    #[test]
    fn both_parsers_agree() {
        let row = vec![Cell::Str(r#"{"a": {"b": "v"}, "n": 5}"#.into())];
        for path in ["$.a.b", "$.n", "$.missing"] {
            let e = Expr::GetJsonObject {
                column: 0,
                path: JsonPath::parse(path).unwrap(),
            };
            let mut m = ExecMetrics::default();
            let jackson = e.eval(&row, JsonParserKind::Jackson, &mut m).unwrap();
            let mison = e.eval(&row, JsonParserKind::Mison, &mut m).unwrap();
            assert_eq!(jackson, mison, "path {path}");
        }
    }

    #[test]
    fn json_on_null_or_non_string_is_null() {
        let e = Expr::GetJsonObject {
            column: 0,
            path: JsonPath::parse("$.a").unwrap(),
        };
        assert_eq!(eval(&e, &[Cell::Null]), Cell::Null);
        assert_eq!(eval(&e, &[Cell::Int(3)]), Cell::Null);
    }

    #[test]
    fn comparisons_and_nulls() {
        let lt = bin(Expr::Column(0), BinaryOp::Lt, Expr::Literal(Cell::Int(5)));
        assert_eq!(eval(&lt, &[Cell::Int(3)]), Cell::Bool(true));
        assert_eq!(eval(&lt, &[Cell::Int(7)]), Cell::Bool(false));
        assert_eq!(eval(&lt, &[Cell::Null]), Cell::Null);
    }

    #[test]
    fn three_valued_and_or() {
        let t = Expr::Literal(Cell::Bool(true));
        let f = Expr::Literal(Cell::Bool(false));
        let n = Expr::Literal(Cell::Null);
        assert_eq!(
            eval(&bin(f.clone(), BinaryOp::And, n.clone()), &[]),
            Cell::Bool(false)
        );
        assert_eq!(
            eval(&bin(t.clone(), BinaryOp::And, n.clone()), &[]),
            Cell::Null
        );
        assert_eq!(
            eval(&bin(t.clone(), BinaryOp::Or, n.clone()), &[]),
            Cell::Bool(true)
        );
        assert_eq!(
            eval(&bin(f.clone(), BinaryOp::Or, n.clone()), &[]),
            Cell::Null
        );
        assert_eq!(eval(&Expr::Not(Box::new(n)), &[]), Cell::Null);
        assert_eq!(eval(&Expr::Not(Box::new(t)), &[]), Cell::Bool(false));
    }

    #[test]
    fn arithmetic() {
        let add = bin(
            Expr::Literal(Cell::Int(2)),
            BinaryOp::Add,
            Expr::Literal(Cell::Int(3)),
        );
        assert_eq!(eval(&add, &[]), Cell::Int(5));
        let div = bin(
            Expr::Literal(Cell::Int(7)),
            BinaryOp::Div,
            Expr::Literal(Cell::Int(2)),
        );
        assert_eq!(eval(&div, &[]), Cell::Float(3.5));
        let div0 = bin(
            Expr::Literal(Cell::Int(7)),
            BinaryOp::Div,
            Expr::Literal(Cell::Int(0)),
        );
        assert_eq!(eval(&div0, &[]), Cell::Null);
        let mixed = bin(
            Expr::Literal(Cell::Str("4".into())),
            BinaryOp::Mul,
            Expr::Literal(Cell::Float(2.5)),
        );
        assert_eq!(eval(&mixed, &[]), Cell::Float(10.0));
        let bad = bin(
            Expr::Literal(Cell::Str("abc".into())),
            BinaryOp::Add,
            Expr::Literal(Cell::Int(1)),
        );
        assert_eq!(eval(&bad, &[]), Cell::Null);
    }

    #[test]
    fn between_inclusive() {
        let e = Expr::Between {
            expr: Box::new(Expr::Column(0)),
            low: Box::new(Expr::Literal(Cell::Int(2))),
            high: Box::new(Expr::Literal(Cell::Int(4))),
        };
        assert_eq!(eval(&e, &[Cell::Int(2)]), Cell::Bool(true));
        assert_eq!(eval(&e, &[Cell::Int(4)]), Cell::Bool(true));
        assert_eq!(eval(&e, &[Cell::Int(5)]), Cell::Bool(false));
        assert_eq!(eval(&e, &[Cell::Null]), Cell::Null);
    }

    #[test]
    fn is_null_tests() {
        let e = Expr::IsNull {
            expr: Box::new(Expr::Column(0)),
            negated: false,
        };
        assert_eq!(eval(&e, &[Cell::Null]), Cell::Bool(true));
        assert_eq!(eval(&e, &[Cell::Int(1)]), Cell::Bool(false));
        let e = Expr::IsNull {
            expr: Box::new(Expr::Column(0)),
            negated: true,
        };
        assert_eq!(eval(&e, &[Cell::Int(1)]), Cell::Bool(true));
    }

    #[test]
    fn neg() {
        assert_eq!(
            eval(&Expr::Neg(Box::new(Expr::Literal(Cell::Int(3)))), &[]),
            Cell::Int(-3)
        );
        assert_eq!(
            eval(
                &Expr::Neg(Box::new(Expr::Literal(Cell::Str("2.5".into())))),
                &[]
            ),
            Cell::Float(-2.5)
        );
        assert_eq!(
            eval(&Expr::Neg(Box::new(Expr::Literal(Cell::Null))), &[]),
            Cell::Null
        );
    }

    #[test]
    fn rewrite_replaces_nodes() {
        let e = bin(
            Expr::GetJsonObject {
                column: 0,
                path: JsonPath::parse("$.x").unwrap(),
            },
            BinaryOp::Gt,
            Expr::Literal(Cell::Int(1)),
        );
        let rewritten = e.rewrite(&mut |node| match node {
            Expr::GetJsonObject { .. } => Expr::Column(5),
            other => other,
        });
        assert_eq!(
            rewritten,
            bin(Expr::Column(5), BinaryOp::Gt, Expr::Literal(Cell::Int(1)))
        );
    }

    #[test]
    fn referenced_columns_deduped() {
        let e = bin(
            Expr::Column(2),
            BinaryOp::Add,
            bin(
                Expr::Column(0),
                BinaryOp::Mul,
                Expr::GetJsonObject {
                    column: 2,
                    path: JsonPath::parse("$.a").unwrap(),
                },
            ),
        );
        assert_eq!(e.referenced_columns(), vec![0, 2]);
    }
}

#[cfg(test)]
mod new_op_tests {
    use super::*;

    fn eval(e: &Expr, row: &[Cell]) -> Cell {
        let mut m = ExecMetrics::default();
        e.eval(row, JsonParserKind::Jackson, &mut m).unwrap()
    }

    fn in_list(expr: Expr, items: Vec<Cell>, negated: bool) -> Expr {
        Expr::InList {
            expr: Box::new(expr),
            items: items.into_iter().map(Expr::Literal).collect(),
            negated,
        }
    }

    #[test]
    fn in_list_semantics() {
        let e = in_list(Expr::Column(0), vec![Cell::Int(1), Cell::Int(2)], false);
        assert_eq!(eval(&e, &[Cell::Int(2)]), Cell::Bool(true));
        assert_eq!(eval(&e, &[Cell::Int(3)]), Cell::Bool(false));
        assert_eq!(eval(&e, &[Cell::Null]), Cell::Null);
        // Numeric-string coercion matches the comparison semantics.
        assert_eq!(eval(&e, &[Cell::Str("2".into())]), Cell::Bool(true));
    }

    #[test]
    fn in_list_null_member_gives_null_on_miss() {
        let e = in_list(Expr::Column(0), vec![Cell::Int(1), Cell::Null], false);
        assert_eq!(eval(&e, &[Cell::Int(1)]), Cell::Bool(true));
        assert_eq!(eval(&e, &[Cell::Int(9)]), Cell::Null);
        // NOT IN with a NULL member is never TRUE.
        let e = in_list(Expr::Column(0), vec![Cell::Int(1), Cell::Null], true);
        assert_eq!(eval(&e, &[Cell::Int(9)]), Cell::Null);
        assert_eq!(eval(&e, &[Cell::Int(1)]), Cell::Bool(false));
    }

    #[test]
    fn like_semantics() {
        let like = |pat: &str, negated| Expr::Like {
            expr: Box::new(Expr::Column(0)),
            pattern: pat.to_string(),
            negated,
        };
        assert_eq!(
            eval(&like("ba%", false), &[Cell::Str("banana".into())]),
            Cell::Bool(true)
        );
        assert_eq!(
            eval(&like("%na", false), &[Cell::Str("banana".into())]),
            Cell::Bool(true)
        );
        assert_eq!(
            eval(&like("b_n%", false), &[Cell::Str("banana".into())]),
            Cell::Bool(true)
        );
        assert_eq!(
            eval(&like("x%", false), &[Cell::Str("banana".into())]),
            Cell::Bool(false)
        );
        assert_eq!(
            eval(&like("x%", true), &[Cell::Str("banana".into())]),
            Cell::Bool(true)
        );
        assert_eq!(eval(&like("%", false), &[Cell::Null]), Cell::Null);
        // Non-string values match against their rendering.
        assert_eq!(
            eval(&like("12%", false), &[Cell::Int(123)]),
            Cell::Bool(true)
        );
    }

    #[test]
    fn like_match_edge_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%%%"));
        assert!(like_match("a%b", "a%b")); // literal % in text matched by wildcard
        assert!(like_match("héllo", "h_llo"));
    }

    #[test]
    fn rewrite_recurses_into_new_variants() {
        let e = Expr::InList {
            expr: Box::new(Expr::Column(0)),
            items: vec![Expr::Column(1)],
            negated: false,
        };
        let shifted = e.rewrite(&mut |n| match n {
            Expr::Column(i) => Expr::Column(i + 10),
            other => other,
        });
        let Expr::InList { expr, items, .. } = shifted else {
            panic!()
        };
        assert_eq!(*expr, Expr::Column(10));
        assert_eq!(items[0], Expr::Column(11));
    }
}
