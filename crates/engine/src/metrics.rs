//! Per-phase execution metrics.
//!
//! The paper's Fig. 3 and Fig. 12 break query time into **Read** (pulling
//! bytes out of storage), **Parse** (JSON parsing inside
//! `get_json_object`), and **Compute** (everything else). The executor
//! threads one [`ExecMetrics`] through a query; the scan operator charges
//! read time and bytes, the JSON expression charges parse time, and compute
//! is derived as `total - read - parse`.
//!
//! Under split-parallel execution each worker task accumulates into its own
//! `ExecMetrics` instance; the barrier merges them into the query's metrics
//! via [`ExecMetrics::absorb`], so `absorb` must be commutative and
//! associative over every field it touches (counters sum, gauges max —
//! both orders are order-insensitive; see the shuffled-order test below).

use std::time::Duration;

/// Counters accumulated during one query execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecMetrics {
    /// Time spent reading/decoding storage. Under parallel execution this is
    /// the *sum across tasks*, so it can exceed wall-clock time.
    pub read: Duration,
    /// Time spent parsing JSON inside `get_json_object` (summed across
    /// tasks, like `read`).
    pub parse: Duration,
    /// Wall-clock estimate of the read phase. Serial execution charges this
    /// in lockstep with `read`; the parallel barrier divides each task's
    /// contribution by the number of pool workers before absorbing it
    /// (tasks overlap, so summed CPU time overstates elapsed time by about
    /// that factor). Unlike `read`, this stays comparable to `total`.
    pub read_wall: Duration,
    /// Wall-clock estimate of the parse phase (same convention as
    /// `read_wall`).
    pub parse_wall: Duration,
    /// Wall-clock for the whole execution (set by the session).
    pub total: Duration,
    /// Time spent generating/rewriting the plan (set by the session).
    pub planning: Duration,
    /// Rows scanned out of storage (after row-group skipping).
    pub rows_scanned: u64,
    /// Bytes of storage input actually decoded.
    pub bytes_read: u64,
    /// Number of `get_json_object` evaluations that reached a parser (the
    /// input cell held a JSON string). Identical whether shared-parse
    /// extraction is on or off — it counts path *evaluations*, not parses.
    pub parse_calls: u64,
    /// Number of documents actually parsed (DOM builds in Jackson mode,
    /// structural-index builds in Mison mode). With shared-parse extraction
    /// a row is parsed once per JSON column however many paths the query
    /// needs, so `parse_calls / docs_parsed` is the intra-query dedup
    /// factor; naively the two counters are equal.
    pub docs_parsed: u64,
    /// Number of JSON evaluations answered from a cache (Maxson hits).
    pub cache_hits: u64,
    /// Row groups skipped via SARG pushdown.
    pub row_groups_skipped: u64,
    /// Row groups read.
    pub row_groups_read: u64,
    /// Rows rejected by the Sparser-style raw prefilter before parsing.
    pub prefilter_dropped: u64,
    /// Cells converted out of columnar batches into row [`Cell`]s. Late
    /// materialization keeps this below `rows × columns` whenever a filter
    /// rejects rows: rejected rows only materialize the predicate's
    /// columns. Zero for providers that produce rows directly.
    pub cells_materialized: u64,
    /// Rows of a columnar batch dropped before full-row materialization —
    /// by the batch's selection vector (prefilter) or by the filter after
    /// only its predicate columns were materialized.
    pub batch_rows_skipped: u64,
    /// Worker threads used by the widest parallel pool run (0 = serial).
    pub threads_used: u64,
    /// Split tasks executed by parallel pool runs.
    pub par_tasks: u64,
    /// Median per-task wall time of the slowest-skewed pool run.
    pub task_wall_p50: Duration,
    /// 95th-percentile per-task wall time of the slowest-skewed pool run.
    pub task_wall_p95: Duration,
    /// Task skew: max task wall over mean task wall (1.0 = perfectly even,
    /// 0.0 = no parallel run happened).
    pub task_skew: f64,
    /// Tape mode: tape entries navigation hopped over via skip markers
    /// without visiting (unqueried sibling subtrees). Zero in Jackson and
    /// Mison modes — those parsers have no tape to skip.
    pub nodes_skipped: u64,
    /// Tape mode: wall time spent building tapes (structural index + typed
    /// tape), summed across tasks like `parse`.
    pub tape_build_wall: Duration,
    /// Tape mode: wall time spent navigating built tapes and rendering the
    /// queried spans (the on-demand half), summed across tasks.
    pub tape_nav_wall: Duration,
    /// Online-LRU cache: per-path-per-scan lookups answered from the cache.
    pub lru_hits: u64,
    /// Online-LRU cache: lookups that had to parse and fill.
    pub lru_misses: u64,
    /// Online-LRU cache: entries evicted to make room during this query.
    pub lru_evictions: u64,
    /// Online-LRU cache: resident bytes after the largest fill this query
    /// observed (a gauge — `absorb` takes the max, not the sum).
    pub lru_resident_bytes: u64,
    /// Norc metadata cache: split opens whose decoded footer/index was
    /// served from the shared cache.
    pub meta_cache_hits: u64,
    /// Norc metadata cache: split opens that had to read and decode the
    /// part file (cache absent, cold, or invalidated).
    pub meta_cache_misses: u64,
    /// Structural-bitmap constructions (one per record indexed by the Mison
    /// or tape parser). Zero in Jackson mode — the DOM parser builds no
    /// bitmaps.
    pub bitmap_builds: u64,
    /// Input bytes classified by the structural kernels.
    pub bitmap_bytes: u64,
    /// Wall time inside structural-bitmap construction (classification +
    /// string-mask resolve, not the colon/bracket walk), summed across
    /// tasks like `parse`.
    pub bitmap_build_wall: Duration,
    /// Which structural-kernel tier ran (`maxson_json::kernels::Kernel`
    /// id: 1 scalar, 2 swar, 3 sse2, 4 avx2; 0 = no bitmap work observed).
    /// A gauge — `absorb` takes the max, and the tier is process-wide so
    /// concurrent tasks always agree.
    pub simd_kernel: u64,
    /// Cross-query reuse cache: full-result probe hits (the query was
    /// served entirely from cache; every execution counter stays zero).
    pub reuse_hits: u64,
    /// Cross-query reuse cache: probes that found nothing usable.
    pub reuse_misses: u64,
    /// Cross-query reuse cache: fragment hits (the result was rebuilt by
    /// replaying cached intermediate rows under `LIMIT`/`DISTINCT`).
    pub reuse_fragment_hits: u64,
    /// Cross-query reuse cache: entries this query filled (admitted).
    pub reuse_fills: u64,
    /// Per-JSONPath evaluation counts for this query, `(path text, count)`
    /// **kept sorted by path** so `absorb` is order-insensitive. Charged
    /// wherever `parse_calls` is charged (one entry bump per evaluation);
    /// the session drains this into the process-wide workload sketch at
    /// query end, attributed to the scanned table. A query touches a
    /// handful of distinct paths, so the sorted-Vec lookup is a short
    /// binary search with no per-row allocation after first touch.
    pub path_extracts: Vec<(String, u64)>,
}

impl ExecMetrics {
    /// Compute phase: total minus read and parse (clamped at zero).
    ///
    /// **Only meaningful for serial execution.** `read` and `parse` are
    /// *sums across tasks*: with N workers they approach N× the elapsed
    /// time, so this residual clamps to zero whenever threads > 1. Use
    /// [`ExecMetrics::compute_wall`] for a breakdown that stays honest
    /// under parallel execution.
    pub fn compute(&self) -> Duration {
        self.total
            .saturating_sub(self.read)
            .saturating_sub(self.parse)
    }

    /// Compute phase against the wall-clock gauges: total minus
    /// `read_wall` and `parse_wall` (clamped at zero). Equals
    /// [`ExecMetrics::compute`] for serial runs and remains a sane
    /// residual under parallel execution, where cross-task CPU sums
    /// exceed elapsed time.
    pub fn compute_wall(&self) -> Duration {
        self.total
            .saturating_sub(self.read_wall)
            .saturating_sub(self.parse_wall)
    }

    /// Fraction of total time spent parsing (0 when total is zero).
    pub fn parse_fraction(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.parse.as_secs_f64() / self.total.as_secs_f64()
        }
    }

    /// Merge counters from another execution (both sides of a join, or one
    /// worker task's metrics at the parallel barrier).
    ///
    /// Every field this touches combines with a commutative, associative
    /// operation (`+` for counters and phase times, `max` for the pool
    /// gauges), so the merged result does not depend on the order tasks
    /// finish in. `total` and `planning` are deliberately untouched: they
    /// are whole-query wall clocks owned by the session, not per-task work.
    pub fn absorb(&mut self, other: &ExecMetrics) {
        self.read += other.read;
        self.parse += other.parse;
        self.read_wall += other.read_wall;
        self.parse_wall += other.parse_wall;
        self.rows_scanned += other.rows_scanned;
        self.bytes_read += other.bytes_read;
        self.parse_calls += other.parse_calls;
        self.docs_parsed += other.docs_parsed;
        self.cache_hits += other.cache_hits;
        self.row_groups_skipped += other.row_groups_skipped;
        self.row_groups_read += other.row_groups_read;
        self.prefilter_dropped += other.prefilter_dropped;
        self.cells_materialized += other.cells_materialized;
        self.batch_rows_skipped += other.batch_rows_skipped;
        self.threads_used = self.threads_used.max(other.threads_used);
        self.par_tasks += other.par_tasks;
        self.task_wall_p50 = self.task_wall_p50.max(other.task_wall_p50);
        self.task_wall_p95 = self.task_wall_p95.max(other.task_wall_p95);
        self.task_skew = self.task_skew.max(other.task_skew);
        self.nodes_skipped += other.nodes_skipped;
        self.tape_build_wall += other.tape_build_wall;
        self.tape_nav_wall += other.tape_nav_wall;
        self.lru_hits += other.lru_hits;
        self.lru_misses += other.lru_misses;
        self.lru_evictions += other.lru_evictions;
        self.lru_resident_bytes = self.lru_resident_bytes.max(other.lru_resident_bytes);
        self.meta_cache_hits += other.meta_cache_hits;
        self.meta_cache_misses += other.meta_cache_misses;
        self.bitmap_builds += other.bitmap_builds;
        self.bitmap_bytes += other.bitmap_bytes;
        self.bitmap_build_wall += other.bitmap_build_wall;
        self.simd_kernel = self.simd_kernel.max(other.simd_kernel);
        self.reuse_hits += other.reuse_hits;
        self.reuse_misses += other.reuse_misses;
        self.reuse_fragment_hits += other.reuse_fragment_hits;
        self.reuse_fills += other.reuse_fills;
        for (path, n) in &other.path_extracts {
            match self
                .path_extracts
                .binary_search_by(|(p, _)| p.as_str().cmp(path.as_str()))
            {
                Ok(i) => self.path_extracts[i].1 += n,
                Err(i) => self.path_extracts.insert(i, (path.clone(), *n)),
            }
        }
    }

    /// Bump the per-query evaluation count of one JSONPath. Kept sorted so
    /// merges stay order-insensitive; allocates only on the first sighting
    /// of a path within this instance.
    pub fn charge_path_extract(&mut self, path: &str) {
        self.charge_path_extracts(path, 1);
    }

    /// Bulk form of [`ExecMetrics::charge_path_extract`] for column-at-a-
    /// time providers (LRU fills, cache-table scans) that answer `n`
    /// evaluations of one path at once.
    pub fn charge_path_extracts(&mut self, path: &str, n: u64) {
        if n == 0 {
            return;
        }
        match self
            .path_extracts
            .binary_search_by(|(p, _)| p.as_str().cmp(path))
        {
            Ok(i) => self.path_extracts[i].1 += n,
            Err(i) => self.path_extracts.insert(i, (path.to_string(), n)),
        }
    }

    /// Charge structural-kernel work performed since `before` (a snapshot
    /// of [`maxson_json::kernels::thread_build_stats`] taken just before
    /// the parse work). Records which kernel tier ran the moment any build
    /// is observed; Jackson-mode parses charge nothing because the DOM
    /// parser never builds bitmaps.
    pub fn charge_bitmap_builds(&mut self, before: maxson_json::kernels::BuildStats) {
        let d = maxson_json::kernels::thread_build_stats().delta_since(before);
        if d.builds > 0 {
            self.bitmap_builds += d.builds;
            self.bitmap_bytes += d.bytes;
            self.bitmap_build_wall += Duration::from_nanos(d.nanos);
            self.simd_kernel = self
                .simd_kernel
                .max(maxson_json::kernels::active().id() as u64);
        }
    }

    /// Online-LRU hit ratio over this query's lookups (0 when the LRU
    /// never ran).
    pub fn lru_hit_ratio(&self) -> f64 {
        let lookups = self.lru_hits + self.lru_misses;
        if lookups == 0 {
            0.0
        } else {
            self.lru_hits as f64 / lookups as f64
        }
    }

    /// Intra-query parse dedup factor: `parse_calls / docs_parsed`. 1.0
    /// means every evaluation parsed its own document (the naive path);
    /// K means K path evaluations were answered per parse. Returns 1.0
    /// when nothing was parsed.
    pub fn parse_dedup_factor(&self) -> f64 {
        if self.docs_parsed == 0 {
            1.0
        } else {
            self.parse_calls as f64 / self.docs_parsed as f64
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "total={:?} read={:?} parse={:?} compute={:?} rows={} bytes={} parse_calls={} docs_parsed={} dedup={:.2}x cache_hits={} rg_skipped={}/{}",
            self.total,
            self.read,
            self.parse,
            self.compute(),
            self.rows_scanned,
            self.bytes_read,
            self.parse_calls,
            self.docs_parsed,
            self.parse_dedup_factor(),
            self.cache_hits,
            self.row_groups_skipped,
            self.row_groups_skipped + self.row_groups_read,
        );
        if self.threads_used > 0 {
            // Parallel runs: `read`/`parse` above are cross-task CPU sums
            // (compute() clamps to zero), so print the honest wall-clock
            // breakdown alongside the pool-shape gauges.
            s.push_str(&format!(
                " read_wall={:?} parse_wall={:?} compute_wall={:?}",
                self.read_wall,
                self.parse_wall,
                self.compute_wall(),
            ));
            s.push_str(&format!(
                " threads={} tasks={} task_p50={:?} task_p95={:?} skew={:.2}",
                self.threads_used,
                self.par_tasks,
                self.task_wall_p50,
                self.task_wall_p95,
                self.task_skew,
            ));
        }
        if self.cells_materialized + self.batch_rows_skipped > 0 {
            // Batch-mode scans only: how much row materialization the
            // columnar path performed, and how much it avoided.
            s.push_str(&format!(
                " cells_mat={} batch_skipped={}",
                self.cells_materialized, self.batch_rows_skipped,
            ));
        }
        if self.nodes_skipped > 0
            || !self.tape_build_wall.is_zero()
            || !self.tape_nav_wall.is_zero()
        {
            // Tape mode only: skip-marker work avoided plus the build vs
            // navigate wall split.
            s.push_str(&format!(
                " nodes_skipped={} tape_build={:?} tape_nav={:?}",
                self.nodes_skipped, self.tape_build_wall, self.tape_nav_wall,
            ));
        }
        if self.lru_hits + self.lru_misses > 0 {
            s.push_str(&format!(
                " lru_hits={} lru_misses={} lru_ratio={:.2} lru_evict={} lru_bytes={}",
                self.lru_hits,
                self.lru_misses,
                self.lru_hit_ratio(),
                self.lru_evictions,
                self.lru_resident_bytes,
            ));
        }
        if self.meta_cache_hits + self.meta_cache_misses > 0 {
            s.push_str(&format!(
                " meta_hits={} meta_misses={}",
                self.meta_cache_hits, self.meta_cache_misses,
            ));
        }
        if self.reuse_hits + self.reuse_misses + self.reuse_fragment_hits + self.reuse_fills > 0 {
            s.push_str(&format!(
                " reuse_hits={} reuse_misses={} reuse_frag={} reuse_fills={}",
                self.reuse_hits, self.reuse_misses, self.reuse_fragment_hits, self.reuse_fills,
            ));
        }
        if self.bitmap_builds > 0 {
            // Structural-kernel modes (Mison/tape) only: which tier ran and
            // what the bitmap construction cost.
            let kernel = maxson_json::kernels::Kernel::from_id(self.simd_kernel as u8)
                .map_or("unknown", |k| k.name());
            s.push_str(&format!(
                " simd={kernel} bitmap_builds={} bitmap_bytes={} bitmap_wall={:?}",
                self.bitmap_builds, self.bitmap_bytes, self.bitmap_build_wall,
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_is_residual() {
        let m = ExecMetrics {
            total: Duration::from_millis(100),
            read: Duration::from_millis(30),
            parse: Duration::from_millis(50),
            ..Default::default()
        };
        assert_eq!(m.compute(), Duration::from_millis(20));
        assert!((m.parse_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn compute_clamps_at_zero() {
        let m = ExecMetrics {
            total: Duration::from_millis(10),
            read: Duration::from_millis(30),
            ..Default::default()
        };
        assert_eq!(m.compute(), Duration::ZERO);
        assert_eq!(ExecMetrics::default().parse_fraction(), 0.0);
    }

    #[test]
    fn absorb_sums_counters() {
        let mut a = ExecMetrics {
            rows_scanned: 5,
            parse_calls: 2,
            ..Default::default()
        };
        let b = ExecMetrics {
            rows_scanned: 7,
            cache_hits: 3,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.rows_scanned, 12);
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.parse_calls, 2);
    }

    #[test]
    fn absorb_sums_docs_parsed() {
        let mut a = ExecMetrics {
            parse_calls: 12,
            docs_parsed: 4,
            ..Default::default()
        };
        let b = ExecMetrics {
            parse_calls: 9,
            docs_parsed: 3,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.docs_parsed, 7);
        assert!((a.parse_dedup_factor() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn path_extracts_stay_sorted_and_merge_by_key() {
        let mut a = ExecMetrics::default();
        a.charge_path_extract("$.b");
        a.charge_path_extract("$.a");
        a.charge_path_extract("$.b");
        assert_eq!(
            a.path_extracts,
            vec![("$.a".to_string(), 1), ("$.b".to_string(), 2)]
        );
        let mut b = ExecMetrics::default();
        b.charge_path_extract("$.c");
        b.charge_path_extract("$.b");
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab.path_extracts, ba.path_extracts);
        assert_eq!(
            ab.path_extracts,
            vec![
                ("$.a".to_string(), 1),
                ("$.b".to_string(), 3),
                ("$.c".to_string(), 1)
            ]
        );
    }

    #[test]
    fn dedup_factor_defaults_to_one_without_parses() {
        assert_eq!(ExecMetrics::default().parse_dedup_factor(), 1.0);
    }

    #[test]
    fn absorb_maxes_pool_gauges() {
        let mut a = ExecMetrics {
            threads_used: 4,
            par_tasks: 4,
            task_wall_p50: Duration::from_millis(3),
            task_skew: 1.5,
            ..Default::default()
        };
        let b = ExecMetrics {
            threads_used: 2,
            par_tasks: 2,
            task_wall_p50: Duration::from_millis(9),
            task_skew: 1.1,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.threads_used, 4);
        assert_eq!(a.par_tasks, 6);
        assert_eq!(a.task_wall_p50, Duration::from_millis(9));
        assert!((a.task_skew - 1.5).abs() < 1e-12);
    }

    /// One deterministic pseudo-random metrics instance per seed,
    /// exercising every field `absorb` touches.
    fn arb_metrics(seed: u64) -> ExecMetrics {
        // splitmix64: cheap, deterministic, good dispersion.
        let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        ExecMetrics {
            read: Duration::from_micros(next() % 10_000),
            parse: Duration::from_micros(next() % 10_000),
            read_wall: Duration::from_micros(next() % 10_000),
            parse_wall: Duration::from_micros(next() % 10_000),
            // total/planning are not absorbed; leave zero so equality of the
            // merged structs is meaningful.
            total: Duration::ZERO,
            planning: Duration::ZERO,
            rows_scanned: next() % 1000,
            bytes_read: next() % 100_000,
            parse_calls: next() % 500,
            docs_parsed: next() % 500,
            cache_hits: next() % 500,
            row_groups_skipped: next() % 64,
            row_groups_read: next() % 64,
            prefilter_dropped: next() % 100,
            cells_materialized: next() % 10_000,
            batch_rows_skipped: next() % 1000,
            threads_used: next() % 16,
            par_tasks: next() % 16,
            task_wall_p50: Duration::from_micros(next() % 5_000),
            task_wall_p95: Duration::from_micros(next() % 5_000),
            task_skew: 1.0 + (next() % 1000) as f64 / 250.0,
            nodes_skipped: next() % 10_000,
            tape_build_wall: Duration::from_micros(next() % 5_000),
            tape_nav_wall: Duration::from_micros(next() % 5_000),
            lru_hits: next() % 500,
            lru_misses: next() % 500,
            lru_evictions: next() % 100,
            lru_resident_bytes: next() % 1_000_000,
            meta_cache_hits: next() % 500,
            meta_cache_misses: next() % 500,
            bitmap_builds: next() % 500,
            bitmap_bytes: next() % 100_000,
            bitmap_build_wall: Duration::from_micros(next() % 5_000),
            simd_kernel: next() % 5,
            reuse_hits: next() % 500,
            reuse_misses: next() % 500,
            reuse_fragment_hits: next() % 500,
            reuse_fills: next() % 500,
            path_extracts: {
                // A few overlapping keys so merges both sum and insert.
                let mut v = vec![
                    (format!("$.f{}", next() % 3), 1 + next() % 50),
                    ("$.shared".to_string(), 1 + next() % 50),
                ];
                v.sort();
                v.dedup_by(|a, b| a.0 == b.0);
                v
            },
        }
    }

    fn absorb_all(parts: &[ExecMetrics]) -> ExecMetrics {
        let mut acc = ExecMetrics::default();
        for p in parts {
            acc.absorb(p);
        }
        acc
    }

    /// The parallel barrier absorbs task metrics in whatever order is
    /// convenient; the result must not depend on it.
    #[test]
    fn absorb_is_commutative_and_associative_under_shuffles() {
        let parts: Vec<ExecMetrics> = (0..8).map(arb_metrics).collect();
        let reference = absorb_all(&parts);

        // A handful of deterministic shuffles (rotations + reversal +
        // interleavings) covers both pairwise swaps and regroupings.
        for rot in 0..parts.len() {
            let mut shuffled = parts.clone();
            shuffled.rotate_left(rot);
            assert_eq!(absorb_all(&shuffled), reference, "rotation {rot}");
            shuffled.reverse();
            assert_eq!(absorb_all(&shuffled), reference, "reversed rotation {rot}");
        }

        // Associativity: fold pairs first, then absorb the pair-sums.
        let mut pairs: Vec<ExecMetrics> = Vec::new();
        for chunk in parts.chunks(2) {
            pairs.push(absorb_all(chunk));
        }
        assert_eq!(absorb_all(&pairs), reference, "pairwise regrouping");

        // Tree-shaped merge (as a work-stealing barrier might do it).
        let left = absorb_all(&parts[..3]);
        let right = absorb_all(&parts[3..]);
        let mut tree = ExecMetrics::default();
        tree.absorb(&right);
        tree.absorb(&left);
        assert_eq!(tree, reference, "tree merge");
    }

    #[test]
    fn summary_mentions_fields() {
        let m = ExecMetrics {
            rows_scanned: 42,
            ..Default::default()
        };
        assert!(m.summary().contains("rows=42"));
        assert!(m.summary().contains("docs_parsed=0"));
        assert!(
            !m.summary().contains("threads="),
            "serial omits pool gauges"
        );
        let p = ExecMetrics {
            threads_used: 4,
            par_tasks: 8,
            ..Default::default()
        };
        assert!(p.summary().contains("threads=4"));
        assert!(p.summary().contains("tasks=8"));
        assert!(
            p.summary().contains("compute_wall="),
            "parallel summary prints the honest wall breakdown"
        );
        assert!(
            !m.summary().contains("lru_hits="),
            "LRU fields only print when the LRU ran"
        );
        assert!(
            !m.summary().contains("cells_mat="),
            "batch fields only print when a columnar batch ran"
        );
        let c = ExecMetrics {
            cells_materialized: 12,
            batch_rows_skipped: 5,
            ..Default::default()
        };
        assert!(c.summary().contains("cells_mat=12"));
        assert!(c.summary().contains("batch_skipped=5"));
        let l = ExecMetrics {
            lru_hits: 3,
            lru_misses: 1,
            lru_evictions: 2,
            lru_resident_bytes: 640,
            ..Default::default()
        };
        assert!(
            !m.summary().contains("nodes_skipped="),
            "tape fields only print when the tape parser ran"
        );
        let t = ExecMetrics {
            nodes_skipped: 7,
            tape_build_wall: Duration::from_micros(10),
            ..Default::default()
        };
        assert!(t.summary().contains("nodes_skipped=7"));
        assert!(t.summary().contains("tape_build="));
        assert!(t.summary().contains("tape_nav="));
        assert!(l.summary().contains("lru_hits=3"));
        assert!(l.summary().contains("lru_ratio=0.75"));
        assert!(l.summary().contains("lru_evict=2"));
        assert!(l.summary().contains("lru_bytes=640"));
        assert!(
            !m.summary().contains("reuse_hits="),
            "reuse fields only print when the reuse cache participated"
        );
        let u = ExecMetrics {
            reuse_hits: 1,
            reuse_fills: 2,
            ..Default::default()
        };
        assert!(u.summary().contains("reuse_hits=1"));
        assert!(u.summary().contains("reuse_fills=2"));
        assert!(
            !m.summary().contains("simd="),
            "kernel fields only print when bitmaps were built"
        );
        let k = ExecMetrics {
            bitmap_builds: 4,
            bitmap_bytes: 1200,
            simd_kernel: maxson_json::kernels::Kernel::Swar.id() as u64,
            ..Default::default()
        };
        assert!(k.summary().contains("simd=swar"));
        assert!(k.summary().contains("bitmap_builds=4"));
        assert!(k.summary().contains("bitmap_bytes=1200"));
    }

    #[test]
    fn wall_gauges_track_serial_phases() {
        let m = ExecMetrics {
            total: Duration::from_millis(100),
            read: Duration::from_millis(30),
            parse: Duration::from_millis(50),
            read_wall: Duration::from_millis(30),
            parse_wall: Duration::from_millis(50),
            ..Default::default()
        };
        // Serial runs charge wall gauges in lockstep with the sums.
        assert_eq!(m.compute_wall(), m.compute());
        // Parallel runs: sums exceed total, walls stay comparable.
        let p = ExecMetrics {
            total: Duration::from_millis(100),
            read: Duration::from_millis(240),
            parse: Duration::from_millis(160),
            read_wall: Duration::from_millis(60),
            parse_wall: Duration::from_millis(40),
            threads_used: 4,
            ..Default::default()
        };
        assert_eq!(p.compute(), Duration::ZERO, "the misleading residual");
        assert_eq!(p.compute_wall(), Duration::from_millis(0));
        let p2 = ExecMetrics {
            read_wall: Duration::from_millis(20),
            parse_wall: Duration::from_millis(30),
            ..p
        };
        assert_eq!(p2.compute_wall(), Duration::from_millis(50));
    }

    #[test]
    fn lru_hit_ratio_handles_empty_and_mixed() {
        assert_eq!(ExecMetrics::default().lru_hit_ratio(), 0.0);
        let m = ExecMetrics {
            lru_hits: 9,
            lru_misses: 3,
            ..Default::default()
        };
        assert!((m.lru_hit_ratio() - 0.75).abs() < 1e-12);
    }
}
