//! Per-phase execution metrics.
//!
//! The paper's Fig. 3 and Fig. 12 break query time into **Read** (pulling
//! bytes out of storage), **Parse** (JSON parsing inside
//! `get_json_object`), and **Compute** (everything else). The executor
//! threads one [`ExecMetrics`] through a query; the scan operator charges
//! read time and bytes, the JSON expression charges parse time, and compute
//! is derived as `total - read - parse`.

use std::time::Duration;

/// Counters accumulated during one query execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecMetrics {
    /// Time spent reading/decoding storage.
    pub read: Duration,
    /// Time spent parsing JSON inside `get_json_object`.
    pub parse: Duration,
    /// Wall-clock for the whole execution (set by the session).
    pub total: Duration,
    /// Time spent generating/rewriting the plan (set by the session).
    pub planning: Duration,
    /// Rows scanned out of storage (after row-group skipping).
    pub rows_scanned: u64,
    /// Bytes of storage input actually decoded.
    pub bytes_read: u64,
    /// Number of `get_json_object` evaluations that ran a parser.
    pub parse_calls: u64,
    /// Number of JSON evaluations answered from a cache (Maxson hits).
    pub cache_hits: u64,
    /// Row groups skipped via SARG pushdown.
    pub row_groups_skipped: u64,
    /// Row groups read.
    pub row_groups_read: u64,
    /// Rows rejected by the Sparser-style raw prefilter before parsing.
    pub prefilter_dropped: u64,
}

impl ExecMetrics {
    /// Compute phase: total minus read and parse (clamped at zero).
    pub fn compute(&self) -> Duration {
        self.total
            .saturating_sub(self.read)
            .saturating_sub(self.parse)
    }

    /// Fraction of total time spent parsing (0 when total is zero).
    pub fn parse_fraction(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.parse.as_secs_f64() / self.total.as_secs_f64()
        }
    }

    /// Merge counters from another execution (e.g. both sides of a join).
    pub fn absorb(&mut self, other: &ExecMetrics) {
        self.read += other.read;
        self.parse += other.parse;
        self.rows_scanned += other.rows_scanned;
        self.bytes_read += other.bytes_read;
        self.parse_calls += other.parse_calls;
        self.cache_hits += other.cache_hits;
        self.row_groups_skipped += other.row_groups_skipped;
        self.row_groups_read += other.row_groups_read;
        self.prefilter_dropped += other.prefilter_dropped;
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "total={:?} read={:?} parse={:?} compute={:?} rows={} bytes={} parse_calls={} cache_hits={} rg_skipped={}/{}",
            self.total,
            self.read,
            self.parse,
            self.compute(),
            self.rows_scanned,
            self.bytes_read,
            self.parse_calls,
            self.cache_hits,
            self.row_groups_skipped,
            self.row_groups_skipped + self.row_groups_read,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_is_residual() {
        let m = ExecMetrics {
            total: Duration::from_millis(100),
            read: Duration::from_millis(30),
            parse: Duration::from_millis(50),
            ..Default::default()
        };
        assert_eq!(m.compute(), Duration::from_millis(20));
        assert!((m.parse_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn compute_clamps_at_zero() {
        let m = ExecMetrics {
            total: Duration::from_millis(10),
            read: Duration::from_millis(30),
            ..Default::default()
        };
        assert_eq!(m.compute(), Duration::ZERO);
        assert_eq!(ExecMetrics::default().parse_fraction(), 0.0);
    }

    #[test]
    fn absorb_sums_counters() {
        let mut a = ExecMetrics {
            rows_scanned: 5,
            parse_calls: 2,
            ..Default::default()
        };
        let b = ExecMetrics {
            rows_scanned: 7,
            cache_hits: 3,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.rows_scanned, 12);
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.parse_calls, 2);
    }

    #[test]
    fn summary_mentions_fields() {
        let m = ExecMetrics {
            rows_scanned: 42,
            ..Default::default()
        };
        assert!(m.summary().contains("rows=42"));
    }
}
