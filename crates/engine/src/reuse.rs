//! Cross-query result & intermediate reuse cache.
//!
//! Maxson's JSONPath cache removes duplicate *parsing*; this cache removes
//! duplicate *execution* one level up the stack. It is a process-wide,
//! thread-safe store of (a) full query results and (b) reusable
//! intermediate fragments (the statement below its `LIMIT`/`DISTINCT`
//! top), keyed on the canonical normalized fingerprint from
//! [`crate::fingerprint`] plus the active JSON parser (parsers may
//! legitimately diverge on malformed documents, so cross-parser reuse is
//! unsound).
//!
//! **Admission** is cost-modelled, not blind (after "Revisiting Reuse in
//! Main Memory Database Systems"): the cache keeps an EWMA of each
//! fingerprint's observed recompute wall from `ExecMetrics` history, and
//! an entry is admitted only when small or when its estimated recompute
//! cost per resident byte clears a floor. Oversized entries (more than a
//! quarter of the budget) are always rejected.
//!
//! **Eviction** is LRU-with-frequency under a byte budget
//! (`MAXSON_RESULT_CACHE_MB` / `Session::set_result_cache`): victims are
//! chosen by least (frequency, recency), but a victim whose
//! benefit-per-byte score exceeds the incoming entry's is never displaced
//! for it — the candidate is rejected instead (the budget-constrained
//! scoring of the multi-query-optimization line of work).
//!
//! **Correctness is epoch-anchored**: every entry records the warehouse
//! epoch at fill time and a probe only matches entries from the probing
//! plan's epoch, so the midnight-cycle atomic epoch swap invalidates the
//! whole cache in O(1) by generation check (plus an eager clear to release
//! memory). Per-table dependency tracking invalidates finer-grained when
//! a single table is rewritten through the catalog write lock.
//!
//! Data writes do **not** bump the epoch, so epoch matching alone cannot
//! stop a fill that races a catalog write: a query planned before the
//! write executes against its pre-write table snapshot and would fill
//! *after* the writer's invalidation, at the unchanged epoch, leaving a
//! persistently stale entry. Every invalidation therefore also bumps a
//! *write generation*; callers capture [`ReuseCache::generation`] at
//! planning time (under the same warehouse read lock that pins their
//! table snapshot) and [`ReuseCache::fill`] rejects any offer whose
//! planning-time generation is no longer current.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use maxson_storage::{Cell, Schema};

use crate::error::Result;
use crate::metrics::ExecMetrics;
use crate::scan::ScanProvider;

/// Entries at or below this size are admitted without consulting the cost
/// model — the bookkeeping outweighs any misjudgement.
const SMALL_ENTRY_BYTES: u64 = 64 * 1024;

/// Cost-model floor: estimated recompute nanoseconds per resident byte.
/// Entries cheaper than ~1 ns/byte to rebuild are not worth holding.
const MIN_NS_PER_BYTE: f64 = 1.0;

/// What a probe found.
#[derive(Debug, Clone)]
pub struct CachedEntry {
    /// The cached rows (shared; serving a hit is a refcount bump).
    pub rows: Arc<Vec<Vec<Cell>>>,
    /// Output schema of the cached rows (needed to rebuild operators over
    /// a fragment).
    pub schema: Schema,
}

/// What a fill attempt did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillOutcome {
    /// Entry admitted and resident.
    Admitted,
    /// Rejected by the cost model or the oversize guard.
    Rejected,
    /// The cache is disabled (poisoned or switched off).
    Disabled,
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReuseStats {
    /// Full-result probe hits.
    pub hits: u64,
    /// Probe misses (including epoch-mismatch bypasses).
    pub misses: u64,
    /// Fragment probe hits (result rebuilt over cached intermediate).
    pub fragment_hits: u64,
    /// Entries admitted.
    pub fills: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Fill offers rejected because an invalidation ran between the
    /// offering query's planning and its fill (the stale-fill guard).
    pub stale_rejects: u64,
    /// Resident entry bytes.
    pub bytes_resident: u64,
    /// Configured byte budget.
    pub budget_bytes: u64,
    /// `true` once the cache has disabled itself after a contained
    /// fill-path panic.
    pub disabled: bool,
}

#[derive(Debug)]
struct Entry {
    rows: Arc<Vec<Vec<Cell>>>,
    schema: Schema,
    /// Warehouse epoch at fill time; probes from other epochs miss.
    epoch: u64,
    /// `db.table` identities this entry was computed from.
    tables: Vec<String>,
    bytes: u64,
    /// Times this entry served a hit (+1 at fill).
    freq: u64,
    /// Logical clock of the last touch (for LRU ordering).
    last_used: u64,
    /// EWMA recompute wall, nanoseconds (benefit side of the score).
    est_wall_ns: u64,
}

impl Entry {
    /// Benefit-per-byte score used to protect valuable residents.
    fn score(&self) -> f64 {
        (self.freq as f64) * (self.est_wall_ns as f64) / (self.bytes.max(1) as f64)
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, Entry>,
    /// Logical clock; bumped on every touch.
    clock: u64,
    /// Resident bytes across all entries.
    bytes: u64,
    /// EWMA recompute wall per fingerprint, kept even for keys that were
    /// never admitted (history informs the *next* admission decision).
    cost: HashMap<u64, u64>,
    /// Write generation: bumped by every invalidation. A fill whose
    /// planning-time generation no longer matches raced a catalog write —
    /// its rows come from a pre-write snapshot and must not be admitted.
    write_gen: u64,
}

/// The process-wide reuse cache. See the module docs for policy details.
#[derive(Debug)]
pub struct ReuseCache {
    inner: Mutex<Inner>,
    budget_bytes: AtomicU64,
    /// Set after a contained fill-path panic: the cache stops serving and
    /// stops filling, loudly (callers surface `reuse=disabled`).
    disabled: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    fragment_hits: AtomicU64,
    fills: AtomicU64,
    evictions: AtomicU64,
    stale_rejects: AtomicU64,
    /// Test hook: the next fill panics inside the cache, exercising the
    /// containment path end to end.
    inject_fill_panic: AtomicBool,
}

impl ReuseCache {
    /// A cache with a byte budget of `budget_mb` MiB.
    pub fn new(budget_mb: u64) -> Self {
        ReuseCache {
            inner: Mutex::new(Inner::default()),
            budget_bytes: AtomicU64::new(budget_mb.saturating_mul(1024 * 1024)),
            disabled: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fragment_hits: AtomicU64::new(0),
            fills: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_rejects: AtomicU64::new(0),
            inject_fill_panic: AtomicBool::new(false),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned inner lock means a fill panicked mid-update; the
        // cache has already disabled itself, and the map is only ever in
        // a consistent state between entry operations, so recover.
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Probe for `key` at `epoch`. A full-result hit bumps `hits`; pass
    /// `fragment = true` to charge `fragment_hits` instead. Entries from
    /// other epochs are removed and count as misses.
    pub fn lookup(&self, key: u64, epoch: u64, fragment: bool) -> Option<CachedEntry> {
        if self.disabled.load(Ordering::Relaxed) {
            return None;
        }
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(&key) {
            Some(e) if e.epoch == epoch => {
                e.freq += 1;
                e.last_used = clock;
                let found = CachedEntry {
                    rows: Arc::clone(&e.rows),
                    schema: e.schema.clone(),
                };
                drop(inner);
                if fragment {
                    self.fragment_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                }
                Some(found)
            }
            Some(_) => {
                // Stale epoch: never serve, drop eagerly.
                let e = inner.map.remove(&key).expect("entry just matched");
                inner.bytes -= e.bytes;
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The current write generation. Capture it at planning time, under
    /// the same warehouse read lock that pins the plan's table snapshots,
    /// and hand it back to [`ReuseCache::fill`] — any invalidation in
    /// between makes the fill a stale offer and it is rejected.
    pub fn generation(&self) -> u64 {
        self.lock().write_gen
    }

    /// Offer an entry for admission. The caller has already executed the
    /// query; `rows` are the finished output (shared, so admission never
    /// copies them). `planned_gen` is the [`ReuseCache::generation`]
    /// observed when the query planned: a mismatch means an invalidation
    /// (catalog write, table append, epoch swap) ran while the query was
    /// executing, so its rows come from a pre-invalidation snapshot and
    /// admitting them would serve stale results persistently.
    pub fn fill(
        &self,
        key: u64,
        rows: Arc<Vec<Vec<Cell>>>,
        schema: Schema,
        epoch: u64,
        tables: Vec<String>,
        wall_ns: u64,
        planned_gen: u64,
    ) -> FillOutcome {
        if self.disabled.load(Ordering::Relaxed) {
            return FillOutcome::Disabled;
        }
        if self.inject_fill_panic.swap(false, Ordering::SeqCst) {
            panic!("reuse: injected fill-path panic");
        }
        let bytes = rows_bytes(&rows);
        let budget = self.budget_bytes.load(Ordering::Relaxed);
        let mut inner = self.lock();
        if inner.write_gen != planned_gen {
            // Stale-fill guard: the snapshot these rows were computed
            // from has been invalidated since planning.
            drop(inner);
            self.stale_rejects.fetch_add(1, Ordering::Relaxed);
            return FillOutcome::Rejected;
        }
        // Cost history accumulates before any admission decision, so even
        // keys rejected today inform tomorrow's estimate.
        let slot = inner.cost.entry(key).or_insert(wall_ns);
        *slot = (*slot + wall_ns) / 2;
        let est_wall_ns = *slot;
        if bytes > budget / 4 {
            return FillOutcome::Rejected;
        }
        if bytes > SMALL_ENTRY_BYTES
            && (est_wall_ns as f64) / (bytes.max(1) as f64) < MIN_NS_PER_BYTE
        {
            return FillOutcome::Rejected;
        }
        // Replace any stale entry under the same key first.
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        let candidate_score = (est_wall_ns as f64) / (bytes.max(1) as f64);
        // Choose victims by least (freq, last_used) until the candidate
        // fits, but commit nothing until admission is certain: meeting a
        // resident worth more per byte than the candidate rejects the
        // candidate with every resident intact (evict-then-reject would
        // lose entries without gaining one).
        let mut victims: Vec<u64> = Vec::new();
        let mut evicted = 0u64;
        if inner.bytes + bytes > budget {
            let mut order: Vec<(u64, u64, u64, f64, u64)> = inner
                .map
                .iter()
                .map(|(k, e)| (e.freq, e.last_used, *k, e.score(), e.bytes))
                .collect();
            order.sort_unstable_by_key(|&(freq, last_used, ..)| (freq, last_used));
            let mut freed = 0u64;
            for (_, _, vkey, vscore, vbytes) in order {
                if inner.bytes - freed + bytes <= budget {
                    break;
                }
                // Never displace a resident worth more per byte than the
                // candidate — reject the candidate instead.
                if vscore > candidate_score {
                    return FillOutcome::Rejected;
                }
                victims.push(vkey);
                freed += vbytes;
            }
            if inner.bytes - freed + bytes > budget {
                // Even a full sweep cannot make room.
                return FillOutcome::Rejected;
            }
            for vkey in victims {
                let e = inner.map.remove(&vkey).expect("victim present");
                inner.bytes -= e.bytes;
                evicted += 1;
            }
        }
        inner.clock += 1;
        let last_used = inner.clock;
        inner.bytes += bytes;
        inner.map.insert(
            key,
            Entry {
                rows,
                schema,
                epoch,
                tables,
                bytes,
                freq: 1,
                last_used,
                est_wall_ns,
            },
        );
        drop(inner);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        self.fills.fetch_add(1, Ordering::Relaxed);
        FillOutcome::Admitted
    }

    /// Drop every entry that depends on `table` (`db.table` identity from
    /// [`crate::fingerprint::table_key`]).
    pub fn invalidate_table(&self, table: &str) {
        let mut inner = self.lock();
        let dead: Vec<u64> = inner
            .map
            .iter()
            .filter(|(_, e)| e.tables.iter().any(|t| t == table))
            .map(|(k, _)| *k)
            .collect();
        for k in dead {
            let e = inner.map.remove(&k).expect("key listed");
            inner.bytes -= e.bytes;
        }
        // Kill in-flight fills too: a query planned before this table was
        // appended to must not install its pre-append rows afterwards.
        // (Conservative for queries over unrelated tables — they re-offer
        // on their next execution.)
        inner.write_gen += 1;
    }

    /// Drop every entry (catalog-wide change or epoch swap). Cost history
    /// survives — recompute estimates stay useful across generations.
    pub fn invalidate_all(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.bytes = 0;
        // In-flight fills were planned against pre-invalidation snapshots;
        // the generation bump makes their offers dead on arrival.
        inner.write_gen += 1;
    }

    /// Disable the cache after a contained failure. It stops serving and
    /// filling until the process restarts (loud by design: callers report
    /// `reuse=disabled` and charge a counter).
    pub fn disable(&self) {
        self.disabled.store(true, Ordering::SeqCst);
    }

    /// `true` once [`ReuseCache::disable`] has run.
    pub fn is_disabled(&self) -> bool {
        self.disabled.load(Ordering::Relaxed)
    }

    /// Arm the fill-path panic test hook (next fill panics once).
    pub fn inject_fill_panic(&self) {
        self.inject_fill_panic.store(true, Ordering::SeqCst);
    }

    /// Change the byte budget at runtime (existing entries are evicted on
    /// the next fill if over the new budget).
    pub fn set_budget_mb(&self, budget_mb: u64) {
        self.budget_bytes
            .store(budget_mb.saturating_mul(1024 * 1024), Ordering::Relaxed);
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> ReuseStats {
        let inner = self.lock();
        ReuseStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            fragment_hits: self.fragment_hits.load(Ordering::Relaxed),
            fills: self.fills.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale_rejects: self.stale_rejects.load(Ordering::Relaxed),
            bytes_resident: inner.bytes,
            budget_bytes: self.budget_bytes.load(Ordering::Relaxed),
            disabled: self.disabled.load(Ordering::Relaxed),
        }
    }
}

/// Estimated resident size of a row set: container overhead plus
/// per-cell payloads (strings by length; scalars by 16 bytes of enum).
fn rows_bytes(rows: &[Vec<Cell>]) -> u64 {
    let mut bytes = std::mem::size_of::<Vec<Vec<Cell>>>() as u64;
    for row in rows {
        bytes += std::mem::size_of::<Vec<Cell>>() as u64;
        for cell in row {
            bytes += 16;
            if let Cell::Str(s) = cell {
                bytes += s.len() as u64;
            }
        }
    }
    bytes
}

/// Scan provider that replays cached fragment rows. Rebuilt operators
/// (`LIMIT`, `DISTINCT`) execute over this scan; it charges nothing to
/// the read/parse phases because no I/O or parsing happens.
#[derive(Debug)]
pub struct CachedRowsProvider {
    rows: Arc<Vec<Vec<Cell>>>,
    schema: Schema,
}

impl CachedRowsProvider {
    /// Wrap a cache entry for scanning.
    pub fn new(entry: CachedEntry) -> Self {
        CachedRowsProvider {
            rows: entry.rows,
            schema: entry.schema,
        }
    }
}

impl ScanProvider for CachedRowsProvider {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn scan(&self, _metrics: &mut ExecMetrics) -> Result<Vec<Vec<Cell>>> {
        Ok((*self.rows).clone())
    }

    fn label(&self) -> String {
        format!("ReuseFragment({} rows)", self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxson_storage::{ColumnType, Field};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("a", ColumnType::Int64)]).unwrap()
    }

    fn rows(n: usize) -> Arc<Vec<Vec<Cell>>> {
        Arc::new((0..n).map(|i| vec![Cell::Int(i as i64)]).collect())
    }

    /// A wall estimate big enough that the ns/byte floor never interferes
    /// with the policy under test.
    const EXPENSIVE: u64 = u64::MAX / 4;

    #[test]
    fn hit_after_fill_and_miss_on_other_key() {
        let c = ReuseCache::new(16);
        assert!(c.lookup(1, 0, false).is_none());
        assert_eq!(
            c.fill(
                1,
                rows(4),
                schema(),
                0,
                vec!["db.t".into()],
                EXPENSIVE,
                c.generation()
            ),
            FillOutcome::Admitted
        );
        let hit = c.lookup(1, 0, false).expect("filled key hits");
        assert_eq!(hit.rows.len(), 4);
        assert!(c.lookup(2, 0, false).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.fills), (1, 2, 1));
    }

    #[test]
    fn epoch_mismatch_never_serves_and_drops_the_entry() {
        let c = ReuseCache::new(16);
        c.fill(
            1,
            rows(4),
            schema(),
            7,
            vec!["db.t".into()],
            EXPENSIVE,
            c.generation(),
        );
        assert!(c.lookup(1, 8, false).is_none(), "stale epoch must miss");
        assert_eq!(c.stats().bytes_resident, 0, "stale entry dropped eagerly");
        assert!(c.lookup(1, 7, false).is_none(), "entry is gone for good");
    }

    #[test]
    fn table_invalidation_is_selective() {
        let c = ReuseCache::new(16);
        c.fill(
            1,
            rows(2),
            schema(),
            0,
            vec!["db.a".into()],
            EXPENSIVE,
            c.generation(),
        );
        c.fill(
            2,
            rows(2),
            schema(),
            0,
            vec!["db.b".into()],
            EXPENSIVE,
            c.generation(),
        );
        c.invalidate_table("db.a");
        assert!(c.lookup(1, 0, false).is_none());
        assert!(c.lookup(2, 0, false).is_some());
    }

    #[test]
    fn invalidate_all_empties_but_keeps_cost_history() {
        let c = ReuseCache::new(16);
        c.fill(
            1,
            rows(2),
            schema(),
            0,
            vec!["db.t".into()],
            EXPENSIVE,
            c.generation(),
        );
        c.invalidate_all();
        assert!(c.lookup(1, 0, false).is_none());
        assert_eq!(c.stats().bytes_resident, 0);
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let c = ReuseCache::new(1); // 1 MiB budget -> 256 KiB oversize line
        let big: Arc<Vec<Vec<Cell>>> = Arc::new(
            (0..5000)
                .map(|_| vec![Cell::Str(Arc::from("x".repeat(100)))])
                .collect(),
        );
        assert_eq!(
            c.fill(
                1,
                big,
                schema(),
                0,
                vec!["db.t".into()],
                EXPENSIVE,
                c.generation()
            ),
            FillOutcome::Rejected
        );
        assert_eq!(c.stats().bytes_resident, 0);
    }

    #[test]
    fn cheap_large_entries_fail_the_cost_model() {
        let c = ReuseCache::new(64);
        let large: Arc<Vec<Vec<Cell>>> = Arc::new(
            (0..2000)
                .map(|_| vec![Cell::Str(Arc::from("y".repeat(64)))])
                .collect(),
        );
        // ~160 KB entry, 1000 ns to recompute: far below 1 ns/byte.
        assert_eq!(
            c.fill(
                1,
                large,
                schema(),
                0,
                vec!["db.t".into()],
                1000,
                c.generation()
            ),
            FillOutcome::Rejected
        );
        // Small entries skip the cost model entirely.
        assert_eq!(
            c.fill(
                2,
                rows(1),
                schema(),
                0,
                vec!["db.t".into()],
                1,
                c.generation()
            ),
            FillOutcome::Admitted
        );
    }

    #[test]
    fn eviction_respects_budget_and_prefers_cold_entries() {
        let c = ReuseCache::new(1);
        // ~50 KiB each; 1 MiB budget holds ~20.
        let make = || -> Arc<Vec<Vec<Cell>>> {
            Arc::new(
                (0..500)
                    .map(|_| vec![Cell::Str(Arc::from("z".repeat(80)))])
                    .collect(),
            )
        };
        for key in 0..30u64 {
            c.fill(
                key,
                make(),
                schema(),
                0,
                vec!["db.t".into()],
                EXPENSIVE,
                c.generation(),
            );
        }
        let s = c.stats();
        assert!(s.evictions > 0, "filling past budget must evict");
        assert!(
            s.bytes_resident <= s.budget_bytes,
            "resident {} exceeds budget {}",
            s.bytes_resident,
            s.budget_bytes
        );
    }

    #[test]
    fn resident_bytes_never_exceed_budget_under_churn() {
        let c = ReuseCache::new(1);
        for key in 0..200u64 {
            let n = 50 + (key as usize % 300);
            c.fill(
                key,
                rows(n),
                schema(),
                0,
                vec!["db.t".into()],
                EXPENSIVE,
                c.generation(),
            );
            if key % 3 == 0 {
                c.lookup(key / 2, 0, false);
            }
            let s = c.stats();
            assert!(s.bytes_resident <= s.budget_bytes);
        }
    }

    #[test]
    fn disabled_cache_neither_serves_nor_fills() {
        let c = ReuseCache::new(16);
        c.fill(
            1,
            rows(2),
            schema(),
            0,
            vec!["db.t".into()],
            EXPENSIVE,
            c.generation(),
        );
        c.disable();
        assert!(c.lookup(1, 0, false).is_none());
        assert_eq!(
            c.fill(
                2,
                rows(2),
                schema(),
                0,
                vec!["db.t".into()],
                EXPENSIVE,
                c.generation()
            ),
            FillOutcome::Disabled
        );
        assert!(c.stats().disabled);
    }

    #[test]
    fn injected_fill_panic_fires_once() {
        let c = ReuseCache::new(16);
        c.inject_fill_panic();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.fill(
                1,
                rows(2),
                schema(),
                0,
                vec!["db.t".into()],
                EXPENSIVE,
                c.generation(),
            )
        }));
        assert!(r.is_err(), "armed hook must panic");
        // Hook disarms itself; the next fill succeeds.
        assert_eq!(
            c.fill(
                1,
                rows(2),
                schema(),
                0,
                vec!["db.t".into()],
                EXPENSIVE,
                c.generation()
            ),
            FillOutcome::Admitted
        );
    }

    #[test]
    fn fill_racing_an_invalidation_is_rejected() {
        let c = ReuseCache::new(16);
        // "Plan" before the write...
        let planned_gen = c.generation();
        // ...a concurrent writer invalidates (catalog write / append)...
        c.invalidate_table("db.t");
        // ...and the in-flight query's fill arrives late: dead on arrival,
        // because its rows were computed from the pre-write snapshot.
        assert_eq!(
            c.fill(
                1,
                rows(4),
                schema(),
                0,
                vec!["db.t".into()],
                EXPENSIVE,
                planned_gen
            ),
            FillOutcome::Rejected
        );
        assert!(
            c.lookup(1, 0, false).is_none(),
            "stale rows must not be admitted"
        );
        assert_eq!(c.stats().stale_rejects, 1);
        // A fill planned after the invalidation is admitted normally.
        assert_eq!(
            c.fill(
                1,
                rows(4),
                schema(),
                0,
                vec!["db.t".into()],
                EXPENSIVE,
                c.generation()
            ),
            FillOutcome::Admitted
        );
    }

    #[test]
    fn every_invalidation_path_bumps_the_write_generation() {
        let c = ReuseCache::new(16);
        let g0 = c.generation();
        c.invalidate_table("db.t");
        let g1 = c.generation();
        assert!(g1 > g0, "table invalidation must bump the generation");
        c.invalidate_all();
        assert!(c.generation() > g1, "full invalidation must bump it too");
    }

    #[test]
    fn protected_victim_rejects_candidate_without_collateral_evictions() {
        let c = ReuseCache::new(1); // 1 MiB budget
        let gen = c.generation();
        let strs = |n: usize| -> Arc<Vec<Vec<Cell>>> {
            Arc::new(
                (0..n)
                    .map(|_| vec![Cell::Str(Arc::from("x".repeat(100)))])
                    .collect(),
            )
        };
        // ~140 bytes per row. Fill order fixes the (freq, last_used) scan
        // order: a tiny, cheap entry first (the evictable head of the
        // victim scan)...
        c.fill(1, strs(70), schema(), 0, vec!["db.t".into()], 1_000, gen);
        // ...then a same-freq but high-value resident the policy protects...
        c.fill(
            2,
            strs(1800),
            schema(),
            0,
            vec!["db.t".into()],
            EXPENSIVE,
            gen,
        );
        // ...then hotter residents that fill the budget.
        for key in 3..6u64 {
            c.fill(
                key,
                strs(1800),
                schema(),
                0,
                vec!["db.t".into()],
                EXPENSIVE,
                gen,
            );
            c.lookup(key, 0, false);
            c.lookup(key, 0, false);
        }
        let before = c.stats();
        // Candidate (~98 KiB, mid score): evicting key 1 is not enough
        // room, and the next victim in scan order — key 2 — scores higher
        // than the candidate, so the offer must be rejected with *nothing*
        // displaced (not evict-key-1-then-reject).
        assert_eq!(
            c.fill(
                9,
                strs(700),
                schema(),
                0,
                vec!["db.t".into()],
                1_000_000_000,
                gen
            ),
            FillOutcome::Rejected
        );
        let after = c.stats();
        assert_eq!(
            after.bytes_resident, before.bytes_resident,
            "a rejected candidate must not cost residents"
        );
        assert_eq!(after.evictions, before.evictions);
        assert!(
            c.lookup(1, 0, false).is_some(),
            "the low-score resident survives the rejected offer"
        );
    }

    #[test]
    fn cached_rows_provider_replays_without_charging() {
        let c = ReuseCache::new(16);
        c.fill(
            1,
            rows(3),
            schema(),
            0,
            vec!["db.t".into()],
            EXPENSIVE,
            c.generation(),
        );
        let entry = c.lookup(1, 0, true).unwrap();
        assert_eq!(c.stats().fragment_hits, 1);
        let provider = CachedRowsProvider::new(entry);
        let mut m = ExecMetrics::default();
        let out = provider.scan(&mut m).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(m.docs_parsed, 0);
        assert_eq!(m.bytes_read, 0);
    }
}
