//! Canonical query identity: one normalization + one hash, shared by the
//! query log, the cross-query reuse cache, and workload-sketch attribution.
//!
//! Identity is computed over the *SQL-level* statement (the parsed
//! [`SelectStatement`]), not the physical plan. That makes the fingerprint
//! invariant to scan-rewriter installs by construction: a Maxson
//! cache-rewritten plan fingerprints identically to its logical source,
//! because the rewrite happens below the level the key is derived from.
//! It is also machine-independent (no warehouse root paths leak into the
//! text) and stable across sessions.
//!
//! Normalization makes trivially-equivalent statements collide:
//!
//! * **Predicate commutativity/ordering** — `AND`/`OR` chains are
//!   flattened and their operands sorted; the operands of symmetric
//!   binary operators (`=`, `<>`, `+`, `*`) are sorted; `IN` list members
//!   are sorted.
//! * **Alias insensitivity** — output aliases are dropped (projection
//!   identity is the expressions, not the names they are exported under)
//!   and table aliases are rewritten to positional placeholders
//!   (`t0`, `t1`), so `from db.t x` and `from db.t y` agree.
//! * **Whitespace/case insensitivity** — falls out of rendering the parsed
//!   AST rather than the source text.
//! * **Literal-preserving** — literals render exactly; changing a literal
//!   changes the key.
//!
//! Projection order, `GROUP BY` order, `ORDER BY`, `LIMIT`, and `DISTINCT`
//! all affect the visible result, so they stay in the key. The reuse
//! cache's *fragment* key is the same rendering with `LIMIT`/`DISTINCT`
//! cleared — see [`canonical_fragment_text`].

use crate::sql::ast::{BinaryOp, SelectItem, SelectStatement, SqlExpr, TableRef};

/// FNV-1a 64-bit hash (the identity hash; stable by spec, golden-tested
/// against the published vectors below).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// The shared `(db, table)` identity key used by workload-sketch
/// attribution and the reuse cache's per-table dependency tracking.
pub fn table_key(database: &str, table: &str) -> String {
    format!("{database}.{table}")
}

/// Canonical text of a whole statement — the query-log fingerprint input
/// and the reuse cache's full-result key input.
pub fn canonical_stmt_text(stmt: &SelectStatement) -> String {
    render_stmt(stmt, true, true)
}

/// Canonical text of the statement's reusable fragment: the statement with
/// `LIMIT` and `DISTINCT` cleared. Two queries that differ only in those
/// cheap top operators share this key (and hence the cached rows below
/// them). Returns `None` when the fragment would equal the full statement
/// (no `LIMIT`/`DISTINCT` to peel), so callers skip double-caching.
pub fn canonical_fragment_text(stmt: &SelectStatement) -> Option<String> {
    if stmt.limit.is_none() && !stmt.distinct {
        return None;
    }
    Some(render_stmt(stmt, false, false))
}

/// Fingerprint of a statement (FNV-1a over the canonical text). This is
/// the value the query log records and the workload analyses join on.
pub fn stmt_fingerprint(stmt: &SelectStatement) -> u64 {
    fnv1a64(canonical_stmt_text(stmt).as_bytes())
}

/// Reuse-cache key over a canonical text (full or fragment). The parser
/// is part of the identity: parsers may legitimately diverge on malformed
/// documents, so reuse across parser modes would be unsound. A statement's
/// *fragment* key equals the *full* key of the peeled statement (the one
/// with no `LIMIT`/`DISTINCT`), so `select ... limit 5` can be rebuilt
/// from the cached result of plain `select ...` and vice versa — one key
/// space, no kind markers.
pub fn reuse_key(parser: &str, canonical_text: &str) -> u64 {
    fnv1a64(format!("{parser}\0{canonical_text}").as_bytes())
}

fn render_stmt(stmt: &SelectStatement, with_limit: bool, with_distinct: bool) -> String {
    let aliases = AliasMap::of(stmt);
    let mut out = String::from("select");
    if with_distinct && stmt.distinct {
        out.push_str(" distinct");
    }
    out.push('[');
    for (i, item) in stmt.items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            // Alias dropped: projection identity is the expression.
            SelectItem::Expr { expr, .. } => out.push_str(&expr_text(expr, &aliases)),
        }
    }
    out.push(']');
    out.push_str(" from ");
    out.push_str(&table_text(&stmt.from));
    if let Some(join) = &stmt.join {
        out.push_str(" join ");
        out.push_str(&table_text(&join.table));
        // The equi-join condition is symmetric as a pair.
        let mut sides = [
            expr_text(&join.on_left, &aliases),
            expr_text(&join.on_right, &aliases),
        ];
        sides.sort();
        out.push_str(&format!(" on({},{})", sides[0], sides[1]));
    }
    if let Some(w) = &stmt.where_clause {
        out.push_str(" where ");
        out.push_str(&expr_text(w, &aliases));
    }
    if !stmt.group_by.is_empty() {
        out.push_str(" group[");
        for (i, g) in stmt.group_by.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&expr_text(g, &aliases));
        }
        out.push(']');
    }
    if let Some(h) = &stmt.having {
        out.push_str(" having ");
        out.push_str(&expr_text(h, &aliases));
    }
    if !stmt.order_by.is_empty() {
        out.push_str(" order[");
        for (i, o) in stmt.order_by.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&expr_text(&o.expr, &aliases));
            out.push_str(if o.asc { " asc" } else { " desc" });
        }
        out.push(']');
    }
    if with_distinct && stmt.distinct {
        out.push_str(" distinct");
    }
    if with_limit {
        if let Some(n) = stmt.limit {
            out.push_str(&format!(" limit {n}"));
        }
    }
    out
}

fn table_text(t: &TableRef) -> String {
    // Alias dropped; qualified references go through the AliasMap instead.
    table_key(&t.database, &t.table)
}

/// Positional table-alias rewriting: the FROM table's alias becomes `t0`,
/// the joined table's `t1`, so alias spelling never reaches the key.
struct AliasMap {
    from: Option<String>,
    join: Option<String>,
}

impl AliasMap {
    fn of(stmt: &SelectStatement) -> AliasMap {
        AliasMap {
            from: stmt.from.alias.clone(),
            join: stmt.join.as_ref().and_then(|j| j.table.alias.clone()),
        }
    }

    fn rewrite<'a>(&self, qualifier: &'a str) -> &'a str {
        if self.from.as_deref() == Some(qualifier) {
            "t0"
        } else if self.join.as_deref() == Some(qualifier) {
            "t1"
        } else {
            qualifier
        }
    }
}

/// `true` for operators where `a op b` and `b op a` produce identical
/// results under this engine's semantics (so operand order may be
/// canonicalized away).
fn is_symmetric(op: BinaryOp) -> bool {
    matches!(
        op,
        BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::And
            | BinaryOp::Or
            | BinaryOp::Add
            | BinaryOp::Mul
    )
}

fn op_name(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Eq => "eq",
        BinaryOp::NotEq => "ne",
        BinaryOp::Lt => "lt",
        BinaryOp::LtEq => "le",
        BinaryOp::Gt => "gt",
        BinaryOp::GtEq => "ge",
        BinaryOp::And => "and",
        BinaryOp::Or => "or",
        BinaryOp::Add => "add",
        BinaryOp::Sub => "sub",
        BinaryOp::Mul => "mul",
        BinaryOp::Div => "div",
        BinaryOp::Mod => "mod",
    }
}

/// Flatten a left/right-nested chain of one associative operator into its
/// leaf operands (`(a AND b) AND c` -> `[a, b, c]`).
fn flatten_chain<'a>(e: &'a SqlExpr, op: BinaryOp, out: &mut Vec<&'a SqlExpr>) {
    match e {
        SqlExpr::Binary { left, op: o, right } if *o == op => {
            flatten_chain(left, op, out);
            flatten_chain(right, op, out);
        }
        other => out.push(other),
    }
}

fn expr_text(e: &SqlExpr, aliases: &AliasMap) -> String {
    match e {
        SqlExpr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{}.{name}", aliases.rewrite(q)),
            None => name.clone(),
        },
        // Debug rendering of `Cell` is stable and type-tagged, so `1`,
        // `1.0`, and `'1'` stay distinct (literal-preserving).
        SqlExpr::Literal(c) => format!("lit({c:?})"),
        SqlExpr::GetJsonObject { column, path } => {
            format!("json({},{path})", expr_text(column, aliases))
        }
        SqlExpr::Binary { left, op, right } => {
            if matches!(op, BinaryOp::And | BinaryOp::Or) {
                // Flatten the whole chain and sort the conjunct/disjunct
                // renderings: `a AND (b AND c)` == `(c AND b) AND a`.
                let mut leaves = Vec::new();
                flatten_chain(e, *op, &mut leaves);
                let mut texts: Vec<String> = leaves.iter().map(|l| expr_text(l, aliases)).collect();
                texts.sort();
                return format!("{}({})", op_name(*op), texts.join(","));
            }
            let mut sides = [expr_text(left, aliases), expr_text(right, aliases)];
            if is_symmetric(*op) {
                sides.sort();
            }
            format!("{}({},{})", op_name(*op), sides[0], sides[1])
        }
        SqlExpr::Not(x) => format!("not({})", expr_text(x, aliases)),
        SqlExpr::Neg(x) => format!("neg({})", expr_text(x, aliases)),
        SqlExpr::IsNull { expr, negated } => format!(
            "{}({})",
            if *negated { "isnotnull" } else { "isnull" },
            expr_text(expr, aliases)
        ),
        SqlExpr::Between { expr, low, high } => format!(
            "between({},{},{})",
            expr_text(expr, aliases),
            expr_text(low, aliases),
            expr_text(high, aliases)
        ),
        SqlExpr::Aggregate { func, arg } => format!(
            "{}({})",
            func.name(),
            arg.as_ref()
                .map_or_else(|| "*".to_string(), |a| expr_text(a, aliases))
        ),
        SqlExpr::InList {
            expr,
            items,
            negated,
        } => {
            // IN-list membership is order-insensitive.
            let mut texts: Vec<String> = items.iter().map(|i| expr_text(i, aliases)).collect();
            texts.sort();
            format!(
                "{}({},[{}])",
                if *negated { "notin" } else { "in" },
                expr_text(expr, aliases),
                texts.join(",")
            )
        }
        SqlExpr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "{}({},{pattern:?})",
            if *negated { "notlike" } else { "like" },
            expr_text(expr, aliases)
        ),
        SqlExpr::Function { func, args } => {
            let texts: Vec<String> = args.iter().map(|a| expr_text(a, aliases)).collect();
            format!(
                "{}({})",
                format!("{func:?}").to_ascii_lowercase(),
                texts.join(",")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse_select;

    fn fp(sql: &str) -> u64 {
        stmt_fingerprint(&parse_select(sql).unwrap())
    }

    fn text(sql: &str) -> String {
        canonical_stmt_text(&parse_select(sql).unwrap())
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors — the identity hash must never
        // change, or every logged fingerprint silently re-keys.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn canonical_text_is_pinned() {
        // Golden canonical renderings: a change here re-keys every logged
        // fingerprint and silently empties warm reuse caches — bump only
        // with a DESIGN note.
        assert_eq!(
            text("select a, get_json_object(b, '$.x') as x from db.t where a > 3 limit 7"),
            "select[a,json(b,$.x)] from db.t where gt(a,lit(Int(3))) limit 7"
        );
        assert_eq!(
            text("SELECT DISTINCT a FROM db.t ORDER BY a DESC"),
            "select distinct[a] from db.t order[a desc] distinct"
        );
    }

    #[test]
    fn fingerprints_are_pinned() {
        // Golden fingerprint values (FNV-1a of the canonical texts above).
        assert_eq!(
            fp("select a, get_json_object(b, '$.x') as x from db.t where a > 3 limit 7"),
            fnv1a64(b"select[a,json(b,$.x)] from db.t where gt(a,lit(Int(3))) limit 7")
        );
    }

    #[test]
    fn whitespace_case_and_aliases_do_not_matter() {
        let a = fp("select get_json_object(payload, '$.a') as x from db.t where id < 5");
        let b = fp("SELECT   get_json_object(payload,'$.a')  AS y\nFROM db.t WHERE id < 5");
        assert_eq!(a, b, "whitespace/case/alias must not re-key");
    }

    #[test]
    fn table_aliases_are_positional() {
        let a = fp("select x.id from db.t x where x.id = 1");
        let b = fp("select y.id from db.t y where y.id = 1");
        assert_eq!(a, b);
    }

    #[test]
    fn commutative_predicates_collide() {
        let a = fp("select id from db.t where id > 1 and id < 9");
        let b = fp("select id from db.t where id < 9 and id > 1");
        assert_eq!(a, b, "AND conjunct order must not re-key");
        let c = fp("select id from db.t where 1 < id and id < 9");
        assert_ne!(
            fp("select id from db.t where id > 1"),
            fp("select id from db.t where id > 2"),
            "literals are preserved"
        );
        // `1 < id` and `id > 1` differ structurally (Lt vs Gt is not
        // symmetric); only trivial equivalences are required to collide.
        let _ = c;
    }

    #[test]
    fn nested_chains_flatten() {
        let a = fp("select id from db.t where (id > 1 and id < 9) and id <> 5");
        let b = fp("select id from db.t where id <> 5 and (id < 9 and id > 1)");
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_operand_order_collides() {
        let a = fp("select id from db.t where id = 3");
        let b = fp("select id from db.t where 3 = id");
        assert_eq!(a, b);
        let c = fp("select id from db.t where id in (1, 2, 3)");
        let d = fp("select id from db.t where id in (3, 1, 2)");
        assert_eq!(c, d);
    }

    #[test]
    fn semantic_differences_do_not_collide() {
        assert_ne!(
            fp("select a, b from db.t"),
            fp("select b, a from db.t"),
            "projection order is visible"
        );
        assert_ne!(
            fp("select a from db.t limit 5"),
            fp("select a from db.t limit 6")
        );
        assert_ne!(fp("select a from db.t"), fp("select distinct a from db.t"));
        assert_ne!(
            fp("select a from db.t where a like 'x%'"),
            fp("select a from db.t where a like 'y%'")
        );
    }

    #[test]
    fn fragment_text_peels_limit_and_distinct() {
        let stmt = parse_select("select a from db.t where a > 1 limit 5").unwrap();
        let frag = canonical_fragment_text(&stmt).unwrap();
        assert_eq!(frag, "select[a] from db.t where gt(a,lit(Int(1)))");
        let stmt2 = parse_select("select a from db.t where a > 1 limit 9").unwrap();
        assert_eq!(
            canonical_fragment_text(&stmt2).unwrap(),
            frag,
            "different LIMITs share one fragment"
        );
        let plain = parse_select("select a from db.t where a > 1").unwrap();
        assert!(
            canonical_fragment_text(&plain).is_none(),
            "nothing to peel -> no separate fragment entry"
        );
        assert_eq!(
            canonical_stmt_text(&plain),
            frag,
            "the fragment key equals the full key of the peeled statement"
        );
    }

    #[test]
    fn table_key_is_shared_identity() {
        assert_eq!(table_key("db", "t"), "db.t");
    }
}
