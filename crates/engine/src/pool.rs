//! A scoped-thread worker pool for split-level parallelism.
//!
//! The executor fans the scan+filter+project phase out one task per Norc
//! split (morsel-style). This module owns the threading mechanics: a shared
//! atomic cursor hands out split indexes, each worker runs tasks until the
//! cursor is exhausted, and results land in per-task slots so the caller
//! reassembles them **in split order** — the property the differential
//! tests lean on for byte-identical output.
//!
//! Built on `std::thread::scope` only (hermetic policy: no crates-io
//! dependencies). Panics inside a task are caught and surfaced as
//! [`EngineError`]s naming the split, never as a hang or a poisoned lock.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::error::{EngineError, Result};

/// Cooperative split-level scheduling hook. The pool brackets every split
/// task with `acquire`/`release` (inline and pooled paths alike), so an
/// external scheduler — the query server's fair-share admission controller —
/// can time-slice split execution across many in-flight queries. `acquire`
/// may block; `release` is guaranteed to run even when the task panics.
pub trait SplitScheduler: std::fmt::Debug + Send + Sync {
    /// Block until the caller may run one split task.
    fn acquire(&self);
    /// Return the permit taken by the matching [`SplitScheduler::acquire`].
    fn release(&self);
}

/// RAII permit: releases on drop, including during a panic unwind.
struct SchedulerPermit<'a>(Option<&'a dyn SplitScheduler>);

impl<'a> SchedulerPermit<'a> {
    fn acquire(scheduler: Option<&'a dyn SplitScheduler>) -> Self {
        if let Some(s) = scheduler {
            s.acquire();
        }
        SchedulerPermit(scheduler)
    }
}

impl Drop for SchedulerPermit<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.0 {
            s.release();
        }
    }
}

/// Outcome of one pool run.
#[derive(Debug)]
pub struct PoolRun<T> {
    /// Per-task results, indexed by task (= split) index.
    pub results: Vec<T>,
    /// Worker threads actually spawned (0 when the run was inline).
    pub threads_spawned: usize,
    /// Wall time of each task, indexed like `results`.
    pub task_walls: Vec<Duration>,
}

/// Run `tasks` closures, at most `max_threads` at a time, returning their
/// results in task order.
///
/// * `max_threads <= 1` or `tasks <= 1` runs everything inline on the
///   caller's thread — no threads are spawned, making 1-thread execution
///   exactly the serial reference path.
/// * A task returning `Err` or panicking aborts the run; the error for the
///   **lowest failing task index** is returned so failure is deterministic
///   regardless of scheduling. Remaining queued tasks are skipped once a
///   failure is recorded.
/// * When `scheduler` is set, every task (inline or pooled) runs inside an
///   acquire/release bracket, letting a server time-slice splits fairly
///   across concurrent queries.
pub fn run_split_tasks<T, F>(
    tasks: usize,
    max_threads: usize,
    scheduler: Option<&dyn SplitScheduler>,
    task: F,
) -> Result<PoolRun<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    if tasks <= 1 || max_threads <= 1 {
        let mut results = Vec::with_capacity(tasks);
        let mut task_walls = Vec::with_capacity(tasks);
        for i in 0..tasks {
            let permit = SchedulerPermit::acquire(scheduler);
            let start = Instant::now();
            results.push(run_one(&task, permit, i)?);
            task_walls.push(start.elapsed());
        }
        return Ok(PoolRun {
            results,
            threads_spawned: 0,
            task_walls,
        });
    }

    let workers = max_threads.min(tasks);
    let cursor = AtomicUsize::new(0);
    // One slot per task; a Mutex around the whole vector keeps this simple
    // (contention is negligible: one lock per task completion).
    let slots: Mutex<Vec<Option<Result<(T, Duration)>>>> =
        Mutex::new((0..tasks).map(|_| None).collect());
    let failed = std::sync::atomic::AtomicBool::new(false);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let body = || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= tasks || failed.load(Ordering::Relaxed) {
                    break;
                }
                // Acquire before timing: fairness wait is queueing delay,
                // not task work, and must not inflate the skew gauges.
                let permit = SchedulerPermit::acquire(scheduler);
                let start = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let _permit = permit;
                    task(i)
                }))
                .unwrap_or_else(|payload| Err(panic_error(i, payload.as_ref())));
                if outcome.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                let wall = start.elapsed();
                slots.lock().expect("pool slots lock")[i] = Some(outcome.map(|t| (t, wall)));
            };
            // Named threads so trace exports get stable per-worker track
            // names; fall back to an anonymous thread if the OS refuses.
            if std::thread::Builder::new()
                .name(format!("maxson-pool-{w}"))
                .spawn_scoped(scope, body)
                .is_err()
            {
                scope.spawn(body);
            }
        }
    });

    let slots = slots.into_inner().expect("pool slots lock");
    let mut results = Vec::with_capacity(tasks);
    let mut task_walls = Vec::with_capacity(tasks);
    for slot in slots {
        match slot {
            Some(Ok((value, wall))) => {
                results.push(value);
                task_walls.push(wall);
            }
            // Lowest failing index wins: slots are visited in task order.
            Some(Err(e)) => return Err(e),
            // Skipped after a failure elsewhere; keep scanning for the error.
            None => {}
        }
    }
    debug_assert_eq!(results.len(), tasks, "no failure implies every slot ran");
    Ok(PoolRun {
        results,
        threads_spawned: workers,
        task_walls,
    })
}

/// Inline task execution with the same panic containment as workers get.
/// The permit moves into the unwind scope so a panicking task still
/// releases its scheduler slot.
fn run_one<T>(
    task: &(impl Fn(usize) -> Result<T> + Sync),
    permit: SchedulerPermit<'_>,
    i: usize,
) -> Result<T> {
    catch_unwind(AssertUnwindSafe(|| {
        let _permit = permit;
        task(i)
    }))
    .unwrap_or_else(|payload| Err(panic_error(i, payload.as_ref())))
}

fn panic_error(split: usize, payload: &(dyn std::any::Any + Send)) -> EngineError {
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    EngineError::exec(format!("task for split {split} panicked: {message}"))
}

/// Percentiles and skew over the per-task wall times of one pool run
/// (nearest-rank; skew = max/mean). Returns `(p50, p95, skew)`.
pub fn wall_stats(walls: &[Duration]) -> (Duration, Duration, f64) {
    if walls.is_empty() {
        return (Duration::ZERO, Duration::ZERO, 0.0);
    }
    let mut sorted = walls.to_vec();
    sorted.sort();
    // Classic nearest-rank: the ceil(n*q)-th smallest value.
    let rank = |q: f64| {
        let idx = (sorted.len() as f64 * q).ceil() as usize;
        sorted[idx.clamp(1, sorted.len()) - 1]
    };
    let total: Duration = sorted.iter().sum();
    let mean = total.as_secs_f64() / sorted.len() as f64;
    let max = sorted.last().expect("non-empty").as_secs_f64();
    let skew = if mean > 0.0 { max / mean } else { 1.0 };
    (rank(0.5), rank(0.95), skew)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_task_order() {
        let run = run_split_tasks(16, 4, None, |i| {
            // Stagger completion so out-of-order finishes are likely.
            std::thread::sleep(Duration::from_micros(((16 - i) * 50) as u64));
            Ok(i * 10)
        })
        .unwrap();
        assert_eq!(run.results, (0..16).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(run.threads_spawned, 4);
        assert_eq!(run.task_walls.len(), 16);
    }

    #[test]
    fn single_task_runs_inline_without_spawning() {
        let run = run_split_tasks(1, 8, None, |i| Ok(i)).unwrap();
        assert_eq!(run.results, vec![0]);
        assert_eq!(run.threads_spawned, 0, "one task must not spawn threads");
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let run = run_split_tasks(0, 8, None, |_| -> Result<()> {
            panic!("no task should run for an empty table");
        })
        .unwrap();
        assert!(run.results.is_empty());
        assert_eq!(run.threads_spawned, 0);
    }

    #[test]
    fn one_thread_runs_inline_on_caller() {
        let caller = std::thread::current().id();
        let run = run_split_tasks(4, 1, None, |i| {
            assert_eq!(std::thread::current().id(), caller);
            Ok(i)
        })
        .unwrap();
        assert_eq!(run.results, vec![0, 1, 2, 3]);
        assert_eq!(run.threads_spawned, 0);
    }

    #[test]
    fn workers_capped_by_task_count() {
        let run = run_split_tasks(2, 16, None, |i| Ok(i)).unwrap();
        assert_eq!(run.threads_spawned, 2);
    }

    #[test]
    fn task_panic_becomes_error_naming_the_split() {
        let err = run_split_tasks(8, 4, None, |i| -> Result<usize> {
            if i == 5 {
                panic!("poisoned split data");
            }
            Ok(i)
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("split 5"), "error must name the split: {msg}");
        assert!(msg.contains("poisoned split data"), "{msg}");
    }

    #[test]
    fn inline_panic_becomes_error_too() {
        let err = run_split_tasks(1, 8, None, |_| -> Result<usize> { panic!("inline boom") })
            .unwrap_err();
        assert!(err.to_string().contains("split 0"), "{err}");
    }

    #[test]
    fn task_error_aborts_with_lowest_failing_index() {
        // Every task fails; the reported index must be deterministic.
        for _ in 0..8 {
            let err = run_split_tasks(6, 3, None, |i| -> Result<usize> {
                Err(EngineError::exec(format!("bad split {i}")))
            })
            .unwrap_err();
            assert!(err.to_string().contains("bad split 0"), "{err}");
        }
    }

    #[test]
    fn failure_skips_remaining_queued_tasks() {
        let ran = AtomicUsize::new(0);
        let _ = run_split_tasks(1000, 2, None, |i| -> Result<usize> {
            ran.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                return Err(EngineError::exec("early failure"));
            }
            // Sleeping yields the CPU, so the failing task gets scheduled
            // promptly even on a single-core machine.
            std::thread::sleep(Duration::from_millis(1));
            Ok(i)
        });
        // Not all 1000 tasks should have run after the failure flag flipped.
        assert!(
            ran.load(Ordering::Relaxed) < 1000,
            "failure must short-circuit"
        );
    }

    #[test]
    fn wall_stats_quantiles_and_skew() {
        let walls: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        let (p50, p95, skew) = wall_stats(&walls);
        assert_eq!(p50, Duration::from_millis(5));
        assert_eq!(p95, Duration::from_millis(10));
        // mean = 5.5ms, max = 10ms.
        assert!((skew - 10.0 / 5.5).abs() < 1e-9);
        assert_eq!(wall_stats(&[]), (Duration::ZERO, Duration::ZERO, 0.0));
        let (p50, _, skew) = wall_stats(&[Duration::from_millis(7)]);
        assert_eq!(p50, Duration::from_millis(7));
        assert!((skew - 1.0).abs() < 1e-9);
    }
}
