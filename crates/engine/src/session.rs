//! The query session: catalog + planner + executor.
//!
//! [`Session::execute`] compiles SQL to a resolved plan and runs it. The
//! compile step exposes the hook the paper's Algorithm 1 needs:
//! a [`TableScanRewriter`] observes every table scan being planned —
//! together with the `get_json_object` calls that will run over it and the
//! query predicate — and may substitute its own [`ScanProvider`] whose
//! output schema carries extra pre-parsed columns. JSONPath calls the
//! rewriter claims are compiled to plain column references (the paper's
//! *placeholders*) instead of parse expressions.

use std::ops::{Deref, DerefMut};
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use maxson_json::JsonPath;
use maxson_obs::{Registry, SpanId, Tracer};
use maxson_storage::{Catalog, Cell, CmpOp, ColumnType, Field, MmapMode, Schema, SearchArgument};

use crate::error::{EngineError, Result};
use crate::exec::{execute_plan_traced, ExecOptions};
use crate::expr::Expr;
pub use crate::expr::JsonParserKind;
use crate::fingerprint::{
    canonical_fragment_text, canonical_stmt_text, reuse_key, stmt_fingerprint, table_key,
};
use crate::metrics::ExecMetrics;
use crate::plan::LogicalPlan;
use crate::pool::SplitScheduler;
use crate::querylog::{QueryLog, QueryLogEntry};
use crate::reuse::{CachedEntry, CachedRowsProvider, FillOutcome, ReuseCache, ReuseStats};
use crate::scan::{NorcScanProvider, ScanProvider};
use crate::sql::ast::{AggFunc, BinaryOp, SelectItem, SelectStatement, SqlExpr, TableRef};
use crate::sql::parse_select;

/// Everything a [`TableScanRewriter`] gets to see about a scan being
/// planned.
#[derive(Debug)]
pub struct ScanContext<'a> {
    /// Database of the scanned table.
    pub database: &'a str,
    /// Name of the scanned table.
    pub table: &'a str,
    /// The raw table schema.
    pub table_schema: &'a Schema,
    /// Raw columns referenced as plain columns (must appear in the output).
    pub raw_columns: &'a [String],
    /// Deduplicated `get_json_object` calls over this table:
    /// `(column_name, jsonpath_text)`.
    pub json_calls: &'a [(String, String)],
    /// The WHERE clause, for predicate-pushdown decisions.
    pub predicate: Option<&'a SqlExpr>,
}

/// The rewriter's answer: a replacement provider plus the JSONPath calls it
/// resolved to provider output columns.
pub struct ScanRewrite {
    /// The provider to scan instead of the default Norc reader. Its schema
    /// must contain every `raw_column`, the JSON column of every call *not*
    /// in `resolved_paths`, and one column per resolved path.
    pub provider: Box<dyn ScanProvider>,
    /// `(column_name, path_text) -> provider output column` for calls served
    /// without parsing.
    pub resolved_paths: Vec<((String, String), String)>,
}

/// Hook invoked for every table scan during planning (Algorithm 1's entry
/// point). Returning `None` keeps the default scan.
///
/// `Send + Sync` because installed rewriters live in the shared warehouse
/// state behind an `Arc`, consulted concurrently by every cloned session.
pub trait TableScanRewriter: Send + Sync {
    /// Human-readable name for plan display.
    fn name(&self) -> &str;
    /// Inspect the scan and optionally take it over.
    fn rewrite_scan(&self, ctx: &ScanContext<'_>) -> Result<Option<ScanRewrite>>;
}

/// Result of executing one query.
#[derive(Debug)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Cell>>,
    /// Per-phase metrics.
    pub metrics: ExecMetrics,
    /// Rendered plan (EXPLAIN-style).
    pub plan_display: String,
    /// Warehouse epoch this query planned against (bumped by every
    /// rewriter install / midnight-cycle swap). A query sees exactly one
    /// epoch end to end — never a mix of old and new cache tables.
    pub epoch: u64,
}

impl QueryResult {
    /// Render as an aligned text table.
    pub fn to_display_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let s = c.to_string();
                        if let Some(w) = widths.get_mut(i) {
                            *w = (*w).max(s.len());
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, name) in self.columns.iter().enumerate() {
            out.push_str(&format!("{name:<w$}  ", w = widths[i]));
        }
        out.push('\n');
        for row in rendered {
            for (i, v) in row.iter().enumerate() {
                out.push_str(&format!("{v:<w$}  ", w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Split `LIMIT`/`DISTINCT` off the top of a physical plan — the operators
/// the reuse cache peels. Both run *after* their input is fully
/// materialized in this engine (`Limit` truncates, `Distinct` dedups), so
/// executing the peeled fragment costs exactly what the full plan's input
/// cost and replaying the uppers over its rows is byte-identical.
fn peel_uppers(plan: LogicalPlan) -> LogicalPlan {
    let plan = match plan {
        LogicalPlan::Limit { input, .. } => *input,
        p => p,
    };
    match plan {
        LogicalPlan::Distinct { input } => *input,
        p => p,
    }
}

/// Rebuild the peeled uppers from the statement over `input` (a cached-
/// rows scan), in the same order `plan_statement` stacks them: `Distinct`
/// below `Limit`.
fn rebuild_uppers(input: LogicalPlan, stmt: &SelectStatement) -> LogicalPlan {
    let mut plan = input;
    if stmt.distinct {
        plan = LogicalPlan::Distinct {
            input: Box::new(plan),
        };
    }
    if let Some(n) = stmt.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    plan
}

/// Schema of a query's visible output columns (the engine is value-typed
/// at runtime, so every output column is `Utf8` — mirroring the projection
/// schemas `plan_statement` builds). `None` if the names collide, which
/// the planner rejects earlier; the caller skips caching in that case.
fn output_schema(names: &[String]) -> Option<Schema> {
    Schema::new(
        names
            .iter()
            .map(|n| Field::new(n.clone(), ColumnType::Utf8))
            .collect(),
    )
    .ok()
}

/// Case-insensitively strip a leading SQL keyword (plus surrounding
/// whitespace); `None` when `text` does not start with it as a whole word.
fn strip_keyword<'a>(text: &'a str, keyword: &str) -> Option<&'a str> {
    let t = text.trim_start();
    if t.len() >= keyword.len() && t[..keyword.len()].eq_ignore_ascii_case(keyword) {
        let rest = &t[keyword.len()..];
        if rest.is_empty() || rest.starts_with(char::is_whitespace) {
            return Some(rest);
        }
    }
    None
}

/// One planned query: the compiled plan plus the planning-time snapshot
/// (epoch, statement, scanned tables, reuse handle) the execution and
/// bookkeeping phases consume after the warehouse lock is released.
struct PlannedQuery {
    plan: LogicalPlan,
    planning: Duration,
    /// Output column names.
    names: Vec<String>,
    /// Warehouse epoch the plan belongs to.
    epoch: u64,
    /// Deduplicated `(db.table, jsonpath)` pairs the plan extracts (the
    /// workload-sketch attribution key).
    planned_paths: Vec<(String, String)>,
    /// `db.table` identities this query scans (reuse dependency tracking).
    tables: Vec<String>,
    /// The parsed statement — the canonical fingerprint is derived from
    /// this, not the physical plan, so rewriter installs (Maxson's cache
    /// rewrite) never change a query's identity.
    stmt: SelectStatement,
    /// The warehouse's reuse cache at planning time (`None` = off).
    reuse: Option<Arc<ReuseCache>>,
    /// The cache's write generation at planning time, captured under the
    /// same warehouse read lock that pins this plan's table snapshots. A
    /// fill is only honoured while the generation is unchanged — any
    /// invalidation in between means the executed rows came from a
    /// pre-invalidation snapshot and must not be cached.
    reuse_gen: u64,
}

/// The shared, swappable state every session cloned from one warehouse
/// points at: the catalog, the installed rewriter, and the epoch counter
/// that versions them. Guarded by one `RwLock` so a query's planning phase
/// sees catalog + rewriter + epoch as a single consistent snapshot, and the
/// midnight cycle's install replaces all three atomically.
struct Warehouse {
    catalog: Catalog,
    rewriter: Option<Arc<dyn TableScanRewriter>>,
    epoch: u64,
    /// Cross-query reuse cache shared by every session cloned from this
    /// warehouse (`None` = reuse off, the default). Lives here so the
    /// catalog write guard and the epoch swap can invalidate it.
    reuse: Option<Arc<ReuseCache>>,
}

/// Read guard over the session's catalog (derefs to [`Catalog`]). Held only
/// while planning or inspecting metadata — queries execute against cloned
/// [`maxson_storage::Table`] snapshots with the lock released.
pub struct CatalogRead<'a>(RwLockReadGuard<'a, Warehouse>);

impl Deref for CatalogRead<'_> {
    type Target = Catalog;
    fn deref(&self) -> &Catalog {
        &self.0.catalog
    }
}

/// Write guard over the session's catalog (derefs to `&mut` [`Catalog`]),
/// for data loading. Blocks planning in other sessions while held.
pub struct CatalogWrite<'a>(RwLockWriteGuard<'a, Warehouse>);

impl Deref for CatalogWrite<'_> {
    type Target = Catalog;
    fn deref(&self) -> &Catalog {
        &self.0.catalog
    }
}

impl DerefMut for CatalogWrite<'_> {
    fn deref_mut(&mut self) -> &mut Catalog {
        &mut self.0.catalog
    }
}

impl Drop for CatalogWrite<'_> {
    fn drop(&mut self) {
        // Mutable catalog access may have changed any table's data, so the
        // reuse cache drops everything. Callers that know the single table
        // they touched can use `Session::invalidate_reuse_table` for
        // finer-grained invalidation instead of holding this guard.
        //
        // `invalidate_all` also bumps the cache's write generation, which
        // closes the fill-after-invalidate race: a query planned before
        // this write executes against its pre-write table snapshot, and
        // without the generation check it could fill the cache *after*
        // this invalidation — at the unchanged warehouse epoch — leaving a
        // persistently stale entry. Its fill carries the planning-time
        // generation and is rejected instead.
        if let Some(reuse) = &self.0.reuse {
            reuse.invalidate_all();
        }
    }
}

/// A warehouse session.
///
/// Cloning is cheap and shares the warehouse: clones see the same catalog,
/// rewriter, epoch, and Norc metadata cache, and record into the same trace
/// buffer. Per-session knobs (parser, thread count, shared-parse, prefilter,
/// split scheduler) stay independent per clone — the serving front end gives
/// every connection its own clone over one warehouse.
#[derive(Clone)]
pub struct Session {
    warehouse: Arc<RwLock<Warehouse>>,
    parser_kind: JsonParserKind,
    /// Sparser-style raw prefiltering on JSON equality predicates.
    prefilter_enabled: bool,
    /// Explicit worker-thread override. `None` defers to `MAXSON_THREADS`
    /// (default: available cores); `Some(1)` forces the serial path.
    threads: Option<usize>,
    /// Explicit shared-parse override. `None` defers to
    /// `MAXSON_SHARED_PARSE` (default: on).
    shared_parse: Option<bool>,
    /// Cooperative split scheduler consulted around every split task (the
    /// server installs its fair-share scheduler here). `None` = run freely.
    scheduler: Option<Arc<dyn SplitScheduler>>,
    /// Span/counter collector. One buffer for the session's lifetime:
    /// query executions, plan rewrites, and offline-pipeline stages all
    /// record into it (clones share the buffer), so a single trace file
    /// shows the daily job next to the queries it accelerated. Disabled
    /// by default — every hook is then a branch on a bool.
    tracer: Tracer,
    /// Where to write the Chrome trace-event JSON (rewritten after every
    /// execute). `None` = no export.
    trace_path: Option<PathBuf>,
    /// Always-on metric registry charged after every execute. Defaults to
    /// the process-global [`Registry`]; tests inject fresh instances via
    /// [`Session::set_metrics_registry`] to stay isolated.
    registry: Arc<Registry>,
    /// Structured JSONL query log (`MAXSON_QUERY_LOG`); `None` = off.
    /// Clones share the handle, so one file serializes whole lines across
    /// every connection of a serving warehouse.
    query_log: Option<Arc<QueryLog>>,
    /// Queries whose wall time exceeds this get `slow=true` in the log
    /// (`MAXSON_SLOW_MS`, default 1000 ms).
    slow_threshold: Duration,
}

impl Session {
    /// Open a session over a warehouse directory. When the `MAXSON_TRACE`
    /// environment variable names a file, tracing starts enabled and every
    /// execute rewrites that file with the accumulated Chrome trace. The
    /// `MAXSON_PARSER` environment variable (`jackson` / `mison` / `tape`,
    /// case-insensitive) selects the default JSON parser; unrecognized
    /// values keep the Jackson default, and [`Session::set_parser`]
    /// overrides either way. The structural-kernel tier resolves lazily
    /// from `MAXSON_SIMD` on first bitmap build (see
    /// [`Session::set_simd`]), and Norc file mapping from `MAXSON_MMAP`
    /// at each split open.
    pub fn open(root: impl AsRef<Path>) -> Result<Self> {
        let trace_path = std::env::var_os("MAXSON_TRACE")
            .filter(|v| !v.is_empty())
            .map(PathBuf::from);
        let parser_kind = std::env::var("MAXSON_PARSER")
            .ok()
            .and_then(|v| JsonParserKind::from_name(&v))
            .unwrap_or_default();
        let tracer = Tracer::new();
        tracer.set_enabled(trace_path.is_some());
        let query_log = std::env::var_os("MAXSON_QUERY_LOG")
            .filter(|v| !v.is_empty())
            .map(|p| QueryLog::open(PathBuf::from(p)).map(Arc::new))
            .transpose()?;
        let slow_threshold = std::env::var("MAXSON_SLOW_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_millis(1000));
        // Cross-query result reuse (off by default): `MAXSON_RESULT_CACHE`
        // switches it on, `MAXSON_RESULT_CACHE_MB` sizes the byte budget.
        let reuse = std::env::var("MAXSON_RESULT_CACHE")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                !v.is_empty() && v != "0" && v != "false" && v != "off"
            })
            .unwrap_or(false)
            .then(|| {
                let mb = std::env::var("MAXSON_RESULT_CACHE_MB")
                    .ok()
                    .and_then(|v| v.trim().parse::<u64>().ok())
                    .unwrap_or(64);
                Arc::new(ReuseCache::new(mb))
            });
        Ok(Session {
            warehouse: Arc::new(RwLock::new(Warehouse {
                catalog: Catalog::open(root.as_ref())?,
                rewriter: None,
                epoch: 0,
                reuse,
            })),
            parser_kind,
            prefilter_enabled: false,
            threads: None,
            shared_parse: None,
            scheduler: None,
            tracer,
            trace_path,
            registry: Arc::clone(Registry::global()),
            query_log,
            slow_threshold,
        })
    }

    /// Lock helpers: a panic while a guard is held (e.g. a rewriter
    /// panicking during planning) must not poison the warehouse for every
    /// other session, so poisoned locks are recovered rather than
    /// propagated. Write guards are only held across in-memory struct
    /// updates, which either complete or leave the previous state intact.
    fn wh_read(&self) -> RwLockReadGuard<'_, Warehouse> {
        self.warehouse
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn wh_write(&self) -> RwLockWriteGuard<'_, Warehouse> {
        self.warehouse
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The session's tracer. Clone it into rewriters/providers so their
    /// spans and counters land in the same buffer; the clones follow this
    /// session's enable toggle.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Set (or clear) the Chrome trace-event export path. Setting a path
    /// enables tracing; clearing it disables tracing (use
    /// [`Session::set_trace_enabled`] for in-memory tracing without
    /// export).
    pub fn set_trace_path(&mut self, path: Option<PathBuf>) {
        self.tracer.set_enabled(path.is_some());
        self.trace_path = path;
    }

    /// Toggle in-memory tracing without touching the export path. The
    /// buffer keeps accumulating across queries; use
    /// `session.tracer().reset()` between queries for per-query rollups.
    pub fn set_trace_enabled(&self, on: bool) {
        self.tracer.set_enabled(on);
    }

    /// The metric registry this session charges (the process-global one
    /// unless [`Session::set_metrics_registry`] injected another).
    pub fn metrics_registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Point this session at a different metric registry. Clones made
    /// afterwards inherit it; the serving front end passes one registry to
    /// every connection, and tests pass fresh instances for isolation.
    pub fn set_metrics_registry(&mut self, registry: Arc<Registry>) {
        self.registry = registry;
    }

    /// Open (or disable) the structured JSONL query log. Equivalent to
    /// launching with `MAXSON_QUERY_LOG=<path>`; see [`crate::querylog`]
    /// for the line schema.
    pub fn set_query_log(&mut self, path: Option<PathBuf>) -> Result<()> {
        self.query_log = path.map(QueryLog::open).transpose()?.map(Arc::new);
        Ok(())
    }

    /// Path of the active query log, if logging is on.
    pub fn query_log_path(&self) -> Option<&Path> {
        self.query_log.as_deref().map(QueryLog::path)
    }

    /// Wall-time threshold past which a query is flagged `slow=true` in
    /// the query log (`MAXSON_SLOW_MS`; default 1000 ms).
    pub fn set_slow_threshold(&mut self, threshold: Duration) {
        self.slow_threshold = threshold;
    }

    /// Write the accumulated trace to the export path, if one is set.
    /// Called automatically after every `execute`.
    pub fn flush_trace(&self) -> Result<()> {
        if let Some(path) = &self.trace_path {
            self.tracer.export_chrome(path).map_err(|e| {
                EngineError::exec(format!("trace export to {}: {e}", path.display()))
            })?;
        }
        Ok(())
    }

    /// Set (or clear) the worker-thread count for split-parallel execution.
    /// `None` resolves from the environment at each `execute` call
    /// (`MAXSON_THREADS`, defaulting to available cores); `Some(1)` pins the
    /// serial reference path. Tests prefer this over the env var to avoid
    /// process-global races.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads;
    }

    /// Current explicit thread override, if any.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// Set (or clear) intra-query shared-parse extraction. `None` resolves
    /// from `MAXSON_SHARED_PARSE` at each `execute` call (default: on);
    /// `Some(false)` pins the naive parse-per-call reference path. Tests
    /// prefer this over the env var to avoid process-global races.
    pub fn set_shared_parse(&mut self, shared_parse: Option<bool>) {
        self.shared_parse = shared_parse;
    }

    /// Current explicit shared-parse override, if any.
    pub fn shared_parse(&self) -> Option<bool> {
        self.shared_parse
    }

    /// Install (or clear) the cooperative split scheduler consulted around
    /// every split task this session executes. The serving front end points
    /// every connection's session at one shared fair-share scheduler.
    pub fn set_split_scheduler(&mut self, scheduler: Option<Arc<dyn SplitScheduler>>) {
        self.scheduler = scheduler;
    }

    fn exec_options(&self) -> ExecOptions {
        let opts = match self.threads {
            Some(n) => ExecOptions::with_threads(n),
            None => ExecOptions::from_env(),
        };
        let opts = match self.shared_parse {
            Some(on) => opts.with_shared_parse(on),
            None => opts,
        };
        opts.with_scheduler(self.scheduler.clone())
    }

    /// Enable/disable the Sparser-style raw prefilter: when a predicate
    /// requires `get_json_object(col, path) = 'literal'`, records whose raw
    /// bytes cannot contain the literal are dropped before parsing.
    pub fn set_prefilter_enabled(&mut self, enabled: bool) {
        self.prefilter_enabled = enabled;
    }

    /// Which JSON parser `get_json_object` uses (Fig. 15's axis).
    pub fn set_parser_kind(&mut self, kind: JsonParserKind) {
        self.parser_kind = kind;
    }

    /// Alias for [`Session::set_parser_kind`]: pin the parser mode,
    /// overriding the `MAXSON_PARSER` environment default.
    pub fn set_parser(&mut self, kind: JsonParserKind) {
        self.set_parser_kind(kind);
    }

    /// Pin the structural-kernel tier used for bitmap construction and
    /// prefilter needle search, overriding the `MAXSON_SIMD` environment
    /// default (`auto` / `avx2` / `sse2` / `swar` / `scalar`). Returns the
    /// tier that actually took effect — a request for a tier the CPU lacks
    /// clamps to the best available one.
    ///
    /// The kernel dispatch is **process-wide** (results are bit-identical
    /// across tiers, so this only affects speed, never answers): setting it
    /// on one session changes every session in the process, mirroring how
    /// the env var behaves.
    pub fn set_simd(
        &mut self,
        kernel: maxson_json::kernels::Kernel,
    ) -> maxson_json::kernels::Kernel {
        maxson_json::kernels::set_active(kernel)
    }

    /// The structural-kernel tier currently in effect (resolving
    /// `MAXSON_SIMD` on first use).
    pub fn simd_kernel(&self) -> maxson_json::kernels::Kernel {
        maxson_json::kernels::active()
    }

    /// Current JSON parser kind.
    pub fn parser_kind(&self) -> JsonParserKind {
        self.parser_kind
    }

    /// Install (or clear) the scan rewriter — Maxson plugs in here. The
    /// install is atomic: it takes the warehouse write lock and bumps the
    /// epoch, so every query planned afterwards sees the new rewriter and
    /// in-flight queries finish against the snapshot they planned with.
    pub fn set_scan_rewriter(&mut self, rewriter: Option<Box<dyn TableScanRewriter>>) {
        let mut wh = self.wh_write();
        wh.rewriter = rewriter.map(Arc::from);
        wh.epoch += 1;
        // Old-epoch entries would miss the generation check anyway; clear
        // eagerly so their memory is released now.
        if let Some(reuse) = &wh.reuse {
            reuse.invalidate_all();
        }
    }

    /// Enable (or disable, with `None`) the cross-query reuse cache, with
    /// a byte budget of `budget_mb` MiB. Equivalent to launching with
    /// `MAXSON_RESULT_CACHE=1 MAXSON_RESULT_CACHE_MB=<mb>`. The cache is
    /// warehouse-shared: every session cloned from this one probes and
    /// fills the same cache (the serving front end enables it once and all
    /// connections benefit).
    pub fn set_result_cache(&mut self, budget_mb: Option<u64>) {
        let mut wh = self.wh_write();
        wh.reuse = budget_mb.map(|mb| Arc::new(ReuseCache::new(mb)));
    }

    /// Handle on the active reuse cache, if enabled (tests use this to arm
    /// failure-injection hooks and inspect stats).
    pub fn reuse_cache(&self) -> Option<Arc<ReuseCache>> {
        self.wh_read().reuse.clone()
    }

    /// Point-in-time reuse-cache statistics (`None` when reuse is off).
    pub fn reuse_stats(&self) -> Option<ReuseStats> {
        self.wh_read().reuse.as_ref().map(|c| c.stats())
    }

    /// Drop every reuse entry computed from `database.table` — the
    /// finer-grained alternative to the coarse invalidate-everything the
    /// catalog write guard performs, for callers that appended to exactly
    /// one table. Also bumps the cache's write generation, so queries
    /// already executing against the pre-append snapshot cannot fill the
    /// cache with stale rows afterwards.
    pub fn invalidate_reuse_table(&self, database: &str, table: &str) {
        if let Some(reuse) = &self.wh_read().reuse {
            reuse.invalidate_table(&table_key(database, table));
        }
    }

    /// Atomically swap the whole warehouse view: re-open the catalog from
    /// disk (keeping the warm Norc metadata cache), install `rewriter`, and
    /// bump the epoch — all under one write lock. This is the midnight
    /// cycle's install step: queries planned before the swap keep reading
    /// the old cache-table snapshot; queries planned after see only the new
    /// one. Returns the new epoch.
    pub fn swap_warehouse_epoch(
        &self,
        rewriter: Option<Box<dyn TableScanRewriter>>,
    ) -> Result<u64> {
        // Build the fresh catalog view before taking the write lock, so
        // concurrent planners are only blocked for the pointer swap.
        let (root, meta_cache) = {
            let wh = self.wh_read();
            (
                wh.catalog.root().to_path_buf(),
                Arc::clone(wh.catalog.meta_cache()),
            )
        };
        let catalog = Catalog::open_with_cache(root, meta_cache)?;
        let mut wh = self.wh_write();
        wh.catalog = catalog;
        wh.rewriter = rewriter.map(Arc::from);
        wh.epoch += 1;
        // Epoch-anchored reuse correctness: entries filled before (or by
        // in-flight queries racing) the swap carry the old epoch and can
        // never match a post-swap probe — the generation check is the real
        // guard. The eager clear just releases their memory now.
        if let Some(reuse) = &wh.reuse {
            reuse.invalidate_all();
        }
        Ok(wh.epoch)
    }

    /// The current warehouse epoch (bumped by every rewriter install).
    pub fn epoch(&self) -> u64 {
        self.wh_read().epoch
    }

    /// The underlying catalog (read guard; derefs to [`Catalog`]).
    pub fn catalog(&self) -> CatalogRead<'_> {
        CatalogRead(self.wh_read())
    }

    /// Mutable catalog access for data loading (write guard). Planning in
    /// every session sharing this warehouse blocks while the guard is held,
    /// so keep its scope tight.
    pub fn catalog_mut(&mut self) -> CatalogWrite<'_> {
        CatalogWrite(self.wh_write())
    }

    /// Compile SQL into a plan without executing. Returns the plan and the
    /// planning time — the measurement behind Fig. 13.
    pub fn plan(&self, sql: &str) -> Result<(LogicalPlan, std::time::Duration, Vec<String>)> {
        let pq = self.plan_snapshot(sql)?;
        Ok((pq.plan, pq.planning, pq.names))
    }

    /// Plan under one warehouse read lock. The returned plan holds cloned
    /// `Table` handles, so the lock is released when this returns and
    /// execution proceeds against an immutable snapshot; everything the
    /// post-execution bookkeeping needs (epoch, fingerprint identity,
    /// scanned tables, reuse handle) rides along in the same snapshot.
    fn plan_snapshot(&self, sql: &str) -> Result<PlannedQuery> {
        let start = Instant::now();
        let stmt = parse_select(sql)?;
        let wh = self.wh_read();
        let mut planned_paths = Vec::new();
        let (plan, names) = self.plan_statement(&wh, &stmt, &mut planned_paths)?;
        // `db.table` identities this query reads, for reuse-cache
        // dependency tracking (shared identity with the workload sketch).
        let mut tables = vec![table_key(&stmt.from.database, &stmt.from.table)];
        if let Some(join) = &stmt.join {
            let key = table_key(&join.table.database, &join.table.table);
            if !tables.contains(&key) {
                tables.push(key);
            }
        }
        Ok(PlannedQuery {
            plan,
            planning: start.elapsed(),
            names,
            epoch: wh.epoch,
            planned_paths,
            tables,
            stmt,
            reuse_gen: wh.reuse.as_ref().map_or(0, |c| c.generation()),
            reuse: wh.reuse.clone(),
        })
    }

    /// Execute a SELECT statement. A leading `EXPLAIN` keyword returns the
    /// plan tree (one row per line) instead of executing; `EXPLAIN
    /// ANALYZE` executes the query under a tracer and returns the recorded
    /// span tree annotated with per-operator wall time, rows, and cache
    /// counters.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        if let Some(rest) = strip_keyword(sql, "explain") {
            if let Some(inner) = strip_keyword(rest, "analyze") {
                return self.explain_analyze(inner);
            }
            let pq = self.plan_snapshot(rest)?;
            let metrics = ExecMetrics {
                planning: pq.planning,
                ..Default::default()
            };
            let display = pq.plan.display();
            return Ok(QueryResult {
                columns: vec!["plan".to_string()],
                rows: display.lines().map(|l| vec![Cell::from(l)]).collect(),
                metrics,
                plan_display: display,
                epoch: pq.epoch,
            });
        }
        let (result, _) = self.execute_traced(sql, &self.tracer)?;
        self.flush_trace()?;
        Ok(result)
    }

    /// Plan and run `sql` under `tracer`, recording a query-root span (with
    /// a `planning` child covering compile + rewrite) over the whole
    /// operator tree. Returns the root span id for rendering.
    fn execute_traced(&self, sql: &str, tracer: &Tracer) -> Result<(QueryResult, Option<SpanId>)> {
        let root = tracer.span("query");
        if root.is_recording() {
            root.attr("sql", sql.trim());
        }
        let PlannedQuery {
            plan,
            planning,
            names,
            epoch,
            planned_paths,
            tables,
            stmt,
            reuse,
            reuse_gen,
        } = {
            let _planning_span = tracer.child("planning", root.id());
            self.plan_snapshot(sql)?
        };
        let mut metrics = ExecMetrics {
            planning,
            ..Default::default()
        };
        let parser = self.parser_kind.name();
        // Identity is derived from the *statement*, never the physical
        // plan, so a Maxson cache-rewritten plan fingerprints identically
        // to its logical source.
        let fingerprint = stmt_fingerprint(&stmt);
        let full_key = reuse
            .as_ref()
            .map(|_| reuse_key(parser, &canonical_stmt_text(&stmt)));
        let plan_display = plan.display();
        let mut reuse_status: &'static str = if reuse.is_some() { "miss" } else { "off" };
        let start = Instant::now();

        // 1. Full-result probe: a hit serves the cached rows directly —
        //    no operator runs, no split task is scheduled (so no fair-
        //    scheduler lease is ever taken), no document is parsed.
        let mut served: Option<Vec<Vec<Cell>>> = None;
        if let (Some(cache), Some(key)) = (&reuse, full_key) {
            if cache.is_disabled() {
                reuse_status = "disabled";
            } else if let Some(entry) = cache.lookup(key, epoch, false) {
                metrics.reuse_hits = 1;
                reuse_status = "hit";
                served = Some((*entry.rows).clone());
            } else {
                metrics.reuse_misses = 1;
            }
        }

        let rows = match served {
            Some(rows) => rows,
            None => {
                // 2. Fragment probe: the peeled statement's key (LIMIT/
                //    DISTINCT cleared) — equal, by construction, to the
                //    full key of the statement without those uppers.
                let frag_key = match (&reuse, reuse_status) {
                    (Some(_), "miss") => {
                        canonical_fragment_text(&stmt).map(|t| reuse_key(parser, &t))
                    }
                    _ => None,
                };
                let frag_entry = match (&reuse, frag_key) {
                    (Some(cache), Some(k)) => cache.lookup(k, epoch, true),
                    _ => None,
                };
                if let Some(entry) = frag_entry {
                    // Replay cached intermediate rows under rebuilt uppers.
                    metrics.reuse_fragment_hits = 1;
                    reuse_status = "fragment";
                    let rebuilt = rebuild_uppers(
                        LogicalPlan::Scan {
                            provider: Box::new(CachedRowsProvider::new(entry)),
                        },
                        &stmt,
                    );
                    execute_plan_traced(
                        &rebuilt,
                        self.parser_kind,
                        &mut metrics,
                        &self.exec_options(),
                        tracer,
                        root.id(),
                    )?
                } else {
                    // 3. Execute, then offer the result(s) for admission.
                    //    With peelable uppers the fragment runs first and
                    //    the uppers replay over its rows — LIMIT and
                    //    DISTINCT both run after full materialization in
                    //    this engine, so the split adds no work and the
                    //    output is byte-identical to the unsplit plan.
                    let mut frag_fill: Option<(u64, Arc<Vec<Vec<Cell>>>, Schema)> = None;
                    let exec_rows = match frag_key {
                        Some(fkey) => {
                            let frag_plan = peel_uppers(plan);
                            let frag_schema = frag_plan.schema().clone();
                            let frag_rows = Arc::new(execute_plan_traced(
                                &frag_plan,
                                self.parser_kind,
                                &mut metrics,
                                &self.exec_options(),
                                tracer,
                                root.id(),
                            )?);
                            let rebuilt = rebuild_uppers(
                                LogicalPlan::Scan {
                                    provider: Box::new(CachedRowsProvider::new(CachedEntry {
                                        rows: Arc::clone(&frag_rows),
                                        schema: frag_schema.clone(),
                                    })),
                                },
                                &stmt,
                            );
                            let out = execute_plan_traced(
                                &rebuilt,
                                self.parser_kind,
                                &mut metrics,
                                &self.exec_options(),
                                tracer,
                                root.id(),
                            )?;
                            frag_fill = Some((fkey, frag_rows, frag_schema));
                            out
                        }
                        None => execute_plan_traced(
                            &plan,
                            self.parser_kind,
                            &mut metrics,
                            &self.exec_options(),
                            tracer,
                            root.id(),
                        )?,
                    };
                    if let (Some(cache), Some(key)) = (&reuse, full_key) {
                        if !cache.is_disabled() {
                            let wall_ns = start.elapsed().as_nanos() as u64;
                            let shared = Arc::new(exec_rows);
                            // The fill is contained: a panic inside the
                            // cache disables it loudly and the already-
                            // computed rows are returned unchanged.
                            let fill =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    if let Some((fkey, frows, fschema)) = &frag_fill {
                                        cache.fill(
                                            *fkey,
                                            Arc::clone(frows),
                                            fschema.clone(),
                                            epoch,
                                            tables.clone(),
                                            wall_ns,
                                            reuse_gen,
                                        );
                                    }
                                    let out_schema = match output_schema(&names) {
                                        Some(s) => s,
                                        None => return FillOutcome::Rejected,
                                    };
                                    cache.fill(
                                        key,
                                        Arc::clone(&shared),
                                        out_schema,
                                        epoch,
                                        tables.clone(),
                                        wall_ns,
                                        reuse_gen,
                                    )
                                }));
                            match fill {
                                Ok(FillOutcome::Admitted) => {
                                    metrics.reuse_fills = 1;
                                    reuse_status = "fill";
                                }
                                Ok(FillOutcome::Rejected) => {}
                                Ok(FillOutcome::Disabled) => reuse_status = "disabled",
                                Err(_) => {
                                    cache.disable();
                                    reuse_status = "poisoned";
                                }
                            }
                            match Arc::try_unwrap(shared) {
                                Ok(rows) => rows,
                                Err(shared) => (*shared).clone(),
                            }
                        } else {
                            exec_rows
                        }
                    } else {
                        exec_rows
                    }
                }
            }
        };
        metrics.total = start.elapsed();
        tracer.observe("query_exec_us", metrics.total);
        root.attr("rows", rows.len());
        if reuse.is_some() {
            // Only when reuse is enabled, so cache-off EXPLAIN ANALYZE
            // output (and its goldens) is unchanged.
            root.attr("reuse", reuse_status);
        }
        if metrics.bitmap_builds > 0 {
            // Which structural-kernel tier built the bitmaps and how long
            // it spent — the tentpole numbers `EXPLAIN ANALYZE` surfaces.
            let kernel = maxson_json::kernels::Kernel::from_id(metrics.simd_kernel as u8)
                .map_or("unknown", |k| k.name());
            root.attr("simd", kernel);
            root.attr("bitmap_wall", format!("{:?}", metrics.bitmap_build_wall));
        }
        let root_id = root.id();
        drop(root);
        self.finish_query(
            sql,
            fingerprint,
            reuse_status,
            reuse.as_deref(),
            &metrics,
            &planned_paths,
            epoch,
            rows.len(),
        )?;
        Ok((
            QueryResult {
                columns: names,
                rows,
                metrics,
                plan_display,
                epoch,
            },
            root_id,
        ))
    }

    /// Post-execution telemetry: charge the process-wide registry, feed the
    /// workload sketch, and append the query-log line. Pure observation —
    /// reads `metrics`, never mutates it — so results and work counters are
    /// byte-identical with or without a query log installed.
    #[allow(clippy::too_many_arguments)]
    fn finish_query(
        &self,
        sql: &str,
        fingerprint: u64,
        reuse_status: &str,
        reuse: Option<&ReuseCache>,
        metrics: &ExecMetrics,
        planned_paths: &[(String, String)],
        epoch: u64,
        rows: usize,
    ) -> Result<()> {
        let parser = self.parser_kind.name();
        let labels = [("parser", parser)];
        let r = &self.registry;
        r.counter("maxson_queries_total", &labels).inc();
        r.histogram("maxson_query_wall_seconds", &labels)
            .observe(metrics.total);
        r.counter("maxson_rows_scanned_total", &[])
            .add(metrics.rows_scanned);
        r.counter("maxson_bytes_read_total", &[])
            .add(metrics.bytes_read);
        r.counter("maxson_parse_calls_total", &[])
            .add(metrics.parse_calls);
        r.counter("maxson_docs_parsed_total", &[])
            .add(metrics.docs_parsed);
        r.counter("maxson_cache_hits_total", &[])
            .add(metrics.cache_hits);
        r.counter("maxson_lru_hits_total", &[])
            .add(metrics.lru_hits);
        r.counter("maxson_lru_misses_total", &[])
            .add(metrics.lru_misses);
        r.counter("maxson_nodes_skipped_total", &[])
            .add(metrics.nodes_skipped);
        r.counter("maxson_bitmap_builds_total", &[])
            .add(metrics.bitmap_builds);
        r.counter("maxson_bitmap_bytes_total", &[])
            .add(metrics.bitmap_bytes);
        if metrics.bitmap_builds > 0 {
            r.histogram("maxson_bitmap_build_wall_seconds", &[])
                .observe(metrics.bitmap_build_wall);
            r.gauge("maxson_simd_kernel", &[]).max(metrics.simd_kernel);
        }
        r.gauge("maxson_epoch", &[]).max(epoch);
        if let Some(cache) = reuse {
            // Reuse exposition: per-query deltas as counters, cumulative
            // cache-wide state as gauges, and the hit-serving wall (the
            // latency a hit actually cost the client) as a histogram.
            r.counter("maxson_reuse_hits_total", &[])
                .add(metrics.reuse_hits);
            r.counter("maxson_reuse_misses_total", &[])
                .add(metrics.reuse_misses);
            r.counter("maxson_reuse_fragment_hits_total", &[])
                .add(metrics.reuse_fragment_hits);
            r.counter("maxson_reuse_fills_total", &[])
                .add(metrics.reuse_fills);
            let stats = cache.stats();
            r.gauge("maxson_reuse_evictions", &[]).max(stats.evictions);
            r.gauge("maxson_reuse_stale_rejects", &[])
                .max(stats.stale_rejects);
            r.gauge("maxson_reuse_bytes_resident", &[])
                .set(stats.bytes_resident);
            if metrics.reuse_hits > 0 {
                r.histogram("maxson_reuse_hit_wall_seconds", &[])
                    .observe(metrics.total);
            }
            if reuse_status == "poisoned" {
                r.counter("maxson_reuse_poisoned_total", &[]).inc();
            }
        }
        let slow = metrics.total > self.slow_threshold;
        if slow {
            r.counter("maxson_slow_queries_total", &labels).inc();
        }

        // Workload sketch: attribute each extracted path's evaluation count
        // to the table(s) whose scan planned it. A path text shared by two
        // scanned tables charges both (over-attribution is bounded by the
        // rarity of cross-table path collisions and documented in DESIGN).
        for (path, count) in &metrics.path_extracts {
            for (table, planned) in planned_paths {
                if planned == path {
                    r.record_path(table, path, *count);
                }
            }
        }

        if let Some(log) = &self.query_log {
            let opts = self.exec_options();
            let entry = QueryLogEntry {
                fingerprint,
                sql: sql.trim(),
                parser,
                simd: maxson_json::kernels::active().name(),
                mmap: matches!(MmapMode::from_env(), MmapMode::Enabled),
                threads: opts.threads as u64,
                shared_parse: opts.shared_parse,
                epoch,
                reuse: reuse_status,
                rows: rows as u64,
                wall: metrics.total,
                slow_threshold: self.slow_threshold,
            };
            log.record(&entry, metrics)?;
        }
        Ok(())
    }

    /// `EXPLAIN ANALYZE <query>`: run the query traced and render the span
    /// tree. Uses the session tracer when it is already enabled (so the
    /// analyzed run also lands in the `MAXSON_TRACE` export); otherwise a
    /// temporary tracer scoped to this call.
    fn explain_analyze(&self, sql: &str) -> Result<QueryResult> {
        let local;
        let tracer = if self.tracer.is_enabled() {
            &self.tracer
        } else {
            local = Tracer::enabled();
            &local
        };
        let (result, root) = self.execute_traced(sql, tracer)?;
        self.flush_trace()?;
        let root = root.expect("tracer is enabled");
        let text = crate::explain::render_analyze(&tracer.snapshot(), root.0);
        Ok(QueryResult {
            columns: vec!["explain analyze".to_string()],
            rows: text.lines().map(|l| vec![Cell::from(l)]).collect(),
            metrics: result.metrics,
            plan_display: result.plan_display,
            epoch: result.epoch,
        })
    }

    // ------------------------------------------------------------------
    // Planning
    // ------------------------------------------------------------------

    fn plan_statement(
        &self,
        wh: &Warehouse,
        stmt: &SelectStatement,
        planned_paths: &mut Vec<(String, String)>,
    ) -> Result<(LogicalPlan, Vec<String>)> {
        // 1. Gather every expression in the query (for column analysis).
        let mut all_exprs: Vec<&SqlExpr> = Vec::new();
        let has_wildcard = stmt.items.iter().any(|i| matches!(i, SelectItem::Wildcard));
        for item in &stmt.items {
            if let SelectItem::Expr { expr, .. } = item {
                all_exprs.push(expr);
            }
        }
        if let Some(w) = &stmt.where_clause {
            all_exprs.push(w);
        }
        if let Some(h) = &stmt.having {
            all_exprs.push(h);
        }
        all_exprs.extend(stmt.group_by.iter());
        all_exprs.extend(stmt.order_by.iter().map(|o| &o.expr));
        if let Some(j) = &stmt.join {
            all_exprs.push(&j.on_left);
            all_exprs.push(&j.on_right);
        }

        // 2. Build the input plan (scan or join of two scans).
        let (input, resolver) = match &stmt.join {
            None => {
                let (plan, res) = self.plan_table_scan(
                    wh,
                    &stmt.from,
                    &all_exprs,
                    stmt.where_clause.as_ref(),
                    None,
                    has_wildcard,
                    planned_paths,
                )?;
                (plan, res)
            }
            Some(join) => {
                let left_alias = stmt.from.alias.clone();
                let right_alias = join.table.alias.clone();
                let (lplan, lres) = self.plan_table_scan(
                    wh,
                    &stmt.from,
                    &all_exprs,
                    stmt.where_clause.as_ref(),
                    left_alias.as_deref(),
                    has_wildcard,
                    planned_paths,
                )?;
                let (rplan, rres) = self.plan_table_scan(
                    wh,
                    &join.table,
                    &all_exprs,
                    stmt.where_clause.as_ref(),
                    right_alias.as_deref(),
                    has_wildcard,
                    planned_paths,
                )?;
                let resolver = lres.join(rres)?;
                let left_key = resolver.compile(&join.on_left)?;
                let right_shift = resolver.left_width();
                // Right key compiles against the combined schema, then we
                // shift it back to right-side indexes.
                let right_key_combined = resolver.compile(&join.on_right)?;
                let right_key = shift_columns(right_key_combined, right_shift)?;
                let schema = resolver.schema.clone();
                (
                    LogicalPlan::Join {
                        left: Box::new(lplan),
                        right: Box::new(rplan),
                        left_key,
                        right_key,
                        schema,
                    },
                    resolver,
                )
            }
        };

        // 3. WHERE.
        let mut plan = input;
        if let Some(w) = &stmt.where_clause {
            let predicate = resolver.compile(w)?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        // 4. Expand select items.
        let mut select_exprs: Vec<(SqlExpr, String)> = Vec::new();
        for (pos, item) in stmt.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for f in resolver.schema.fields() {
                        select_exprs.push((
                            SqlExpr::Column {
                                qualifier: None,
                                name: f.name.clone(),
                            },
                            f.name.clone(),
                        ));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let name = alias.clone().unwrap_or_else(|| expr.default_name(pos));
                    select_exprs.push((expr.clone(), name));
                }
            }
        }

        // 5. ORDER BY items that don't match an output alias become hidden
        //    projected columns.
        let mut order_keys: Vec<(usize, bool)> = Vec::new();
        let mut hidden = 0usize;
        for item in &stmt.order_by {
            // By alias or identical expression.
            let found = select_exprs.iter().position(|(e, name)| {
                e == &item.expr
                    || matches!(
                        &item.expr,
                        SqlExpr::Column { qualifier: None, name: n } if n == name
                    )
            });
            let idx = match found {
                Some(i) => i,
                None => {
                    select_exprs.push((item.expr.clone(), format!("__order{hidden}")));
                    hidden += 1;
                    select_exprs.len() - 1
                }
            };
            order_keys.push((idx, item.asc));
        }
        let visible = select_exprs.len() - hidden;

        let has_aggs = !stmt.group_by.is_empty()
            || select_exprs.iter().any(|(e, _)| e.contains_aggregate())
            || stmt.having.is_some();
        if stmt.having.is_some() && stmt.group_by.is_empty() {
            return Err(EngineError::plan("HAVING requires GROUP BY".to_string()));
        }

        // 6. Aggregate + project, or plain project.
        let out_names: Vec<String> = select_exprs[..visible]
            .iter()
            .map(|(_, n)| n.clone())
            .collect();
        if has_aggs {
            // Group keys.
            let group_compiled: Vec<Expr> = stmt
                .group_by
                .iter()
                .map(|g| resolver.compile(g))
                .collect::<Result<_>>()?;
            // Collect aggregate calls across all select expressions (and
            // HAVING, which may use aggregates not in the SELECT list).
            let mut agg_calls: Vec<(AggFunc, Option<SqlExpr>)> = Vec::new();
            for (e, _) in &select_exprs {
                collect_aggs(e, &mut agg_calls);
            }
            if let Some(h) = &stmt.having {
                collect_aggs(h, &mut agg_calls);
            }
            let compiled_aggs: Vec<(AggFunc, Option<Expr>)> = agg_calls
                .iter()
                .map(|(f, arg)| Ok((*f, arg.as_ref().map(|a| resolver.compile(a)).transpose()?)))
                .collect::<Result<_>>()?;
            // Aggregate output schema: keys then aggs (all dynamically typed
            // as strings — the engine is value-typed at runtime).
            let mut agg_fields: Vec<Field> = Vec::new();
            for (i, _) in stmt.group_by.iter().enumerate() {
                agg_fields.push(Field::new(format!("__key{i}"), ColumnType::Utf8));
            }
            for (i, _) in agg_calls.iter().enumerate() {
                agg_fields.push(Field::new(format!("__agg{i}"), ColumnType::Utf8));
            }
            let agg_schema =
                Schema::new(agg_fields).map_err(|e| EngineError::plan(e.to_string()))?;
            plan = LogicalPlan::Aggregate {
                input: Box::new(plan),
                group_by: group_compiled,
                aggs: compiled_aggs,
                schema: agg_schema.clone(),
            };
            // HAVING filters the aggregate output (keys then agg columns).
            if let Some(h) = &stmt.having {
                let predicate = compile_post_agg(
                    h,
                    &stmt.group_by,
                    &agg_calls,
                    nkeys_of(&stmt.group_by),
                    &resolver,
                )?;
                plan = LogicalPlan::Filter {
                    input: Box::new(plan),
                    predicate,
                };
            }
            // Post-aggregate projection: rewrite each select expression in
            // terms of group keys / aggregate outputs.
            let nkeys = stmt.group_by.len();
            let mut post_exprs: Vec<(Expr, String)> = Vec::new();
            for (e, name) in &select_exprs {
                let compiled = compile_post_agg(e, &stmt.group_by, &agg_calls, nkeys, &resolver)?;
                post_exprs.push((compiled, name.clone()));
            }
            let post_schema = Schema::new(
                post_exprs
                    .iter()
                    .map(|(_, n)| Field::new(n.clone(), ColumnType::Utf8))
                    .collect(),
            )
            .map_err(|e| EngineError::plan(e.to_string()))?;
            plan = LogicalPlan::Project {
                input: Box::new(plan),
                exprs: post_exprs,
                schema: post_schema,
            };
        } else {
            let compiled: Vec<(Expr, String)> = select_exprs
                .iter()
                .map(|(e, n)| Ok((resolver.compile(e)?, n.clone())))
                .collect::<Result<_>>()?;
            let schema = Schema::new(
                compiled
                    .iter()
                    .map(|(_, n)| Field::new(n.clone(), ColumnType::Utf8))
                    .collect(),
            )
            .map_err(|e| EngineError::plan(e.to_string()))?;
            plan = LogicalPlan::Project {
                input: Box::new(plan),
                exprs: compiled,
                schema,
            };
        }

        // 7. Sort over the projected output.
        if !order_keys.is_empty() {
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys: order_keys
                    .iter()
                    .map(|&(i, asc)| (Expr::Column(i), asc))
                    .collect(),
            };
        }

        // 8. Strip hidden order-by columns.
        if hidden > 0 {
            let exprs: Vec<(Expr, String)> = out_names
                .iter()
                .enumerate()
                .map(|(i, n)| (Expr::Column(i), n.clone()))
                .collect();
            let schema = Schema::new(
                out_names
                    .iter()
                    .map(|n| Field::new(n.clone(), ColumnType::Utf8))
                    .collect(),
            )
            .map_err(|e| EngineError::plan(e.to_string()))?;
            plan = LogicalPlan::Project {
                input: Box::new(plan),
                exprs,
                schema,
            };
        }

        // 9. DISTINCT deduplicates the visible output columns.
        if stmt.distinct {
            plan = LogicalPlan::Distinct {
                input: Box::new(plan),
            };
        }

        // 10. LIMIT.
        if let Some(n) = stmt.limit {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        Ok((plan, out_names))
    }

    /// Plan the scan of one table: analyse referenced columns and JSON
    /// calls, offer the scan to the rewriter, otherwise build the default
    /// Norc provider with SARG pushdown on raw columns.
    #[allow(clippy::too_many_arguments)]
    fn plan_table_scan(
        &self,
        wh: &Warehouse,
        table_ref: &TableRef,
        all_exprs: &[&SqlExpr],
        predicate: Option<&SqlExpr>,
        alias: Option<&str>,
        include_all_columns: bool,
        planned_paths: &mut Vec<(String, String)>,
    ) -> Result<(LogicalPlan, Resolver)> {
        let table = wh.catalog.table(&table_ref.database, &table_ref.table)?;
        let schema = table.schema().clone();

        // Which expressions belong to this table? With an alias, qualified
        // references must match it; unqualified ones match if the column
        // exists in this table.
        let belongs = |qualifier: &Option<String>, name: &str| -> bool {
            match (qualifier, alias) {
                (Some(q), Some(a)) => q == a,
                (Some(_), None) => false,
                (None, _) => schema.index_of(name).is_some(),
            }
        };

        let mut raw_columns: Vec<String> = Vec::new();
        let mut json_calls: Vec<(String, String)> = Vec::new();
        if include_all_columns {
            // SELECT * — every table column is part of the output.
            raw_columns.extend(schema.fields().iter().map(|f| f.name.clone()));
        }
        for e in all_exprs {
            e.walk(&mut |node| match node {
                SqlExpr::Column { qualifier, name }
                    if belongs(qualifier, name) && !raw_columns.contains(name) =>
                {
                    raw_columns.push(name.clone());
                }
                SqlExpr::GetJsonObject { column, path } => {
                    if let SqlExpr::Column { qualifier, name } = column.as_ref() {
                        if belongs(qualifier, name) {
                            let call = (name.clone(), path.clone());
                            if !json_calls.contains(&call) {
                                json_calls.push(call);
                            }
                        }
                    }
                }
                _ => {}
            });
        }
        // A column referenced only inside get_json_object is not a raw
        // output column... unless no rewriter resolves its calls. We first
        // remove JSON-only columns, then add back the ones with unresolved
        // calls after consulting the rewriter.
        let json_only: Vec<String> = json_calls
            .iter()
            .map(|(c, _)| c.clone())
            .filter(|c| !is_plain_column_ref(all_exprs, c, alias, &schema))
            .collect();
        raw_columns.retain(|c| !json_only.contains(c));

        // Record the `(db.table, path)` pairs this scan will evaluate, for
        // workload-sketch attribution at query end.
        let qualified = table_key(&table_ref.database, &table_ref.table);
        for (_, path) in &json_calls {
            let pair = (qualified.clone(), path.clone());
            if !planned_paths.contains(&pair) {
                planned_paths.push(pair);
            }
        }

        // Offer to the rewriter.
        if let Some(rw) = &wh.rewriter {
            let ctx = ScanContext {
                database: &table_ref.database,
                table: &table_ref.table,
                table_schema: &schema,
                raw_columns: &raw_columns,
                json_calls: &json_calls,
                predicate,
            };
            if let Some(rewrite) = rw.rewrite_scan(&ctx)? {
                let out_schema = rewrite.provider.schema().clone();
                let resolver = Resolver {
                    schema: out_schema,
                    alias: alias.map(str::to_string),
                    resolved_paths: rewrite.resolved_paths,
                    left_fields: 0,
                };
                let plan = LogicalPlan::Scan {
                    provider: rewrite.provider,
                };
                return Ok((plan, resolver));
            }
        }

        // Default scan: raw columns plus JSON columns for every call.
        let mut scan_columns = raw_columns.clone();
        for (c, _) in &json_calls {
            if !scan_columns.contains(c) {
                scan_columns.push(c.clone());
            }
        }
        // A query referencing no columns at all (e.g. `select count(*)`)
        // still needs the row count: scan the narrowest column.
        if scan_columns.is_empty() {
            if let Some(f) = schema.fields().first() {
                scan_columns.push(f.name.clone());
            }
        }
        // Stable order: table schema order keeps plans deterministic.
        scan_columns.sort_by_key(|c| schema.index_of(c));
        let projection: Vec<usize> = scan_columns
            .iter()
            .map(|c| {
                schema.index_of(c).ok_or_else(|| {
                    EngineError::plan(format!(
                        "column '{c}' not found in {}.{}",
                        table_ref.database, table_ref.table
                    ))
                })
            })
            .collect::<Result<_>>()?;
        let sarg = predicate.and_then(|p| extract_sarg(p, &schema, alias));
        let mut provider = NorcScanProvider::new(table.clone(), projection, sarg)?;
        if self.prefilter_enabled {
            if let Some(p) = predicate {
                // One filter per JSON column of this scan.
                for (ci, field) in provider.schema().fields().iter().enumerate() {
                    let needles = equality_needles(p, &field.name, alias);
                    if !needles.is_empty() {
                        provider =
                            provider.with_prefilter(ci, maxson_json::RawFilter::new(needles));
                        break; // one prefilter column is enough in practice
                    }
                }
            }
        }
        let out_schema = provider.schema().clone();
        Ok((
            LogicalPlan::Scan {
                provider: Box::new(provider),
            },
            Resolver {
                schema: out_schema,
                alias: alias.map(str::to_string),
                resolved_paths: Vec::new(),
                left_fields: 0,
            },
        ))
    }
}

/// `true` when `column` appears as a plain (non-JSON-call) reference.
fn is_plain_column_ref(
    all_exprs: &[&SqlExpr],
    column: &str,
    alias: Option<&str>,
    schema: &Schema,
) -> bool {
    let mut found = false;
    for e in all_exprs {
        walk_skipping_json_args(e, &mut |node| {
            if let SqlExpr::Column { qualifier, name } = node {
                let matches_alias = match (qualifier, alias) {
                    (Some(q), Some(a)) => q == a,
                    (Some(_), None) => false,
                    (None, _) => schema.index_of(name).is_some(),
                };
                if matches_alias && name == column {
                    found = true;
                }
            }
        });
    }
    found
}

/// Walk an expression but do not descend into `get_json_object` column
/// arguments (those are not raw column outputs).
fn walk_skipping_json_args<'a>(e: &'a SqlExpr, f: &mut impl FnMut(&'a SqlExpr)) {
    f(e);
    match e {
        SqlExpr::GetJsonObject { .. } => {}
        SqlExpr::Binary { left, right, .. } => {
            walk_skipping_json_args(left, f);
            walk_skipping_json_args(right, f);
        }
        SqlExpr::Not(x) | SqlExpr::Neg(x) => walk_skipping_json_args(x, f),
        SqlExpr::IsNull { expr, .. } => walk_skipping_json_args(expr, f),
        SqlExpr::Between { expr, low, high } => {
            walk_skipping_json_args(expr, f);
            walk_skipping_json_args(low, f);
            walk_skipping_json_args(high, f);
        }
        SqlExpr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                walk_skipping_json_args(a, f);
            }
        }
        SqlExpr::InList { expr, items, .. } => {
            walk_skipping_json_args(expr, f);
            for i in items {
                walk_skipping_json_args(i, f);
            }
        }
        SqlExpr::Like { expr, .. } => walk_skipping_json_args(expr, f),
        SqlExpr::Function { args, .. } => {
            for a in args {
                walk_skipping_json_args(a, f);
            }
        }
        SqlExpr::Column { .. } | SqlExpr::Literal(_) => {}
    }
}

/// Collect Sparser needles: string literals that the predicate's top-level
/// AND-conjuncts require to appear in `json_column`'s raw text
/// (`get_json_object(json_column, path) = 'literal'`).
fn equality_needles(predicate: &SqlExpr, json_column: &str, alias: Option<&str>) -> Vec<String> {
    fn walk_conjuncts<'a>(e: &'a SqlExpr, f: &mut impl FnMut(&'a SqlExpr)) {
        if let SqlExpr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } = e
        {
            walk_conjuncts(left, f);
            walk_conjuncts(right, f);
        } else {
            f(e);
        }
    }
    let mut needles = Vec::new();
    walk_conjuncts(predicate, &mut |conjunct| {
        if let SqlExpr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = conjunct
        {
            let pairs = [(left, right), (right, left)];
            for (call, lit) in pairs {
                if let (SqlExpr::GetJsonObject { column, .. }, SqlExpr::Literal(Cell::Str(value))) =
                    (call.as_ref(), lit.as_ref())
                {
                    if let SqlExpr::Column { qualifier, name } = column.as_ref() {
                        if name == json_column && qualifier_matches(qualifier, alias) {
                            if let Some(n) = maxson_json::RawFilter::equality_needle(value) {
                                needles.push(n);
                            }
                        }
                    }
                }
            }
        }
    });
    needles
}

/// Extract a conjunction of `column op literal` leaves usable as a SARG on
/// the raw table (JSON calls are *not* extracted here — that is Maxson's
/// cache-side pushdown).
fn extract_sarg(
    predicate: &SqlExpr,
    schema: &Schema,
    alias: Option<&str>,
) -> Option<SearchArgument> {
    let mut sarg = SearchArgument::new();
    collect_sarg_conjuncts(predicate, schema, alias, &mut sarg);
    if sarg.is_empty() {
        None
    } else {
        Some(sarg)
    }
}

fn collect_sarg_conjuncts(
    e: &SqlExpr,
    schema: &Schema,
    alias: Option<&str>,
    sarg: &mut SearchArgument,
) {
    match e {
        SqlExpr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            collect_sarg_conjuncts(left, schema, alias, sarg);
            collect_sarg_conjuncts(right, schema, alias, sarg);
        }
        SqlExpr::Binary { left, op, right } => {
            let cmp = match op {
                BinaryOp::Eq => CmpOp::Eq,
                BinaryOp::NotEq => CmpOp::NotEq,
                BinaryOp::Lt => CmpOp::Lt,
                BinaryOp::LtEq => CmpOp::LtEq,
                BinaryOp::Gt => CmpOp::Gt,
                BinaryOp::GtEq => CmpOp::GtEq,
                _ => return,
            };
            match (left.as_ref(), right.as_ref()) {
                (SqlExpr::Column { qualifier, name }, SqlExpr::Literal(lit))
                    if qualifier_matches(qualifier, alias) =>
                {
                    if let Some(idx) = schema.index_of(name) {
                        *sarg = std::mem::take(sarg).with(idx, cmp, lit.clone());
                    }
                }
                (SqlExpr::Literal(lit), SqlExpr::Column { qualifier, name })
                    if qualifier_matches(qualifier, alias) =>
                {
                    if let Some(idx) = schema.index_of(name) {
                        let flipped = match cmp {
                            CmpOp::Lt => CmpOp::Gt,
                            CmpOp::LtEq => CmpOp::GtEq,
                            CmpOp::Gt => CmpOp::Lt,
                            CmpOp::GtEq => CmpOp::LtEq,
                            other => other,
                        };
                        *sarg = std::mem::take(sarg).with(idx, flipped, lit.clone());
                    }
                }
                _ => {}
            }
        }
        SqlExpr::Between { expr, low, high } => {
            if let (
                SqlExpr::Column { qualifier, name },
                SqlExpr::Literal(lo),
                SqlExpr::Literal(hi),
            ) = (expr.as_ref(), low.as_ref(), high.as_ref())
            {
                if qualifier_matches(qualifier, alias) {
                    if let Some(idx) = schema.index_of(name) {
                        *sarg = std::mem::take(sarg)
                            .with(idx, CmpOp::GtEq, lo.clone())
                            .with(idx, CmpOp::LtEq, hi.clone());
                    }
                }
            }
        }
        _ => {}
    }
}

fn qualifier_matches(qualifier: &Option<String>, alias: Option<&str>) -> bool {
    match (qualifier, alias) {
        (None, _) => true,
        (Some(q), Some(a)) => q == a,
        (Some(_), None) => false,
    }
}

/// Resolves SQL names to physical column indexes over a scan (or join)
/// output schema, honouring rewriter-resolved JSONPath placeholders.
#[derive(Debug)]
struct Resolver {
    schema: Schema,
    alias: Option<String>,
    /// `(column, path) -> output column name` from the scan rewrite.
    resolved_paths: Vec<((String, String), String)>,
    /// For joins: number of fields contributed by the left side.
    left_fields: usize,
}

impl Resolver {
    fn left_width(&self) -> usize {
        if self.left_fields > 0 {
            self.left_fields
        } else {
            self.schema.len()
        }
    }

    /// Merge two single-table resolvers into a join resolver.
    fn join(self, right: Resolver) -> Result<Resolver> {
        let mut fields = Vec::new();
        let prefix_l = self.alias.clone().unwrap_or_else(|| "l".into());
        let prefix_r = right.alias.clone().unwrap_or_else(|| "r".into());
        for f in self.schema.fields() {
            fields.push(Field::new(format!("{prefix_l}.{}", f.name), f.ty));
        }
        for f in right.schema.fields() {
            fields.push(Field::new(format!("{prefix_r}.{}", f.name), f.ty));
        }
        let left_fields = self.schema.len();
        let mut resolved = Vec::new();
        for ((c, p), out) in self.resolved_paths {
            resolved.push(((format!("{prefix_l}.{c}"), p), format!("{prefix_l}.{out}")));
        }
        for ((c, p), out) in right.resolved_paths {
            resolved.push(((format!("{prefix_r}.{c}"), p), format!("{prefix_r}.{out}")));
        }
        Ok(Resolver {
            schema: Schema::new(fields).map_err(|e| EngineError::plan(e.to_string()))?,
            alias: None,
            resolved_paths: resolved,
            left_fields,
        })
    }

    /// Index of `[qualifier.]name` in the resolver's schema.
    fn resolve_column(&self, qualifier: &Option<String>, name: &str) -> Result<usize> {
        if self.left_fields > 0 {
            // Join schema: names are "alias.column".
            if let Some(q) = qualifier {
                let qualified = format!("{q}.{name}");
                return self
                    .schema
                    .index_of(&qualified)
                    .ok_or_else(|| EngineError::plan(format!("unknown column '{qualified}'")));
            }
            // Unqualified in a join: unique suffix match.
            let matches: Vec<usize> = self
                .schema
                .fields()
                .iter()
                .enumerate()
                .filter(|(_, f)| f.name.ends_with(&format!(".{name}")))
                .map(|(i, _)| i)
                .collect();
            return match matches.as_slice() {
                [one] => Ok(*one),
                [] => Err(EngineError::plan(format!("unknown column '{name}'"))),
                _ => Err(EngineError::plan(format!("ambiguous column '{name}'"))),
            };
        }
        if let Some(q) = qualifier {
            if self.alias.as_deref() != Some(q.as_str()) {
                return Err(EngineError::plan(format!("unknown table qualifier '{q}'")));
            }
        }
        self.schema
            .index_of(name)
            .ok_or_else(|| EngineError::plan(format!("unknown column '{name}'")))
    }

    /// Look up a rewriter-resolved JSONPath placeholder column.
    fn resolve_path(&self, qualifier: &Option<String>, column: &str, path: &str) -> Option<usize> {
        let key_column = if self.left_fields > 0 {
            let q = qualifier.as_deref()?;
            format!("{q}.{column}")
        } else {
            column.to_string()
        };
        self.resolved_paths
            .iter()
            .find(|((c, p), _)| *c == key_column && p == path)
            .and_then(|(_, out)| self.schema.index_of(out))
    }

    /// Compile an AST expression to a physical expression over this schema.
    fn compile(&self, e: &SqlExpr) -> Result<Expr> {
        Ok(match e {
            SqlExpr::Column { qualifier, name } => {
                Expr::Column(self.resolve_column(qualifier, name)?)
            }
            SqlExpr::Literal(c) => Expr::Literal(c.clone()),
            SqlExpr::GetJsonObject { column, path } => {
                let SqlExpr::Column { qualifier, name } = column.as_ref() else {
                    return Err(EngineError::plan(
                        "get_json_object requires a column argument".to_string(),
                    ));
                };
                // Algorithm 1, line 15: cache hit -> placeholder (a plain
                // column reference into the combined scan output).
                if let Some(idx) = self.resolve_path(qualifier, name, path) {
                    return Ok(Expr::Column(idx));
                }
                let compiled_path = JsonPath::parse(path)
                    .map_err(|err| EngineError::plan(format!("bad JSONPath '{path}': {err}")))?;
                Expr::GetJsonObject {
                    column: self.resolve_column(qualifier, name)?,
                    path: compiled_path,
                }
            }
            SqlExpr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(self.compile(left)?),
                op: *op,
                right: Box::new(self.compile(right)?),
            },
            SqlExpr::Not(x) => Expr::Not(Box::new(self.compile(x)?)),
            SqlExpr::Neg(x) => Expr::Neg(Box::new(self.compile(x)?)),
            SqlExpr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.compile(expr)?),
                negated: *negated,
            },
            SqlExpr::Between { expr, low, high } => Expr::Between {
                expr: Box::new(self.compile(expr)?),
                low: Box::new(self.compile(low)?),
                high: Box::new(self.compile(high)?),
            },
            SqlExpr::InList {
                expr,
                items,
                negated,
            } => Expr::InList {
                expr: Box::new(self.compile(expr)?),
                items: items
                    .iter()
                    .map(|i| self.compile(i))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
            SqlExpr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(self.compile(expr)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            SqlExpr::Function { func, args } => Expr::Function {
                func: *func,
                args: args
                    .iter()
                    .map(|a| self.compile(a))
                    .collect::<Result<_>>()?,
            },
            SqlExpr::Aggregate { .. } => {
                return Err(EngineError::plan(
                    "aggregate call in a non-aggregate position".to_string(),
                ))
            }
        })
    }
}

/// Shift all column references in an expression down by `offset` (used to
/// re-base the join's right key from the combined schema to the right-side
/// row).
fn shift_columns(e: Expr, offset: usize) -> Result<Expr> {
    let mut failed = false;
    let shifted = e.rewrite(&mut |node| match node {
        Expr::Column(i) => {
            if i < offset {
                failed = true;
                Expr::Column(i)
            } else {
                Expr::Column(i - offset)
            }
        }
        Expr::GetJsonObject { column, path } => {
            if column < offset {
                failed = true;
                Expr::GetJsonObject { column, path }
            } else {
                Expr::GetJsonObject {
                    column: column - offset,
                    path,
                }
            }
        }
        other => other,
    });
    if failed {
        Err(EngineError::plan(
            "join ON right side references left table columns".to_string(),
        ))
    } else {
        Ok(shifted)
    }
}

fn nkeys_of(group_by: &[SqlExpr]) -> usize {
    group_by.len()
}

/// Collect aggregate calls left-to-right (deduplicated structurally).
fn collect_aggs(e: &SqlExpr, out: &mut Vec<(AggFunc, Option<SqlExpr>)>) {
    e.walk(&mut |node| {
        if let SqlExpr::Aggregate { func, arg } = node {
            let call = (*func, arg.as_ref().map(|a| a.as_ref().clone()));
            if !out.contains(&call) {
                out.push(call);
            }
        }
    });
}

/// Compile a select expression in the post-aggregate space: group-by
/// expressions become key columns, aggregate calls become agg columns, and
/// scalar operations compose on top.
#[allow(clippy::only_used_in_recursion)]
fn compile_post_agg(
    e: &SqlExpr,
    group_by: &[SqlExpr],
    agg_calls: &[(AggFunc, Option<SqlExpr>)],
    nkeys: usize,
    resolver: &Resolver,
) -> Result<Expr> {
    if let Some(i) = group_by.iter().position(|g| g == e) {
        return Ok(Expr::Column(i));
    }
    if let SqlExpr::Aggregate { func, arg } = e {
        let call = (*func, arg.as_ref().map(|a| a.as_ref().clone()));
        if let Some(j) = agg_calls.iter().position(|c| *c == call) {
            return Ok(Expr::Column(nkeys + j));
        }
    }
    match e {
        SqlExpr::Binary { left, op, right } => Ok(Expr::Binary {
            left: Box::new(compile_post_agg(
                left, group_by, agg_calls, nkeys, resolver,
            )?),
            op: *op,
            right: Box::new(compile_post_agg(
                right, group_by, agg_calls, nkeys, resolver,
            )?),
        }),
        SqlExpr::Not(x) => Ok(Expr::Not(Box::new(compile_post_agg(
            x, group_by, agg_calls, nkeys, resolver,
        )?))),
        SqlExpr::Neg(x) => Ok(Expr::Neg(Box::new(compile_post_agg(
            x, group_by, agg_calls, nkeys, resolver,
        )?))),
        SqlExpr::Literal(c) => Ok(Expr::Literal(c.clone())),
        SqlExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
            expr: Box::new(compile_post_agg(
                expr, group_by, agg_calls, nkeys, resolver,
            )?),
            negated: *negated,
        }),
        SqlExpr::Between { expr, low, high } => Ok(Expr::Between {
            expr: Box::new(compile_post_agg(
                expr, group_by, agg_calls, nkeys, resolver,
            )?),
            low: Box::new(compile_post_agg(low, group_by, agg_calls, nkeys, resolver)?),
            high: Box::new(compile_post_agg(
                high, group_by, agg_calls, nkeys, resolver,
            )?),
        }),
        SqlExpr::InList {
            expr,
            items,
            negated,
        } => Ok(Expr::InList {
            expr: Box::new(compile_post_agg(
                expr, group_by, agg_calls, nkeys, resolver,
            )?),
            items: items
                .iter()
                .map(|i| compile_post_agg(i, group_by, agg_calls, nkeys, resolver))
                .collect::<Result<_>>()?,
            negated: *negated,
        }),
        SqlExpr::Like {
            expr,
            pattern,
            negated,
        } => Ok(Expr::Like {
            expr: Box::new(compile_post_agg(
                expr, group_by, agg_calls, nkeys, resolver,
            )?),
            pattern: pattern.clone(),
            negated: *negated,
        }),
        SqlExpr::Function { func, args } => Ok(Expr::Function {
            func: *func,
            args: args
                .iter()
                .map(|a| compile_post_agg(a, group_by, agg_calls, nkeys, resolver))
                .collect::<Result<_>>()?,
        }),
        other => Err(EngineError::plan(format!(
            "expression {other:?} must appear in GROUP BY or inside an aggregate"
        ))),
    }
}
