//! Table scanning with a pluggable provider.
//!
//! [`ScanProvider`] is the engine's extension point for the table-reading
//! phase. The default [`NorcScanProvider`] reads a Norc table split by
//! split, applying SARG row-group skipping. Maxson's value combiner
//! installs its own provider that reads the raw table and cache table with
//! two synchronized readers.

use std::fmt::Debug;
use std::time::Instant;

use maxson_json::RawFilter;
use maxson_storage::{Cell, ColumnData, Schema, SearchArgument, Table};

use crate::error::Result;
use crate::metrics::ExecMetrics;

/// Physical layout of one scanned batch.
#[derive(Debug)]
pub enum BatchData {
    /// Row-major: providers that assemble rows directly (the Maxson
    /// combiner's two synchronized readers, the online LRU, test stubs).
    Rows(Vec<Vec<Cell>>),
    /// Column-major: decoded storage chunks handed over without
    /// materializing any row. Cells are built lazily by the consumer.
    Columns(Vec<ColumnData>),
}

/// One split's worth of scanned data plus an optional selection vector.
///
/// `selection` lists the surviving row indexes in ascending order (rows a
/// SARG/Sparser prefilter rejected are absent); `None` means every row
/// survives. Consumers must visit only selected rows — a columnar batch's
/// unselected rows hold decoded but logically dead data.
#[derive(Debug)]
pub struct Batch {
    /// The scanned data.
    pub data: BatchData,
    /// Surviving row indexes, ascending; `None` keeps all rows.
    pub selection: Option<Vec<u32>>,
}

impl Batch {
    /// Wrap already-materialized rows (no selection).
    pub fn from_rows(rows: Vec<Vec<Cell>>) -> Self {
        Batch {
            data: BatchData::Rows(rows),
            selection: None,
        }
    }

    /// Number of rows a consumer will see (after selection).
    pub fn len(&self) -> usize {
        match &self.selection {
            Some(sel) => sel.len(),
            None => match &self.data {
                BatchData::Rows(rows) => rows.len(),
                BatchData::Columns(cols) => cols.first().map_or(0, |c| c.len()),
            },
        }
    }

    /// `true` when no rows survive.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the selected rows, charging `cells_materialized` for
    /// every column→cell conversion and `batch_rows_skipped` for rows the
    /// selection vector drops. Row-major batches move through unchanged
    /// (their cells were already built by the provider).
    pub fn into_rows(self, metrics: &mut ExecMetrics) -> Vec<Vec<Cell>> {
        match self.data {
            BatchData::Rows(rows) => match self.selection {
                None => rows,
                Some(sel) => {
                    metrics.batch_rows_skipped += (rows.len() - sel.len()) as u64;
                    let mut keep = vec![false; rows.len()];
                    for &i in &sel {
                        keep[i as usize] = true;
                    }
                    rows.into_iter()
                        .zip(keep)
                        .filter_map(|(row, k)| k.then_some(row))
                        .collect()
                }
            },
            BatchData::Columns(cols) => {
                let n = cols.first().map_or(0, |c| c.len());
                let mut out = Vec::new();
                match self.selection {
                    None => {
                        out.reserve(n);
                        for i in 0..n {
                            out.push(cols.iter().map(|c| c.get(i)).collect());
                        }
                    }
                    Some(sel) => {
                        metrics.batch_rows_skipped += (n - sel.len()) as u64;
                        out.reserve(sel.len());
                        for &i in &sel {
                            out.push(cols.iter().map(|c| c.get(i as usize)).collect());
                        }
                    }
                }
                metrics.cells_materialized += (out.len() * cols.len()) as u64;
                out
            }
        }
    }
}

/// Supplies rows for a scan node.
///
/// `Send + Sync` is a supertrait because the split-parallel executor shares
/// one provider across scoped worker threads, each calling
/// [`ScanProvider::scan_split`] for a different split.
pub trait ScanProvider: Debug + Send + Sync {
    /// Output schema of the scan (what downstream expressions resolve
    /// against).
    fn schema(&self) -> &Schema;

    /// Read all rows, charging read time/bytes to `metrics`.
    fn scan(&self, metrics: &mut ExecMetrics) -> Result<Vec<Vec<Cell>>>;

    /// Number of independently scannable splits. The default of 1 keeps a
    /// provider on the serial path; providers that can read splits
    /// independently override this together with [`ScanProvider::scan_split`].
    fn split_count(&self) -> usize {
        1
    }

    /// Read the rows of one split (`0 <= split < split_count()`), charging
    /// that split's read time/bytes to `metrics`. Concatenating the outputs
    /// of every split in index order must equal [`ScanProvider::scan`].
    fn scan_split(&self, split: usize, metrics: &mut ExecMetrics) -> Result<Vec<Vec<Cell>>> {
        debug_assert_eq!(split, 0, "default provider has a single split");
        let _ = split;
        self.scan(metrics)
    }

    /// Read all rows as one batch. The default wraps [`ScanProvider::scan`]
    /// row-major; columnar providers override to hand decoded chunks to the
    /// pipeline without materializing cells.
    fn scan_batch(&self, metrics: &mut ExecMetrics) -> Result<Batch> {
        Ok(Batch::from_rows(self.scan(metrics)?))
    }

    /// Read one split as a batch (same contract as
    /// [`ScanProvider::scan_split`]: selected rows concatenated in split
    /// index order must equal [`ScanProvider::scan`]).
    fn scan_split_batch(&self, split: usize, metrics: &mut ExecMetrics) -> Result<Batch> {
        Ok(Batch::from_rows(self.scan_split(split, metrics)?))
    }

    /// Short label for plan display.
    fn label(&self) -> String;
}

/// The default provider: scan a Norc table directory.
#[derive(Debug)]
pub struct NorcScanProvider {
    table: Table,
    /// Column indexes to materialize, in output order.
    projection: Vec<usize>,
    /// Projected schema.
    out_schema: Schema,
    /// Optional SARG used to skip row groups (on raw columns).
    sarg: Option<SearchArgument>,
    /// Optional Sparser-style raw prefilter: `(output column index, filter)`.
    /// Rows whose JSON text cannot satisfy the predicate are dropped before
    /// they reach the parser.
    prefilter: Option<(usize, RawFilter)>,
}

impl NorcScanProvider {
    /// Create a provider over `table`, materializing `projection` columns.
    /// `sarg` column indexes refer to the *table* schema.
    pub fn new(table: Table, projection: Vec<usize>, sarg: Option<SearchArgument>) -> Result<Self> {
        let names: Vec<&str> = projection
            .iter()
            .map(|&i| table.schema().fields()[i].name.as_str())
            .collect();
        let out_schema = table.schema().project(&names)?;
        Ok(NorcScanProvider {
            table,
            projection,
            out_schema,
            sarg,
            prefilter: None,
        })
    }

    /// Attach a raw prefilter over output column `column_idx` (must hold
    /// the JSON text the filter's needles constrain).
    pub fn with_prefilter(mut self, column_idx: usize, filter: RawFilter) -> Self {
        if !filter.is_empty() {
            self.prefilter = Some((column_idx, filter));
        }
        self
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }
}

impl ScanProvider for NorcScanProvider {
    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn scan(&self, metrics: &mut ExecMetrics) -> Result<Vec<Vec<Cell>>> {
        let mut rows = Vec::new();
        for split_idx in 0..self.table.file_count() {
            rows.extend(self.scan_split(split_idx, metrics)?);
        }
        Ok(rows)
    }

    fn split_count(&self) -> usize {
        self.table.file_count()
    }

    fn scan_split(&self, split: usize, metrics: &mut ExecMetrics) -> Result<Vec<Vec<Cell>>> {
        Ok(self.scan_split_batch(split, metrics)?.into_rows(metrics))
    }

    fn scan_batch(&self, metrics: &mut ExecMetrics) -> Result<Batch> {
        // Whole-table batch only makes sense for single-file tables; the
        // pipeline walks splits individually otherwise.
        Ok(Batch::from_rows(self.scan(metrics)?))
    }

    fn scan_split_batch(&self, split: usize, metrics: &mut ExecMetrics) -> Result<Batch> {
        let start = Instant::now();
        let (file, meta_hit) = self.table.open_split_cached(split)?;
        if meta_hit {
            metrics.meta_cache_hits += 1;
        } else {
            metrics.meta_cache_misses += 1;
        }
        let keep: Option<Vec<bool>> = self.sarg.as_ref().map(|s| {
            // Match ORC: only single-stripe files support skipping here,
            // mirroring the restriction the paper inherits (§IV-F).
            if file.stripe_count() <= 1 {
                s.keep_array(file.row_groups())
            } else {
                vec![true; file.row_group_count()]
            }
        });
        if let Some(keep) = &keep {
            let skipped = keep.iter().filter(|k| !**k).count() as u64;
            metrics.row_groups_skipped += skipped;
            metrics.row_groups_read += keep.len() as u64 - skipped;
        } else {
            metrics.row_groups_read += file.row_group_count() as u64;
        }
        let cols = file.read_columns(&self.projection, keep.as_deref())?;
        // Charge bytes once per decoded column chunk — not per materialized
        // row, which walked every cell on the hot path and missed rows the
        // prefilter drops (their bytes were decoded all the same).
        for c in &cols {
            metrics.bytes_read += c.byte_size() as u64;
        }
        let n = cols.first().map_or(0, |c| c.len());
        let selection = match &self.prefilter {
            // Sparser-style raw rejection straight off the decoded column:
            // sound because the needles are required by the predicate the
            // Filter re-checks. NULL documents pass through (the filter
            // decides), matching the row-at-a-time behavior.
            Some((ci, filter)) => {
                let mut sel: Vec<u32> = Vec::with_capacity(n);
                if let Some(ColumnData::Utf8 { valid, values }) = cols.get(*ci) {
                    for i in 0..n {
                        if valid[i] && !filter.maybe_matches(&values[i]) {
                            metrics.prefilter_dropped += 1;
                        } else {
                            sel.push(i as u32);
                        }
                    }
                } else {
                    sel.extend(0..n as u32);
                }
                Some(sel)
            }
            None => None,
        };
        metrics.rows_scanned += selection.as_ref().map_or(n, Vec::len) as u64;
        let spent = start.elapsed();
        metrics.read += spent;
        metrics.read_wall += spent;
        Ok(Batch {
            data: BatchData::Columns(cols),
            selection,
        })
    }

    fn label(&self) -> String {
        format!(
            "NorcScan({}, cols={:?}{})",
            self.table.dir().display(),
            self.projection,
            if self.sarg.as_ref().is_some_and(|s| !s.is_empty()) {
                ", sarg"
            } else {
                ""
            }
        ) + if self.prefilter.is_some() {
            " +prefilter"
        } else {
            ""
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxson_storage::file::WriteOptions;
    use maxson_storage::{CmpOp, ColumnType, Field};
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        std::env::temp_dir().join(format!("maxson-scan-{}-{nanos}-{name}", std::process::id()))
    }

    fn make_table(name: &str, rows_per_file: &[i64], rg_size: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("tag", ColumnType::Utf8),
        ])
        .unwrap();
        let mut t = Table::create(temp_dir(name), schema, 0).unwrap();
        let mut next = 0i64;
        for &n in rows_per_file {
            let rows: Vec<Vec<Cell>> = (next..next + n)
                .map(|i| vec![Cell::Int(i), Cell::from(format!("t{i}"))])
                .collect();
            next += n;
            t.append_file(
                &rows,
                WriteOptions {
                    row_group_size: rg_size,
                    ..Default::default()
                },
                1,
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn scans_all_rows_in_order() {
        let t = make_table("all", &[10, 5], 4);
        let p = NorcScanProvider::new(t, vec![0, 1], None).unwrap();
        let mut m = ExecMetrics::default();
        let rows = p.scan(&mut m).unwrap();
        assert_eq!(rows.len(), 15);
        assert_eq!(rows[0][0], Cell::Int(0));
        assert_eq!(rows[14][0], Cell::Int(14));
        assert_eq!(m.rows_scanned, 15);
        assert!(m.bytes_read > 0);
        assert!(m.read > std::time::Duration::ZERO);
        p.table.drop_table().unwrap();
    }

    #[test]
    fn projection_subsets_columns() {
        let t = make_table("proj", &[6], 10);
        let p = NorcScanProvider::new(t, vec![1], None).unwrap();
        assert_eq!(p.schema().fields()[0].name, "tag");
        let mut m = ExecMetrics::default();
        let rows = p.scan(&mut m).unwrap();
        assert_eq!(rows[3], vec![Cell::Str("t3".into())]);
        p.table.drop_table().unwrap();
    }

    #[test]
    fn sarg_skips_row_groups() {
        // 20 rows in row groups of 5: ids 0-4,5-9,10-14,15-19.
        let t = make_table("sarg", &[20], 5);
        let sarg = SearchArgument::new().with(0, CmpOp::GtEq, Cell::Int(12));
        let p = NorcScanProvider::new(t, vec![0], Some(sarg)).unwrap();
        let mut m = ExecMetrics::default();
        let rows = p.scan(&mut m).unwrap();
        // Groups 0-4 and 5-9 skipped; group 10-14 kept (contains 12+).
        assert_eq!(m.row_groups_skipped, 2);
        assert_eq!(m.row_groups_read, 2);
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0][0], Cell::Int(10));
        p.table.drop_table().unwrap();
    }

    #[test]
    fn multi_stripe_files_disable_skipping() {
        let schema = Schema::new(vec![Field::new("id", ColumnType::Int64)]).unwrap();
        let mut t = Table::create(temp_dir("multistripe"), schema, 0).unwrap();
        let rows: Vec<Vec<Cell>> = (0..20).map(|i| vec![Cell::Int(i)]).collect();
        t.append_file(
            &rows,
            WriteOptions {
                row_group_size: 5,
                row_groups_per_stripe: 1, // 4 stripes
            },
            1,
        )
        .unwrap();
        let sarg = SearchArgument::new().with(0, CmpOp::GtEq, Cell::Int(100));
        let p = NorcScanProvider::new(t, vec![0], Some(sarg)).unwrap();
        let mut m = ExecMetrics::default();
        let rows = p.scan(&mut m).unwrap();
        assert_eq!(m.row_groups_skipped, 0, "multi-stripe file must not skip");
        assert_eq!(rows.len(), 20);
        p.table.drop_table().unwrap();
    }

    #[test]
    fn split_scan_concatenation_matches_whole_scan() {
        let t = make_table("splits", &[7, 5, 9], 4);
        let p = NorcScanProvider::new(t, vec![0, 1], None).unwrap();
        assert_eq!(p.split_count(), 3);
        let mut whole_m = ExecMetrics::default();
        let whole = p.scan(&mut whole_m).unwrap();
        let mut split_m = ExecMetrics::default();
        let mut stitched = Vec::new();
        for s in 0..p.split_count() {
            stitched.extend(p.scan_split(s, &mut split_m).unwrap());
        }
        assert_eq!(stitched, whole);
        assert_eq!(split_m.rows_scanned, whole_m.rows_scanned);
        assert_eq!(split_m.bytes_read, whole_m.bytes_read);
        assert_eq!(split_m.row_groups_read, whole_m.row_groups_read);
        p.table.drop_table().unwrap();
    }

    #[test]
    fn batch_scan_is_columnar_and_charges_bytes_per_chunk() {
        let t = make_table("batch", &[8], 4);
        let p = NorcScanProvider::new(t, vec![0, 1], None).unwrap();
        let mut bm = ExecMetrics::default();
        let batch = p.scan_split_batch(0, &mut bm).unwrap();
        assert!(matches!(batch.data, BatchData::Columns(_)));
        assert!(batch.selection.is_none());
        assert_eq!(batch.len(), 8);
        // Bytes are charged at decode time, before any cell exists.
        assert!(bm.bytes_read > 0);
        assert_eq!(bm.cells_materialized, 0);
        assert_eq!(bm.rows_scanned, 8);
        let rows = batch.into_rows(&mut bm);
        assert_eq!(bm.cells_materialized, 16);
        assert_eq!(bm.batch_rows_skipped, 0);
        // The row API is the batch API plus materialization.
        let mut rm = ExecMetrics::default();
        let via_rows = p.scan_split(0, &mut rm).unwrap();
        assert_eq!(rows, via_rows);
        assert_eq!(rm.bytes_read, bm.bytes_read);
        assert_eq!(rm.cells_materialized, 16);
        p.table.drop_table().unwrap();
    }

    #[test]
    fn prefilter_becomes_selection_vector() {
        let schema = Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("doc", ColumnType::Utf8),
        ])
        .unwrap();
        let mut t = Table::create(temp_dir("prefilter-batch"), schema, 0).unwrap();
        let rows: Vec<Vec<Cell>> = (0..6i64)
            .map(|i| {
                let name = if i % 3 == 0 { "banana" } else { "apple" };
                vec![
                    Cell::Int(i),
                    Cell::from(format!(r#"{{"name": "{name}", "n": {i}}}"#)),
                ]
            })
            .collect();
        t.append_file(&rows, WriteOptions::default(), 1).unwrap();
        let filter = RawFilter::new(vec![RawFilter::equality_needle("banana").unwrap()]);
        let p = NorcScanProvider::new(t, vec![0, 1], None)
            .unwrap()
            .with_prefilter(1, filter);
        let mut m = ExecMetrics::default();
        let batch = p.scan_split_batch(0, &mut m).unwrap();
        assert_eq!(batch.selection, Some(vec![0, 3]));
        assert_eq!(batch.len(), 2);
        assert_eq!(m.prefilter_dropped, 4);
        assert_eq!(m.rows_scanned, 2, "only selected rows count as scanned");
        // Dropped rows' bytes were still decoded, so they are still charged.
        let mut no_filter_m = ExecMetrics::default();
        let p2 =
            NorcScanProvider::new(Table::open(p.table.dir()).unwrap(), vec![0, 1], None).unwrap();
        p2.scan(&mut no_filter_m).unwrap();
        assert_eq!(m.bytes_read, no_filter_m.bytes_read);
        // Materializing honors the selection and counts skipped rows.
        let rows_out = batch.into_rows(&mut m);
        assert_eq!(rows_out.len(), 2);
        assert_eq!(rows_out[1][0], Cell::Int(3));
        assert_eq!(m.batch_rows_skipped, 4);
        assert_eq!(m.cells_materialized, 4);
        p.table.drop_table().unwrap();
    }

    #[test]
    fn row_major_batch_selection_filters_rows() {
        let rows: Vec<Vec<Cell>> = (0..5).map(|i| vec![Cell::Int(i)]).collect();
        let batch = Batch {
            data: BatchData::Rows(rows),
            selection: Some(vec![1, 4]),
        };
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        let mut m = ExecMetrics::default();
        let out = batch.into_rows(&mut m);
        assert_eq!(out, vec![vec![Cell::Int(1)], vec![Cell::Int(4)]]);
        assert_eq!(m.batch_rows_skipped, 3);
        assert_eq!(m.cells_materialized, 0, "row-major cells pre-exist");
    }

    #[test]
    fn label_mentions_sarg() {
        let t = make_table("label", &[1], 10);
        let sarg = SearchArgument::new().with(0, CmpOp::Eq, Cell::Int(0));
        let p = NorcScanProvider::new(t, vec![0], Some(sarg)).unwrap();
        assert!(p.label().contains("sarg"));
        p.table.drop_table().unwrap();
    }
}
