//! Table scanning with a pluggable provider.
//!
//! [`ScanProvider`] is the engine's extension point for the table-reading
//! phase. The default [`NorcScanProvider`] reads a Norc table split by
//! split, applying SARG row-group skipping. Maxson's value combiner
//! installs its own provider that reads the raw table and cache table with
//! two synchronized readers.

use std::fmt::Debug;
use std::time::Instant;

use maxson_json::RawFilter;
use maxson_storage::{Cell, Schema, SearchArgument, Table};

use crate::error::Result;
use crate::metrics::ExecMetrics;

/// Supplies rows for a scan node.
///
/// `Send + Sync` is a supertrait because the split-parallel executor shares
/// one provider across scoped worker threads, each calling
/// [`ScanProvider::scan_split`] for a different split.
pub trait ScanProvider: Debug + Send + Sync {
    /// Output schema of the scan (what downstream expressions resolve
    /// against).
    fn schema(&self) -> &Schema;

    /// Read all rows, charging read time/bytes to `metrics`.
    fn scan(&self, metrics: &mut ExecMetrics) -> Result<Vec<Vec<Cell>>>;

    /// Number of independently scannable splits. The default of 1 keeps a
    /// provider on the serial path; providers that can read splits
    /// independently override this together with [`ScanProvider::scan_split`].
    fn split_count(&self) -> usize {
        1
    }

    /// Read the rows of one split (`0 <= split < split_count()`), charging
    /// that split's read time/bytes to `metrics`. Concatenating the outputs
    /// of every split in index order must equal [`ScanProvider::scan`].
    fn scan_split(&self, split: usize, metrics: &mut ExecMetrics) -> Result<Vec<Vec<Cell>>> {
        debug_assert_eq!(split, 0, "default provider has a single split");
        let _ = split;
        self.scan(metrics)
    }

    /// Short label for plan display.
    fn label(&self) -> String;
}

/// The default provider: scan a Norc table directory.
#[derive(Debug)]
pub struct NorcScanProvider {
    table: Table,
    /// Column indexes to materialize, in output order.
    projection: Vec<usize>,
    /// Projected schema.
    out_schema: Schema,
    /// Optional SARG used to skip row groups (on raw columns).
    sarg: Option<SearchArgument>,
    /// Optional Sparser-style raw prefilter: `(output column index, filter)`.
    /// Rows whose JSON text cannot satisfy the predicate are dropped before
    /// they reach the parser.
    prefilter: Option<(usize, RawFilter)>,
}

impl NorcScanProvider {
    /// Create a provider over `table`, materializing `projection` columns.
    /// `sarg` column indexes refer to the *table* schema.
    pub fn new(table: Table, projection: Vec<usize>, sarg: Option<SearchArgument>) -> Result<Self> {
        let names: Vec<&str> = projection
            .iter()
            .map(|&i| table.schema().fields()[i].name.as_str())
            .collect();
        let out_schema = table.schema().project(&names)?;
        Ok(NorcScanProvider {
            table,
            projection,
            out_schema,
            sarg,
            prefilter: None,
        })
    }

    /// Attach a raw prefilter over output column `column_idx` (must hold
    /// the JSON text the filter's needles constrain).
    pub fn with_prefilter(mut self, column_idx: usize, filter: RawFilter) -> Self {
        if !filter.is_empty() {
            self.prefilter = Some((column_idx, filter));
        }
        self
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }
}

impl ScanProvider for NorcScanProvider {
    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn scan(&self, metrics: &mut ExecMetrics) -> Result<Vec<Vec<Cell>>> {
        let mut rows = Vec::new();
        for split_idx in 0..self.table.file_count() {
            rows.extend(self.scan_split(split_idx, metrics)?);
        }
        Ok(rows)
    }

    fn split_count(&self) -> usize {
        self.table.file_count()
    }

    fn scan_split(&self, split: usize, metrics: &mut ExecMetrics) -> Result<Vec<Vec<Cell>>> {
        let start = Instant::now();
        let mut rows = Vec::new();
        let file = self.table.open_split(split)?;
        let keep: Option<Vec<bool>> = self.sarg.as_ref().map(|s| {
            // Match ORC: only single-stripe files support skipping here,
            // mirroring the restriction the paper inherits (§IV-F).
            if file.stripe_count() <= 1 {
                s.keep_array(file.row_groups())
            } else {
                vec![true; file.row_group_count()]
            }
        });
        if let Some(keep) = &keep {
            let skipped = keep.iter().filter(|k| !**k).count() as u64;
            metrics.row_groups_skipped += skipped;
            metrics.row_groups_read += keep.len() as u64 - skipped;
        } else {
            metrics.row_groups_read += file.row_group_count() as u64;
        }
        let cols = file.read_columns(&self.projection, keep.as_deref())?;
        let n = cols.first().map_or(0, |c| c.len());
        for i in 0..n {
            if let Some((ci, filter)) = &self.prefilter {
                // Sparser-style raw rejection: sound because the needles
                // are required by the predicate the Filter re-checks.
                if let Cell::Str(json) = cols[*ci].get(i) {
                    if !filter.maybe_matches(&json) {
                        metrics.prefilter_dropped += 1;
                        continue;
                    }
                }
            }
            let row: Vec<Cell> = cols.iter().map(|c| c.get(i)).collect();
            metrics.bytes_read += row.iter().map(Cell::byte_size).sum::<usize>() as u64;
            rows.push(row);
        }
        metrics.rows_scanned += rows.len() as u64;
        let spent = start.elapsed();
        metrics.read += spent;
        metrics.read_wall += spent;
        Ok(rows)
    }

    fn label(&self) -> String {
        format!(
            "NorcScan({}, cols={:?}{})",
            self.table.dir().display(),
            self.projection,
            if self.sarg.as_ref().is_some_and(|s| !s.is_empty()) {
                ", sarg"
            } else {
                ""
            }
        ) + if self.prefilter.is_some() {
            " +prefilter"
        } else {
            ""
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxson_storage::file::WriteOptions;
    use maxson_storage::{CmpOp, ColumnType, Field};
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        std::env::temp_dir().join(format!("maxson-scan-{}-{nanos}-{name}", std::process::id()))
    }

    fn make_table(name: &str, rows_per_file: &[i64], rg_size: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("tag", ColumnType::Utf8),
        ])
        .unwrap();
        let mut t = Table::create(temp_dir(name), schema, 0).unwrap();
        let mut next = 0i64;
        for &n in rows_per_file {
            let rows: Vec<Vec<Cell>> = (next..next + n)
                .map(|i| vec![Cell::Int(i), Cell::Str(format!("t{i}"))])
                .collect();
            next += n;
            t.append_file(
                &rows,
                WriteOptions {
                    row_group_size: rg_size,
                    ..Default::default()
                },
                1,
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn scans_all_rows_in_order() {
        let t = make_table("all", &[10, 5], 4);
        let p = NorcScanProvider::new(t, vec![0, 1], None).unwrap();
        let mut m = ExecMetrics::default();
        let rows = p.scan(&mut m).unwrap();
        assert_eq!(rows.len(), 15);
        assert_eq!(rows[0][0], Cell::Int(0));
        assert_eq!(rows[14][0], Cell::Int(14));
        assert_eq!(m.rows_scanned, 15);
        assert!(m.bytes_read > 0);
        assert!(m.read > std::time::Duration::ZERO);
        p.table.drop_table().unwrap();
    }

    #[test]
    fn projection_subsets_columns() {
        let t = make_table("proj", &[6], 10);
        let p = NorcScanProvider::new(t, vec![1], None).unwrap();
        assert_eq!(p.schema().fields()[0].name, "tag");
        let mut m = ExecMetrics::default();
        let rows = p.scan(&mut m).unwrap();
        assert_eq!(rows[3], vec![Cell::Str("t3".into())]);
        p.table.drop_table().unwrap();
    }

    #[test]
    fn sarg_skips_row_groups() {
        // 20 rows in row groups of 5: ids 0-4,5-9,10-14,15-19.
        let t = make_table("sarg", &[20], 5);
        let sarg = SearchArgument::new().with(0, CmpOp::GtEq, Cell::Int(12));
        let p = NorcScanProvider::new(t, vec![0], Some(sarg)).unwrap();
        let mut m = ExecMetrics::default();
        let rows = p.scan(&mut m).unwrap();
        // Groups 0-4 and 5-9 skipped; group 10-14 kept (contains 12+).
        assert_eq!(m.row_groups_skipped, 2);
        assert_eq!(m.row_groups_read, 2);
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0][0], Cell::Int(10));
        p.table.drop_table().unwrap();
    }

    #[test]
    fn multi_stripe_files_disable_skipping() {
        let schema = Schema::new(vec![Field::new("id", ColumnType::Int64)]).unwrap();
        let mut t = Table::create(temp_dir("multistripe"), schema, 0).unwrap();
        let rows: Vec<Vec<Cell>> = (0..20).map(|i| vec![Cell::Int(i)]).collect();
        t.append_file(
            &rows,
            WriteOptions {
                row_group_size: 5,
                row_groups_per_stripe: 1, // 4 stripes
            },
            1,
        )
        .unwrap();
        let sarg = SearchArgument::new().with(0, CmpOp::GtEq, Cell::Int(100));
        let p = NorcScanProvider::new(t, vec![0], Some(sarg)).unwrap();
        let mut m = ExecMetrics::default();
        let rows = p.scan(&mut m).unwrap();
        assert_eq!(m.row_groups_skipped, 0, "multi-stripe file must not skip");
        assert_eq!(rows.len(), 20);
        p.table.drop_table().unwrap();
    }

    #[test]
    fn split_scan_concatenation_matches_whole_scan() {
        let t = make_table("splits", &[7, 5, 9], 4);
        let p = NorcScanProvider::new(t, vec![0, 1], None).unwrap();
        assert_eq!(p.split_count(), 3);
        let mut whole_m = ExecMetrics::default();
        let whole = p.scan(&mut whole_m).unwrap();
        let mut split_m = ExecMetrics::default();
        let mut stitched = Vec::new();
        for s in 0..p.split_count() {
            stitched.extend(p.scan_split(s, &mut split_m).unwrap());
        }
        assert_eq!(stitched, whole);
        assert_eq!(split_m.rows_scanned, whole_m.rows_scanned);
        assert_eq!(split_m.bytes_read, whole_m.bytes_read);
        assert_eq!(split_m.row_groups_read, whole_m.row_groups_read);
        p.table.drop_table().unwrap();
    }

    #[test]
    fn label_mentions_sarg() {
        let t = make_table("label", &[1], 10);
        let sarg = SearchArgument::new().with(0, CmpOp::Eq, Cell::Int(0));
        let p = NorcScanProvider::new(t, vec![0], Some(sarg)).unwrap();
        assert!(p.label().contains("sarg"));
        p.table.drop_table().unwrap();
    }
}
