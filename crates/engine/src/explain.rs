//! `EXPLAIN ANALYZE` rendering: the span tree a traced execution recorded,
//! printed as an indented operator tree with per-operator wall time, row
//! counts, and the counter deltas each operator charged (parse calls,
//! dedup, cache hits, ...), followed by the tracer's named counters.
//!
//! The tree shape, rows, and counters are deterministic across thread
//! counts: per-split spans exist on the serial path too, child order sorts
//! by split index (not completion order), and zero-valued counter deltas
//! are never emitted. Only the `wall=` annotations vary run to run —
//! golden tests normalize exactly those tokens.

use maxson_obs::{SpanRecord, TraceSnapshot};

/// Render the subtree rooted at span `root` (a query-root span) plus the
/// tracer's counters.
pub fn render_analyze(snap: &TraceSnapshot, root: u64) -> String {
    let mut out = String::new();
    match snap.span(root) {
        Some(span) => render_node(snap, span, 0, &mut out),
        None => out.push_str("(no spans recorded)\n"),
    }
    let mut counters = snap.counters.clone();
    counters.sort();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (k, v) in counters {
            out.push_str(&format!("  {k}={v}\n"));
        }
    }
    out
}

fn render_node(snap: &TraceSnapshot, span: &SpanRecord, indent: usize, out: &mut String) {
    out.push_str(&"  ".repeat(indent));
    out.push_str(&span.name);
    out.push_str(&format!(" wall={:?}", span.wall()));
    for (k, v) in &span.attrs {
        // The root span repeats the SQL text; the header line is enough.
        if k == "sql" {
            continue;
        }
        out.push_str(&format!(" {k}={v}"));
    }
    out.push('\n');
    for child in snap.children_of(span.id) {
        render_node(snap, child, indent + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxson_obs::Tracer;

    #[test]
    fn renders_tree_with_attrs_and_counters() {
        let t = Tracer::enabled();
        let root_id;
        {
            let root = t.span("query");
            root.attr("sql", "select 1");
            root.attr("rows", 1u64);
            root_id = root.id().unwrap().0;
            let pipe = t.child("scan_pipeline", root.id());
            pipe.attr("splits", 2u64);
            for s in [1usize, 0] {
                let split = t.child("split", pipe.id());
                split.attr("split", s);
            }
        }
        t.add("cache.hits", 3);
        let text = render_analyze(&t.snapshot(), root_id);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("query wall="));
        assert!(lines[0].contains("rows=1"));
        assert!(!lines[0].contains("sql="), "sql attr is suppressed");
        assert!(lines[1].starts_with("  scan_pipeline wall="));
        // Split children render in split order despite reversed recording.
        assert!(lines[2].contains("split=0"));
        assert!(lines[3].contains("split=1"));
        assert_eq!(lines[4], "counters:");
        assert_eq!(lines[5], "  cache.hits=3");
    }

    #[test]
    fn missing_root_is_reported() {
        let t = Tracer::new();
        let text = render_analyze(&t.snapshot(), 0);
        assert!(text.contains("no spans recorded"));
    }
}
