//! Byte-level encodings used inside Norc column streams.
//!
//! * unsigned LEB128 **varints** for lengths and counts,
//! * **zigzag** mapping so signed deltas encode compactly,
//! * a simple **RLE** for integer runs (like ORC's RLEv1: literal spans and
//!   runs of a repeated value),
//! * length-prefixed UTF-8 for strings,
//! * raw little-endian `f64`,
//! * a one-bit-per-row **null bitmap**,
//! * FNV-1a 64-bit checksums for corruption detection.

use crate::error::{Result, StorageError};

/// Append an unsigned varint (LEB128).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an unsigned varint, advancing `pos`.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| StorageError::corrupt("varint truncated"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(StorageError::corrupt("varint overflow"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-encode a signed integer.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// RLE-encode a slice of i64. The stream is a sequence of spans:
/// `varint(header)` where `header = (len << 1) | is_run`, followed by either
/// one zigzag varint (run) or `len` zigzag varints (literals).
pub fn rle_encode_i64(values: &[i64], out: &mut Vec<u8>) {
    write_varint(out, values.len() as u64);
    let mut i = 0usize;
    while i < values.len() {
        // Measure the run starting at i.
        let mut run = 1usize;
        while i + run < values.len() && values[i + run] == values[i] {
            run += 1;
        }
        if run >= 3 {
            write_varint(out, ((run as u64) << 1) | 1);
            write_varint(out, zigzag(values[i]));
            i += run;
        } else {
            // Literal span: extend until the next run of >=3 begins.
            let start = i;
            i += run;
            while i < values.len() {
                let mut r = 1usize;
                while i + r < values.len() && values[i + r] == values[i] {
                    r += 1;
                }
                if r >= 3 {
                    break;
                }
                i += r;
            }
            let len = i - start;
            write_varint(out, (len as u64) << 1);
            for &v in &values[start..i] {
                write_varint(out, zigzag(v));
            }
        }
    }
}

/// Decode a stream produced by [`rle_encode_i64`].
pub fn rle_decode_i64(buf: &[u8], pos: &mut usize) -> Result<Vec<i64>> {
    let total = read_varint(buf, pos)? as usize;
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let header = read_varint(buf, pos)?;
        let len = (header >> 1) as usize;
        if len == 0 || out.len() + len > total {
            return Err(StorageError::corrupt("RLE span overruns declared length"));
        }
        if header & 1 == 1 {
            let v = unzigzag(read_varint(buf, pos)?);
            out.extend(std::iter::repeat_n(v, len));
        } else {
            for _ in 0..len {
                out.push(unzigzag(read_varint(buf, pos)?));
            }
        }
    }
    Ok(out)
}

/// Append a length-prefixed UTF-8 string.
pub fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Read a length-prefixed UTF-8 string.
pub fn read_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let len = read_varint(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .ok_or_else(|| StorageError::corrupt("string length overflow"))?;
    if end > buf.len() {
        return Err(StorageError::corrupt("string truncated"));
    }
    let s = std::str::from_utf8(&buf[*pos..end])
        .map_err(|_| StorageError::corrupt("string is not UTF-8"))?
        .to_string();
    *pos = end;
    Ok(s)
}

/// Append an `f64` in little-endian.
pub fn write_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read an `f64` in little-endian.
pub fn read_f64(buf: &[u8], pos: &mut usize) -> Result<f64> {
    let end = *pos + 8;
    if end > buf.len() {
        return Err(StorageError::corrupt("f64 truncated"));
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(f64::from_le_bytes(b))
}

/// Pack a slice of booleans into a bitmap (LSB-first within each byte),
/// preceded by a varint count.
pub fn write_bitmap(out: &mut Vec<u8>, bits: &[bool]) {
    write_varint(out, bits.len() as u64);
    let mut byte = 0u8;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !bits.len().is_multiple_of(8) {
        out.push(byte);
    }
}

/// Inverse of [`write_bitmap`].
pub fn read_bitmap(buf: &[u8], pos: &mut usize) -> Result<Vec<bool>> {
    let n = read_varint(buf, pos)? as usize;
    let nbytes = n.div_ceil(8);
    let end = *pos + nbytes;
    if end > buf.len() {
        return Err(StorageError::corrupt("bitmap truncated"));
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let byte = buf[*pos + i / 8];
        out.push(byte >> (i % 8) & 1 == 1);
    }
    *pos = end;
    Ok(out)
}

/// FNV-1a 64-bit hash, used as the file checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_truncation_detected() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1_000_000);
        buf.pop();
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn rle_round_trip_mixed() {
        let values: Vec<i64> = vec![5, 5, 5, 5, 1, 2, 3, -9, -9, -9, 0, 0, 7];
        let mut buf = Vec::new();
        rle_encode_i64(&values, &mut buf);
        let mut pos = 0;
        assert_eq!(rle_decode_i64(&buf, &mut pos).unwrap(), values);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn rle_runs_compress() {
        let values = vec![42i64; 10_000];
        let mut buf = Vec::new();
        rle_encode_i64(&values, &mut buf);
        assert!(
            buf.len() < 16,
            "run of 10k identical should be tiny, got {}",
            buf.len()
        );
    }

    #[test]
    fn rle_empty_and_single() {
        for values in [vec![], vec![7i64]] {
            let mut buf = Vec::new();
            rle_encode_i64(&values, &mut buf);
            let mut pos = 0;
            assert_eq!(rle_decode_i64(&buf, &mut pos).unwrap(), values);
        }
    }

    #[test]
    fn rle_corruption_detected() {
        let mut buf = Vec::new();
        rle_encode_i64(&[1, 2, 3, 4, 5], &mut buf);
        buf.truncate(buf.len() - 1);
        let mut pos = 0;
        assert!(rle_decode_i64(&buf, &mut pos).is_err());
    }

    #[test]
    fn string_round_trip() {
        let mut buf = Vec::new();
        write_str(&mut buf, "héllo \"world\"");
        write_str(&mut buf, "");
        let mut pos = 0;
        assert_eq!(read_str(&buf, &mut pos).unwrap(), "héllo \"world\"");
        assert_eq!(read_str(&buf, &mut pos).unwrap(), "");
    }

    #[test]
    fn string_invalid_utf8_detected() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut pos = 0;
        assert!(read_str(&buf, &mut pos).is_err());
    }

    #[test]
    fn f64_round_trip() {
        let mut buf = Vec::new();
        for v in [0.0f64, -2.5, f64::MAX, f64::MIN_POSITIVE] {
            write_f64(&mut buf, v);
        }
        let mut pos = 0;
        for v in [0.0f64, -2.5, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(read_f64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn bitmap_round_trip() {
        for n in [0usize, 1, 7, 8, 9, 64, 100] {
            let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let mut buf = Vec::new();
            write_bitmap(&mut buf, &bits);
            let mut pos = 0;
            assert_eq!(read_bitmap(&buf, &mut pos).unwrap(), bits);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        let a = fnv1a(b"hello");
        assert_eq!(a, fnv1a(b"hello"));
        assert_ne!(a, fnv1a(b"hellp"));
        assert_ne!(fnv1a(b""), 0);
    }
}
