//! A catalog of databases and tables rooted in one directory.
//!
//! Mirrors the warehouse naming scheme of the paper: values are addressed by
//! (database name, table name, column name, JSONPath). The catalog owns the
//! directory layout `<root>/<db>/<table>/` and exposes table metadata —
//! including modification times, which the Maxson plan rewriter compares
//! against cache times (Algorithm 1, lines 16-19).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::{Result, StorageError};
use crate::metacache::NorcMetaCache;
use crate::schema::Schema;
use crate::table::Table;

/// Lightweight table metadata snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMeta {
    /// Database name.
    pub database: String,
    /// Table name.
    pub table: String,
    /// Table schema.
    pub schema: Schema,
    /// Logical timestamp of last modification.
    pub modified_at: u64,
    /// Number of part files.
    pub file_count: usize,
}

/// Directory-backed catalog. Tables are kept open in memory; the on-disk
/// metadata stays the source of truth between processes.
#[derive(Debug)]
pub struct Catalog {
    root: PathBuf,
    tables: BTreeMap<(String, String), Table>,
    /// Shared footer/index cache, attached to every table in the catalog.
    meta_cache: Arc<NorcMetaCache>,
}

impl Catalog {
    /// Open (or initialize) a catalog rooted at `root`, loading any tables
    /// already present on disk. A fresh metadata cache (budget from
    /// `MAXSON_META_CACHE_BYTES`) is created for it.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        Catalog::open_with_cache(root, Arc::new(NorcMetaCache::from_env()))
    }

    /// Open a catalog that shares an existing metadata cache — used when a
    /// new catalog view replaces an old one over the same warehouse (the
    /// midnight-cycle epoch swap) so warm footers survive the swap.
    pub fn open_with_cache(
        root: impl Into<PathBuf>,
        meta_cache: Arc<NorcMetaCache>,
    ) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let mut tables = BTreeMap::new();
        for db_entry in fs::read_dir(&root)? {
            let db_entry = db_entry?;
            if !db_entry.file_type()?.is_dir() {
                continue;
            }
            let db = db_entry.file_name().to_string_lossy().to_string();
            for t_entry in fs::read_dir(db_entry.path())? {
                let t_entry = t_entry?;
                if !t_entry.file_type()?.is_dir() {
                    continue;
                }
                let name = t_entry.file_name().to_string_lossy().to_string();
                if let Ok(mut table) = Table::open(t_entry.path()) {
                    table.set_meta_cache(Some(Arc::clone(&meta_cache)));
                    tables.insert((db.clone(), name), table);
                }
            }
        }
        Ok(Catalog {
            root,
            tables,
            meta_cache,
        })
    }

    /// The catalog's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The shared footer/index cache attached to this catalog's tables.
    pub fn meta_cache(&self) -> &Arc<NorcMetaCache> {
        &self.meta_cache
    }

    /// Create a table, creating the database directory if needed.
    pub fn create_table(
        &mut self,
        database: &str,
        table: &str,
        schema: Schema,
        now: u64,
    ) -> Result<&mut Table> {
        let key = (database.to_string(), table.to_string());
        if self.tables.contains_key(&key) {
            return Err(StorageError::InvalidOperation {
                detail: format!("table {database}.{table} already exists"),
            });
        }
        let dir = self.root.join(database).join(table);
        let mut t = Table::create(dir, schema, now)?;
        t.set_meta_cache(Some(Arc::clone(&self.meta_cache)));
        Ok(self.tables.entry(key).or_insert(t))
    }

    /// Borrow a table.
    pub fn table(&self, database: &str, table: &str) -> Result<&Table> {
        self.tables
            .get(&(database.to_string(), table.to_string()))
            .ok_or_else(|| StorageError::NotFound {
                what: format!("table {database}.{table}"),
            })
    }

    /// Mutably borrow a table (for appends).
    pub fn table_mut(&mut self, database: &str, table: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&(database.to_string(), table.to_string()))
            .ok_or_else(|| StorageError::NotFound {
                what: format!("table {database}.{table}"),
            })
    }

    /// `true` when the table exists.
    pub fn has_table(&self, database: &str, table: &str) -> bool {
        self.tables
            .contains_key(&(database.to_string(), table.to_string()))
    }

    /// Drop a table and delete its directory.
    pub fn drop_table(&mut self, database: &str, table: &str) -> Result<()> {
        let t = self
            .tables
            .remove(&(database.to_string(), table.to_string()))
            .ok_or_else(|| StorageError::NotFound {
                what: format!("table {database}.{table}"),
            })?;
        t.drop_table()
    }

    /// Metadata snapshot for one table.
    pub fn table_meta(&self, database: &str, table: &str) -> Result<TableMeta> {
        let t = self.table(database, table)?;
        Ok(TableMeta {
            database: database.to_string(),
            table: table.to_string(),
            schema: t.schema().clone(),
            modified_at: t.modified_at(),
            file_count: t.file_count(),
        })
    }

    /// List `(database, table)` pairs in name order.
    pub fn list_tables(&self) -> Vec<(String, String)> {
        self.tables.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::file::WriteOptions;
    use crate::schema::{ColumnType, Field};

    fn temp_root(name: &str) -> PathBuf {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        std::env::temp_dir().join(format!(
            "maxson-catalog-{}-{nanos}-{name}",
            std::process::id()
        ))
    }

    fn schema() -> Schema {
        Schema::new(vec![Field::new("v", ColumnType::Int64)]).unwrap()
    }

    #[test]
    fn create_lookup_drop() {
        let root = temp_root("cld");
        let mut cat = Catalog::open(&root).unwrap();
        cat.create_table("mydb", "t", schema(), 1).unwrap();
        assert!(cat.has_table("mydb", "t"));
        assert!(!cat.has_table("mydb", "x"));
        assert!(cat.create_table("mydb", "t", schema(), 1).is_err());

        let meta = cat.table_meta("mydb", "t").unwrap();
        assert_eq!(meta.modified_at, 1);
        assert_eq!(meta.file_count, 0);

        cat.drop_table("mydb", "t").unwrap();
        assert!(!cat.has_table("mydb", "t"));
        assert!(cat.drop_table("mydb", "t").is_err());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn reopen_discovers_tables() {
        let root = temp_root("reopen");
        {
            let mut cat = Catalog::open(&root).unwrap();
            let t = cat.create_table("db1", "sales", schema(), 5).unwrap();
            t.append_file(&[vec![Cell::Int(9)]], WriteOptions::default(), 6)
                .unwrap();
            cat.create_table("db2", "logs", schema(), 7).unwrap();
        }
        let cat = Catalog::open(&root).unwrap();
        assert_eq!(
            cat.list_tables(),
            vec![
                ("db1".to_string(), "sales".to_string()),
                ("db2".to_string(), "logs".to_string()),
            ]
        );
        assert_eq!(cat.table_meta("db1", "sales").unwrap().modified_at, 6);
        assert_eq!(cat.table("db1", "sales").unwrap().num_rows().unwrap(), 1);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_table_errors() {
        let root = temp_root("missing");
        let cat = Catalog::open(&root).unwrap();
        assert!(cat.table("no", "table").is_err());
        assert!(cat.table_meta("no", "table").is_err());
        fs::remove_dir_all(&root).ok();
    }
}
