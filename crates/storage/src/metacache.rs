//! Process-wide cache of opened Norc files (decoded footer, stripe/row-group
//! index, and file bytes), shared by every session over one warehouse.
//!
//! Opening a Norc file reads the whole part file, verifies its checksum, and
//! decodes the footer — work that is identical on every query touching the
//! split. The Presto metadata-caching study (PAPERS.md) reports most scan
//! latency going to exactly this repeated footer/index re-read, and the
//! warehouse is append-only (part files are never rewritten), so the decoded
//! form can be reused safely across queries and sessions.
//!
//! Entries are keyed by part-file path and validated against the file's
//! `(length, mtime)` before every hit, so a replaced or appended-over file is
//! re-read rather than served stale. The cache is bounded by a byte budget
//! (`MAXSON_META_CACHE_BYTES`, default 256 MiB) with least-recently-used
//! eviction; hit/miss/invalidation/eviction counts are exposed for the server
//! stats endpoint and the stress-test invariant checker.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

use crate::error::Result;
use crate::file::NorcFile;

/// Default byte budget when `MAXSON_META_CACHE_BYTES` is unset.
pub const DEFAULT_META_CACHE_BYTES: u64 = 256 * 1024 * 1024;

/// Counter snapshot for telemetry and test invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetaCacheStats {
    /// Opens served from the cache (validation passed).
    pub hits: u64,
    /// Opens that had to read the file (absent or invalidated).
    pub misses: u64,
    /// Entries dropped because the on-disk file changed shape.
    pub invalidations: u64,
    /// Entries dropped to stay under the byte budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Files currently resident.
    pub resident_files: u64,
}

struct CacheEntry {
    file: Arc<NorcFile>,
    len: u64,
    mtime: Option<SystemTime>,
    last_used: u64,
}

#[derive(Default)]
struct CacheState {
    entries: HashMap<PathBuf, CacheEntry>,
    resident_bytes: u64,
    tick: u64,
}

/// Shared, bounded cache of opened [`NorcFile`]s. Cheap to clone behind an
/// [`Arc`]; every [`crate::Catalog`] owns one and attaches it to its tables.
pub struct NorcMetaCache {
    budget_bytes: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    state: Mutex<CacheState>,
}

impl std::fmt::Debug for NorcMetaCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("NorcMetaCache")
            .field("budget_bytes", &self.budget_bytes)
            .field("resident_bytes", &s.resident_bytes)
            .field("resident_files", &s.resident_files)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

impl NorcMetaCache {
    /// A cache bounded to `budget_bytes` (0 disables residency: every open
    /// misses, which keeps the type usable as an "off" switch in tests).
    pub fn new(budget_bytes: u64) -> Self {
        NorcMetaCache {
            budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            state: Mutex::new(CacheState::default()),
        }
    }

    /// Budget from `MAXSON_META_CACHE_BYTES` (default 256 MiB).
    pub fn from_env() -> Self {
        let budget = std::env::var("MAXSON_META_CACHE_BYTES")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_META_CACHE_BYTES);
        NorcMetaCache::new(budget)
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Open `path`, serving the decoded file from the cache when the on-disk
    /// `(length, mtime)` still matches the cached entry. Returns the file
    /// plus whether this open was a cache hit.
    pub fn open(&self, path: &Path) -> Result<(Arc<NorcFile>, bool)> {
        let meta = std::fs::metadata(path)?;
        let len = meta.len();
        let mtime = meta.modified().ok();
        {
            let mut state = self.state.lock().unwrap();
            state.tick += 1;
            let tick = state.tick;
            match state.entries.get_mut(path) {
                Some(entry) if entry.len == len && entry.mtime == mtime => {
                    entry.last_used = tick;
                    let file = Arc::clone(&entry.file);
                    drop(state);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((file, true));
                }
                Some(_) => {
                    // Shape changed on disk: drop the stale entry and fall
                    // through to a full (checksum-verifying) re-read.
                    let stale = state.entries.remove(path).unwrap();
                    state.resident_bytes -= stale.file.byte_size() as u64;
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                }
                None => {}
            }
        }
        // Read outside the lock so concurrent misses on different files
        // don't serialize on each other's disk reads.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let file = Arc::new(NorcFile::open(path)?);
        let size = file.byte_size() as u64;
        if size <= self.budget_bytes {
            let mut state = self.state.lock().unwrap();
            state.tick += 1;
            let tick = state.tick;
            // A concurrent miss may have inserted meanwhile; replacing is
            // harmless (both reads decoded the same bytes).
            if let Some(prev) = state.entries.remove(path) {
                state.resident_bytes -= prev.file.byte_size() as u64;
            }
            while state.resident_bytes + size > self.budget_bytes {
                let Some(victim) = state
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(p, _)| p.clone())
                else {
                    break;
                };
                let evicted = state.entries.remove(&victim).unwrap();
                state.resident_bytes -= evicted.file.byte_size() as u64;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            state.resident_bytes += size;
            state.entries.insert(
                path.to_path_buf(),
                CacheEntry {
                    file: Arc::clone(&file),
                    len,
                    mtime,
                    last_used: tick,
                },
            );
        }
        Ok((file, false))
    }

    /// Drop every resident entry (counters are kept).
    pub fn clear(&self) {
        let mut state = self.state.lock().unwrap();
        state.entries.clear();
        state.resident_bytes = 0;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MetaCacheStats {
        let (resident_bytes, resident_files) = {
            let state = self.state.lock().unwrap();
            (state.resident_bytes, state.entries.len() as u64)
        };
        MetaCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes,
            resident_files,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::file::{write_rows, WriteOptions};
    use crate::schema::{ColumnType, Field, Schema};

    fn temp_dir(name: &str) -> PathBuf {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        let dir = std::env::temp_dir().join(format!(
            "maxson-metacache-{}-{nanos}-{name}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn schema() -> Schema {
        Schema::new(vec![Field::new("v", ColumnType::Int64)]).unwrap()
    }

    fn write_part(dir: &Path, name: &str, rows: i64) -> PathBuf {
        let path = dir.join(name);
        let data: Vec<Vec<Cell>> = (0..rows).map(|i| vec![Cell::Int(i)]).collect();
        write_rows(&path, schema(), &data, WriteOptions::default()).unwrap();
        path
    }

    #[test]
    fn second_open_hits() {
        let dir = temp_dir("hits");
        let path = write_part(&dir, "a.norc", 10);
        let cache = NorcMetaCache::new(u64::MAX);
        let (f1, hit1) = cache.open(&path).unwrap();
        let (f2, hit2) = cache.open(&path).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&f1, &f2), "hit returns the same decoded file");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.resident_files, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn changed_file_invalidates() {
        let dir = temp_dir("inval");
        let path = write_part(&dir, "a.norc", 10);
        let cache = NorcMetaCache::new(u64::MAX);
        cache.open(&path).unwrap();
        // Rewrite with a different row count: length changes.
        write_part(&dir, "a.norc", 25);
        let (f, hit) = cache.open(&path).unwrap();
        assert!(!hit);
        assert_eq!(f.num_rows(), 25, "re-read sees the new contents");
        assert_eq!(cache.stats().invalidations, 1);
        // And the fresh entry hits again.
        assert!(cache.open(&path).unwrap().1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_evicts_least_recently_used() {
        let dir = temp_dir("evict");
        let a = write_part(&dir, "a.norc", 50);
        let b = write_part(&dir, "b.norc", 50);
        let c = write_part(&dir, "c.norc", 50);
        let one = NorcFile::open(&a).unwrap().byte_size() as u64;
        // Room for roughly two files.
        let cache = NorcMetaCache::new(one * 2 + one / 2);
        cache.open(&a).unwrap();
        cache.open(&b).unwrap();
        cache.open(&a).unwrap(); // a most recent → b is the LRU victim
        cache.open(&c).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident_files, 2);
        assert!(cache.open(&a).unwrap().1, "a survived");
        assert!(!cache.open(&b).unwrap().1, "b was evicted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_budget_never_resides() {
        let dir = temp_dir("zero");
        let path = write_part(&dir, "a.norc", 10);
        let cache = NorcMetaCache::new(0);
        assert!(!cache.open(&path).unwrap().1);
        assert!(!cache.open(&path).unwrap().1);
        assert_eq!(cache.stats().resident_files, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clear_drops_entries_keeps_counters() {
        let dir = temp_dir("clear");
        let path = write_part(&dir, "a.norc", 10);
        let cache = NorcMetaCache::new(u64::MAX);
        cache.open(&path).unwrap();
        cache.open(&path).unwrap();
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.resident_files, 0);
        assert_eq!(stats.hits, 1);
        assert!(!cache.open(&path).unwrap().1, "cold again after clear");
        std::fs::remove_dir_all(&dir).ok();
    }
}
