//! Tables as directories of immutable Norc files.
//!
//! A table mirrors the paper's Hive-on-HDFS layout: an ordered list of
//! part files plus a metadata document. Appends add whole files and bump the
//! table's logical modification time; existing files are never rewritten
//! (§II-B: the warehouse is append-only, and appended data is almost never
//! modified).
//!
//! File index = split index: Maxson's cacher writes cache file *k* from raw
//! file *k*, so positional row alignment holds per split (§IV-C).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use maxson_json::{parse as json_parse, to_string_pretty, JsonValue};

use crate::cell::Cell;
use crate::error::{Result, StorageError};
use crate::file::{write_rows, NorcFile, WriteOptions};
use crate::metacache::NorcMetaCache;
use crate::schema::{ColumnType, Field, Schema};

/// Name of the metadata document inside a table directory.
const META_FILE: &str = "_meta.json";

/// A table on disk: directory + metadata.
#[derive(Debug, Clone)]
pub struct Table {
    dir: PathBuf,
    schema: Schema,
    /// Logical modification timestamp (simulation clock ticks).
    modified_at: u64,
    /// Ordered part-file names.
    files: Vec<String>,
    /// Shared footer/index cache splits are opened through (attached by the
    /// owning [`crate::Catalog`]; clones keep the same cache).
    meta_cache: Option<Arc<NorcMetaCache>>,
}

impl Table {
    /// Create a new empty table directory. Fails if it already exists.
    pub fn create(dir: impl Into<PathBuf>, schema: Schema, now: u64) -> Result<Self> {
        let dir = dir.into();
        if dir.exists() {
            return Err(StorageError::InvalidOperation {
                detail: format!("table directory {} already exists", dir.display()),
            });
        }
        fs::create_dir_all(&dir)?;
        let table = Table {
            dir,
            schema,
            modified_at: now,
            files: Vec::new(),
            meta_cache: None,
        };
        table.write_meta()?;
        Ok(table)
    }

    /// Open an existing table directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        let meta_path = dir.join(META_FILE);
        let text = fs::read_to_string(&meta_path).map_err(|_| StorageError::NotFound {
            what: format!("table metadata {}", meta_path.display()),
        })?;
        let doc = json_parse(&text).map_err(|e| StorageError::corrupt(e.to_string()))?;
        let schema_val = doc
            .get("schema")
            .ok_or_else(|| StorageError::corrupt("meta missing schema"))?;
        let mut fields = Vec::new();
        for item in schema_val.as_array().unwrap_or(&[]) {
            let name = item
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| StorageError::corrupt("field missing name"))?;
            let ty = item
                .get("type")
                .and_then(JsonValue::as_i64)
                .ok_or_else(|| StorageError::corrupt("field missing type"))?;
            fields.push(Field::new(name, ColumnType::from_tag(ty as u8)?));
        }
        let schema = Schema::new(fields).map_err(|e| StorageError::corrupt(e.to_string()))?;
        let modified_at = doc
            .get("modified_at")
            .and_then(JsonValue::as_i64)
            .ok_or_else(|| StorageError::corrupt("meta missing modified_at"))?
            as u64;
        let files = doc
            .get("files")
            .and_then(JsonValue::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        Ok(Table {
            dir,
            schema,
            modified_at,
            files,
            meta_cache: None,
        })
    }

    /// Attach (or detach) the shared footer/index cache used by
    /// [`Table::open_split`].
    pub fn set_meta_cache(&mut self, cache: Option<Arc<NorcMetaCache>>) {
        self.meta_cache = cache;
    }

    /// The attached footer/index cache, if any.
    pub fn meta_cache(&self) -> Option<&Arc<NorcMetaCache>> {
        self.meta_cache.as_ref()
    }

    fn write_meta(&self) -> Result<()> {
        let schema_json = JsonValue::Array(
            self.schema
                .fields()
                .iter()
                .map(|f| {
                    JsonValue::Object(vec![
                        ("name".to_string(), JsonValue::from(f.name.as_str())),
                        ("type".to_string(), JsonValue::from(i64::from(f.ty.tag()))),
                    ])
                })
                .collect(),
        );
        let doc = JsonValue::Object(vec![
            ("schema".to_string(), schema_json),
            (
                "modified_at".to_string(),
                JsonValue::from(self.modified_at as i64),
            ),
            (
                "files".to_string(),
                JsonValue::Array(
                    self.files
                        .iter()
                        .map(|f| JsonValue::from(f.as_str()))
                        .collect(),
                ),
            ),
        ]);
        fs::write(self.dir.join(META_FILE), to_string_pretty(&doc))?;
        Ok(())
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The table's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Logical timestamp of the last modification (append).
    pub fn modified_at(&self) -> u64 {
        self.modified_at
    }

    /// Number of part files (= number of splits).
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Ordered part-file names.
    pub fn files(&self) -> &[String] {
        &self.files
    }

    /// Append `rows` as a new part file and bump the modification time.
    pub fn append_file(
        &mut self,
        rows: &[Vec<Cell>],
        options: WriteOptions,
        now: u64,
    ) -> Result<PathBuf> {
        let name = format!("part-{:05}.norc", self.files.len());
        let path = self.dir.join(&name);
        write_rows(&path, self.schema.clone(), rows, options)?;
        self.files.push(name);
        self.modified_at = self.modified_at.max(now);
        self.write_meta()?;
        Ok(path)
    }

    /// Touch the modification timestamp without changing data — used by
    /// failure-injection tests to invalidate caches.
    pub fn touch(&mut self, now: u64) -> Result<()> {
        self.modified_at = self.modified_at.max(now);
        self.write_meta()
    }

    /// Open split `index` (one file = one split).
    pub fn open_split(&self, index: usize) -> Result<Arc<NorcFile>> {
        self.open_split_cached(index).map(|(file, _)| file)
    }

    /// Open split `index`, reporting whether the decoded footer/index came
    /// from the shared metadata cache (`true`) or a fresh disk read.
    pub fn open_split_cached(&self, index: usize) -> Result<(Arc<NorcFile>, bool)> {
        let name = self
            .files
            .get(index)
            .ok_or_else(|| StorageError::NotFound {
                what: format!("split {index} of table {}", self.dir.display()),
            })?;
        let path = self.dir.join(name);
        match &self.meta_cache {
            Some(cache) => cache.open(&path),
            None => Ok((Arc::new(NorcFile::open(path)?), false)),
        }
    }

    /// A reader positioned over all splits.
    pub fn reader(&self) -> TableReader<'_> {
        TableReader {
            table: self,
            split: 0,
        }
    }

    /// Total rows across all splits (opens every file).
    pub fn num_rows(&self) -> Result<usize> {
        let mut n = 0;
        for i in 0..self.files.len() {
            n += self.open_split(i)?.num_rows();
        }
        Ok(n)
    }

    /// Total bytes on disk across part files.
    pub fn byte_size(&self) -> Result<u64> {
        let mut total = 0;
        for name in &self.files {
            total += fs::metadata(self.dir.join(name))?.len();
        }
        Ok(total)
    }

    /// Delete the table directory entirely.
    pub fn drop_table(self) -> Result<()> {
        fs::remove_dir_all(&self.dir)?;
        Ok(())
    }
}

/// Sequential split-by-split reader over a table.
#[derive(Debug)]
pub struct TableReader<'t> {
    table: &'t Table,
    split: usize,
}

impl Iterator for TableReader<'_> {
    type Item = Result<Arc<NorcFile>>;
    fn next(&mut self) -> Option<Self::Item> {
        if self.split >= self.table.file_count() {
            return None;
        }
        let f = self.table.open_split(self.split);
        self.split += 1;
        Some(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "maxson-table-{}-{}-{name}",
            std::process::id(),
            rand_suffix()
        ));
        dir
    }

    fn rand_suffix() -> u64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .subsec_nanos() as u64
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("payload", ColumnType::Utf8),
        ])
        .unwrap()
    }

    fn rows(from: i64, n: i64) -> Vec<Vec<Cell>> {
        (from..from + n)
            .map(|i| vec![Cell::Int(i), Cell::from(format!("{{\"v\":{i}}}"))])
            .collect()
    }

    #[test]
    fn create_append_reopen() {
        let dir = temp_dir("car");
        let mut t = Table::create(&dir, schema(), 100).unwrap();
        t.append_file(&rows(0, 10), WriteOptions::default(), 101)
            .unwrap();
        t.append_file(&rows(10, 5), WriteOptions::default(), 102)
            .unwrap();
        assert_eq!(t.file_count(), 2);
        assert_eq!(t.modified_at(), 102);
        assert_eq!(t.num_rows().unwrap(), 15);

        let t2 = Table::open(&dir).unwrap();
        assert_eq!(t2.schema(), t.schema());
        assert_eq!(t2.modified_at(), 102);
        assert_eq!(t2.files(), t.files());
        let split = t2.open_split(1).unwrap();
        assert_eq!(split.num_rows(), 5);
        assert_eq!(split.read_all_rows().unwrap()[0][0], Cell::Int(10));
        t.drop_table().unwrap();
    }

    #[test]
    fn create_twice_fails() {
        let dir = temp_dir("dup");
        let t = Table::create(&dir, schema(), 0).unwrap();
        assert!(Table::create(&dir, schema(), 0).is_err());
        t.drop_table().unwrap();
    }

    #[test]
    fn open_missing_fails() {
        assert!(Table::open(temp_dir("missing")).is_err());
    }

    #[test]
    fn reader_iterates_splits_in_order() {
        let dir = temp_dir("iter");
        let mut t = Table::create(&dir, schema(), 0).unwrap();
        for k in 0..3 {
            t.append_file(&rows(k * 10, 10), WriteOptions::default(), k as u64)
                .unwrap();
        }
        let firsts: Vec<Cell> = t
            .reader()
            .map(|f| f.unwrap().read_all_rows().unwrap()[0][0].clone())
            .collect();
        assert_eq!(firsts, vec![Cell::Int(0), Cell::Int(10), Cell::Int(20)]);
        t.drop_table().unwrap();
    }

    #[test]
    fn touch_bumps_mod_time_monotonically() {
        let dir = temp_dir("touch");
        let mut t = Table::create(&dir, schema(), 10).unwrap();
        t.touch(50).unwrap();
        assert_eq!(t.modified_at(), 50);
        t.touch(20).unwrap(); // never goes backwards
        assert_eq!(t.modified_at(), 50);
        t.drop_table().unwrap();
    }

    #[test]
    fn out_of_range_split_errors() {
        let dir = temp_dir("oor");
        let t = Table::create(&dir, schema(), 0).unwrap();
        assert!(t.open_split(0).is_err());
        t.drop_table().unwrap();
    }

    #[test]
    fn byte_size_counts_part_files() {
        let dir = temp_dir("bytes");
        let mut t = Table::create(&dir, schema(), 0).unwrap();
        assert_eq!(t.byte_size().unwrap(), 0);
        t.append_file(&rows(0, 100), WriteOptions::default(), 1)
            .unwrap();
        assert!(t.byte_size().unwrap() > 0);
        t.drop_table().unwrap();
    }
}
