//! The Norc file format: writer, reader, and row-group statistics.
//!
//! Layout of a `.norc` file:
//!
//! ```text
//! +---------+-------------------------------+-----------+----------+-------+
//! | "NORC2" | body: encoded column chunks   | footer    | f.len u64| chksum|
//! +---------+-------------------------------+-----------+----------+-------+
//! ```
//!
//! The body is a concatenation of encoded column chunks, one per
//! (stripe, row group, column). The footer records the schema, the stripe
//! directory, and per-(row group, column) offsets, lengths, and min/max
//! statistics. The trailing FNV-1a checksum covers everything before it, so
//! truncation or bit rot is detected on open.

use std::fs;
use std::path::{Path, PathBuf};

use crate::cell::Cell;
use crate::column::ColumnData;
use crate::encoding::{fnv1a, read_f64, read_str, read_varint, write_f64, write_str, write_varint};
use crate::error::{Result, StorageError};
use crate::schema::{ColumnType, Schema};

/// Magic bytes at the start of every Norc file. The trailing digit is the
/// format version; v2 added dictionary-encoded string streams.
pub const MAGIC: &[u8; 5] = b"NORC2";

/// Rows per row group, matching ORC's default of 10,000 (§IV-F).
pub const DEFAULT_ROW_GROUP_SIZE: usize = 10_000;

/// Tuning knobs for [`NorcWriter`].
#[derive(Debug, Clone, Copy)]
pub struct WriteOptions {
    /// Rows per row group.
    pub row_group_size: usize,
    /// Row groups per stripe. The paper's pushdown-sharing optimization only
    /// applies to single-stripe files; multi-stripe files exist to test that
    /// restriction.
    pub row_groups_per_stripe: usize,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            row_group_size: DEFAULT_ROW_GROUP_SIZE,
            row_groups_per_stripe: usize::MAX,
        }
    }
}

/// Min/max/null statistics for one column within one row group.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnStats {
    /// Integer column stats.
    Int {
        /// Minimum non-null value, if any value is non-null.
        min: Option<i64>,
        /// Maximum non-null value.
        max: Option<i64>,
        /// Number of NULL rows.
        nulls: u64,
    },
    /// Float column stats.
    Float {
        /// Minimum non-null value.
        min: Option<f64>,
        /// Maximum non-null value.
        max: Option<f64>,
        /// Number of NULL rows.
        nulls: u64,
    },
    /// String column stats (lexicographic min/max, plus numeric min/max over
    /// the values that parse as numbers — needed because JSON-extracted
    /// values are stored as strings but filtered numerically).
    Utf8 {
        /// Lexicographic minimum.
        min: Option<String>,
        /// Lexicographic maximum.
        max: Option<String>,
        /// Numeric minimum over values parsing as f64.
        num_min: Option<f64>,
        /// Numeric maximum over values parsing as f64.
        num_max: Option<f64>,
        /// `true` when every non-null value parsed as a number.
        all_numeric: bool,
        /// Number of NULL rows.
        nulls: u64,
    },
    /// Bool column stats.
    Bool {
        /// Count of `true` rows.
        true_count: u64,
        /// Count of `false` rows.
        false_count: u64,
        /// Number of NULL rows.
        nulls: u64,
    },
}

impl ColumnStats {
    fn new(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int64 => ColumnStats::Int {
                min: None,
                max: None,
                nulls: 0,
            },
            ColumnType::Float64 => ColumnStats::Float {
                min: None,
                max: None,
                nulls: 0,
            },
            ColumnType::Utf8 => ColumnStats::Utf8 {
                min: None,
                max: None,
                num_min: None,
                num_max: None,
                all_numeric: true,
                nulls: 0,
            },
            ColumnType::Bool => ColumnStats::Bool {
                true_count: 0,
                false_count: 0,
                nulls: 0,
            },
        }
    }

    fn update(&mut self, cell: &Cell) {
        match (self, cell) {
            (ColumnStats::Int { nulls, .. }, Cell::Null)
            | (ColumnStats::Float { nulls, .. }, Cell::Null)
            | (ColumnStats::Utf8 { nulls, .. }, Cell::Null)
            | (ColumnStats::Bool { nulls, .. }, Cell::Null) => *nulls += 1,
            (ColumnStats::Int { min, max, .. }, Cell::Int(v)) => {
                *min = Some(min.map_or(*v, |m| m.min(*v)));
                *max = Some(max.map_or(*v, |m| m.max(*v)));
            }
            (ColumnStats::Float { min, max, .. }, Cell::Float(v)) => {
                *min = Some(min.map_or(*v, |m| m.min(*v)));
                *max = Some(max.map_or(*v, |m| m.max(*v)));
            }
            (ColumnStats::Float { min, max, .. }, Cell::Int(v)) => {
                let v = *v as f64;
                *min = Some(min.map_or(v, |m| m.min(v)));
                *max = Some(max.map_or(v, |m| m.max(v)));
            }
            (
                ColumnStats::Utf8 {
                    min,
                    max,
                    num_min,
                    num_max,
                    all_numeric,
                    ..
                },
                Cell::Str(s),
            ) => {
                if min.as_deref().is_none_or(|m| s.as_ref() < m) {
                    *min = Some(s.to_string());
                }
                if max.as_deref().is_none_or(|m| s.as_ref() > m) {
                    *max = Some(s.to_string());
                }
                match s.trim().parse::<f64>() {
                    Ok(v) => {
                        *num_min = Some(num_min.map_or(v, |m| m.min(v)));
                        *num_max = Some(num_max.map_or(v, |m| m.max(v)));
                    }
                    Err(_) => *all_numeric = false,
                }
            }
            (
                ColumnStats::Bool {
                    true_count,
                    false_count,
                    ..
                },
                Cell::Bool(b),
            ) => {
                if *b {
                    *true_count += 1;
                } else {
                    *false_count += 1;
                }
            }
            // push() already rejected mismatched cells; nothing to record.
            _ => {}
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        fn write_opt_i64(out: &mut Vec<u8>, v: Option<i64>) {
            match v {
                None => out.push(0),
                Some(v) => {
                    out.push(1);
                    write_varint(out, crate::encoding::zigzag(v));
                }
            }
        }
        fn write_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
            match v {
                None => out.push(0),
                Some(v) => {
                    out.push(1);
                    write_f64(out, v);
                }
            }
        }
        fn write_opt_str(out: &mut Vec<u8>, v: &Option<String>) {
            match v {
                None => out.push(0),
                Some(v) => {
                    out.push(1);
                    write_str(out, v);
                }
            }
        }
        match self {
            ColumnStats::Int { min, max, nulls } => {
                out.push(0);
                write_opt_i64(out, *min);
                write_opt_i64(out, *max);
                write_varint(out, *nulls);
            }
            ColumnStats::Float { min, max, nulls } => {
                out.push(1);
                write_opt_f64(out, *min);
                write_opt_f64(out, *max);
                write_varint(out, *nulls);
            }
            ColumnStats::Utf8 {
                min,
                max,
                num_min,
                num_max,
                all_numeric,
                nulls,
            } => {
                out.push(2);
                write_opt_str(out, min);
                write_opt_str(out, max);
                write_opt_f64(out, *num_min);
                write_opt_f64(out, *num_max);
                out.push(u8::from(*all_numeric));
                write_varint(out, *nulls);
            }
            ColumnStats::Bool {
                true_count,
                false_count,
                nulls,
            } => {
                out.push(3);
                write_varint(out, *true_count);
                write_varint(out, *false_count);
                write_varint(out, *nulls);
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<Self> {
        fn read_u8(buf: &[u8], pos: &mut usize) -> Result<u8> {
            let b = *buf
                .get(*pos)
                .ok_or_else(|| StorageError::corrupt("stats truncated"))?;
            *pos += 1;
            Ok(b)
        }
        fn read_opt_i64(buf: &[u8], pos: &mut usize) -> Result<Option<i64>> {
            Ok(if read_u8(buf, pos)? == 1 {
                Some(crate::encoding::unzigzag(read_varint(buf, pos)?))
            } else {
                None
            })
        }
        fn read_opt_f64(buf: &[u8], pos: &mut usize) -> Result<Option<f64>> {
            Ok(if read_u8(buf, pos)? == 1 {
                Some(read_f64(buf, pos)?)
            } else {
                None
            })
        }
        fn read_opt_str(buf: &[u8], pos: &mut usize) -> Result<Option<String>> {
            Ok(if read_u8(buf, pos)? == 1 {
                Some(read_str(buf, pos)?)
            } else {
                None
            })
        }
        match read_u8(buf, pos)? {
            0 => Ok(ColumnStats::Int {
                min: read_opt_i64(buf, pos)?,
                max: read_opt_i64(buf, pos)?,
                nulls: read_varint(buf, pos)?,
            }),
            1 => Ok(ColumnStats::Float {
                min: read_opt_f64(buf, pos)?,
                max: read_opt_f64(buf, pos)?,
                nulls: read_varint(buf, pos)?,
            }),
            2 => Ok(ColumnStats::Utf8 {
                min: read_opt_str(buf, pos)?,
                max: read_opt_str(buf, pos)?,
                num_min: read_opt_f64(buf, pos)?,
                num_max: read_opt_f64(buf, pos)?,
                all_numeric: read_u8(buf, pos)? == 1,
                nulls: read_varint(buf, pos)?,
            }),
            3 => Ok(ColumnStats::Bool {
                true_count: read_varint(buf, pos)?,
                false_count: read_varint(buf, pos)?,
                nulls: read_varint(buf, pos)?,
            }),
            t => Err(StorageError::corrupt(format!("unknown stats tag {t}"))),
        }
    }
}

/// Statistics and chunk locations for one row group.
#[derive(Debug, Clone)]
pub struct RowGroupStats {
    /// Rows in this group.
    pub row_count: usize,
    /// Per-column (body offset, encoded length).
    pub chunks: Vec<(u64, u64)>,
    /// Per-column min/max statistics.
    pub columns: Vec<ColumnStats>,
}

/// Directory entry for one stripe.
#[derive(Debug, Clone)]
pub struct StripeInfo {
    /// Row groups in this stripe.
    pub row_groups: Vec<RowGroupStats>,
}

impl StripeInfo {
    /// Total rows in the stripe.
    pub fn row_count(&self) -> usize {
        self.row_groups.iter().map(|rg| rg.row_count).sum()
    }
}

/// Streaming writer that buffers a row group at a time and produces a Norc
/// file on [`NorcWriter::finish`].
pub struct NorcWriter {
    path: PathBuf,
    schema: Schema,
    options: WriteOptions,
    body: Vec<u8>,
    stripes: Vec<StripeInfo>,
    current_stripe: Vec<RowGroupStats>,
    pending_cols: Vec<ColumnData>,
    pending_stats: Vec<ColumnStats>,
    pending_rows: usize,
}

impl NorcWriter {
    /// Start writing a new file at `path` (parent directory must exist).
    pub fn create(path: impl Into<PathBuf>, schema: Schema, options: WriteOptions) -> Result<Self> {
        if options.row_group_size == 0 || options.row_groups_per_stripe == 0 {
            return Err(StorageError::InvalidOperation {
                detail: "row_group_size and row_groups_per_stripe must be positive".into(),
            });
        }
        let pending_cols = schema
            .fields()
            .iter()
            .map(|f| ColumnData::empty(f.ty))
            .collect();
        let pending_stats = schema
            .fields()
            .iter()
            .map(|f| ColumnStats::new(f.ty))
            .collect();
        Ok(NorcWriter {
            path: path.into(),
            schema,
            options,
            body: Vec::new(),
            stripes: Vec::new(),
            current_stripe: Vec::new(),
            pending_cols,
            pending_stats,
            pending_rows: 0,
        })
    }

    /// Append one row. Cells must match the schema positionally.
    pub fn append_row(&mut self, row: &[Cell]) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(StorageError::ShapeMismatch {
                detail: format!(
                    "row has {} cells, schema has {} columns",
                    row.len(),
                    self.schema.len()
                ),
            });
        }
        for ((col, stats), (cell, field)) in self
            .pending_cols
            .iter_mut()
            .zip(self.pending_stats.iter_mut())
            .zip(row.iter().zip(self.schema.fields()))
        {
            col.push(cell, &field.name)?;
            stats.update(cell);
        }
        self.pending_rows += 1;
        if self.pending_rows >= self.options.row_group_size {
            self.flush_row_group();
        }
        Ok(())
    }

    fn flush_row_group(&mut self) {
        if self.pending_rows == 0 {
            return;
        }
        let mut chunks = Vec::with_capacity(self.pending_cols.len());
        for col in &self.pending_cols {
            let start = self.body.len() as u64;
            col.encode(&mut self.body);
            chunks.push((start, self.body.len() as u64 - start));
        }
        let stats = std::mem::replace(
            &mut self.pending_stats,
            self.schema
                .fields()
                .iter()
                .map(|f| ColumnStats::new(f.ty))
                .collect(),
        );
        let row_count = self.pending_rows;
        self.pending_cols = self
            .schema
            .fields()
            .iter()
            .map(|f| ColumnData::empty(f.ty))
            .collect();
        self.pending_rows = 0;
        self.current_stripe.push(RowGroupStats {
            row_count,
            chunks,
            columns: stats,
        });
        if self.current_stripe.len() >= self.options.row_groups_per_stripe {
            self.stripes.push(StripeInfo {
                row_groups: std::mem::take(&mut self.current_stripe),
            });
        }
    }

    /// Flush pending data, write the footer and checksum, and close the file.
    pub fn finish(mut self) -> Result<NorcFile> {
        self.flush_row_group();
        if !self.current_stripe.is_empty() {
            self.stripes.push(StripeInfo {
                row_groups: std::mem::take(&mut self.current_stripe),
            });
        }
        let mut out = Vec::with_capacity(self.body.len() + 1024);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.body);

        let mut footer = Vec::new();
        // Schema.
        write_varint(&mut footer, self.schema.len() as u64);
        for f in self.schema.fields() {
            write_str(&mut footer, &f.name);
            footer.push(f.ty.tag());
        }
        // Stripes.
        write_varint(&mut footer, self.stripes.len() as u64);
        for stripe in &self.stripes {
            write_varint(&mut footer, stripe.row_groups.len() as u64);
            for rg in &stripe.row_groups {
                write_varint(&mut footer, rg.row_count as u64);
                for &(off, len) in &rg.chunks {
                    write_varint(&mut footer, off);
                    write_varint(&mut footer, len);
                }
                for cs in &rg.columns {
                    cs.encode(&mut footer);
                }
            }
        }
        let footer_len = footer.len() as u64;
        out.extend_from_slice(&footer);
        out.extend_from_slice(&footer_len.to_le_bytes());
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        fs::write(&self.path, &out)?;
        Ok(NorcFile {
            path: self.path,
            schema: self.schema,
            stripes: self.stripes,
            data: FileBytes::Owned(out),
        })
    }
}

/// How [`NorcFile::open`] acquires the file body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmapMode {
    /// Memory-map the file (`PROT_READ`/`MAP_PRIVATE`), so chunk decodes
    /// borrow page-cache bytes instead of copying the whole file through
    /// `fs::read`. Falls back to [`MmapMode::Disabled`] when the kernel
    /// refuses the mapping, and on non-unix targets.
    Enabled,
    /// Copy the file into an owned buffer via `fs::read`.
    Disabled,
}

impl MmapMode {
    /// Resolve `MAXSON_MMAP`: `0`/`false`/`off` disable mapping; anything
    /// else (including unset) enables it where the platform supports it.
    pub fn from_env() -> MmapMode {
        match std::env::var("MAXSON_MMAP") {
            Ok(v) if matches!(v.trim(), "0" | "false" | "off") => MmapMode::Disabled,
            _ => MmapMode::Enabled,
        }
    }
}

/// The file body: owned bytes or a shared read-only mapping. Cloning a
/// mapped body bumps the `Arc` instead of copying the file.
#[derive(Debug, Clone)]
enum FileBytes {
    Owned(Vec<u8>),
    #[cfg(unix)]
    Mapped(std::sync::Arc<crate::mmap::Mmap>),
}

impl FileBytes {
    fn as_slice(&self) -> &[u8] {
        match self {
            FileBytes::Owned(v) => v,
            #[cfg(unix)]
            FileBytes::Mapped(m) => m,
        }
    }
}

/// An opened Norc file: parsed footer plus the raw bytes for chunk decoding.
#[derive(Debug, Clone)]
pub struct NorcFile {
    path: PathBuf,
    schema: Schema,
    stripes: Vec<StripeInfo>,
    data: FileBytes,
}

impl NorcFile {
    /// Open and validate a Norc file (magic, checksum, footer), honoring
    /// the `MAXSON_MMAP` knob for how the body is acquired.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(path, MmapMode::from_env())
    }

    /// [`Self::open`] with an explicit body-acquisition mode (differential
    /// tests pin both modes). Validation is identical in either mode: the
    /// checksum is verified over the mapped or copied bytes before any
    /// footer field is trusted.
    pub fn open_with(path: impl AsRef<Path>, mode: MmapMode) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let data = match mode {
            #[cfg(unix)]
            MmapMode::Enabled => match crate::mmap::Mmap::map(&fs::File::open(&path)?) {
                Ok(map) => FileBytes::Mapped(std::sync::Arc::new(map)),
                Err(_) => FileBytes::Owned(fs::read(&path)?),
            },
            _ => FileBytes::Owned(fs::read(&path)?),
        };
        Self::parse(path, data)
    }

    fn parse(path: PathBuf, bytes: FileBytes) -> Result<Self> {
        let data = bytes.as_slice();
        if data.len() < MAGIC.len() + 16 {
            return Err(StorageError::corrupt("file too short"));
        }
        if &data[..MAGIC.len()] != MAGIC {
            return Err(StorageError::corrupt("bad magic"));
        }
        let cksum_start = data.len() - 8;
        let mut b = [0u8; 8];
        b.copy_from_slice(&data[cksum_start..]);
        let stored = u64::from_le_bytes(b);
        if fnv1a(&data[..cksum_start]) != stored {
            return Err(StorageError::corrupt("checksum mismatch"));
        }
        b.copy_from_slice(&data[cksum_start - 8..cksum_start]);
        let footer_len = u64::from_le_bytes(b) as usize;
        if footer_len + 8 + 8 + MAGIC.len() > data.len() {
            return Err(StorageError::corrupt("footer length out of range"));
        }
        let footer_start = cksum_start - 8 - footer_len;
        let footer = &data[footer_start..cksum_start - 8];
        let mut pos = 0usize;
        // Schema.
        let ncols = read_varint(footer, &mut pos)? as usize;
        let mut fields = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let name = read_str(footer, &mut pos)?;
            let tag = *footer
                .get(pos)
                .ok_or_else(|| StorageError::corrupt("schema truncated"))?;
            pos += 1;
            fields.push(crate::schema::Field::new(name, ColumnType::from_tag(tag)?));
        }
        let schema = Schema::new(fields).map_err(|e| StorageError::corrupt(e.to_string()))?;
        // Stripes.
        let nstripes = read_varint(footer, &mut pos)? as usize;
        let mut stripes = Vec::with_capacity(nstripes);
        for _ in 0..nstripes {
            let nrg = read_varint(footer, &mut pos)? as usize;
            let mut row_groups = Vec::with_capacity(nrg);
            for _ in 0..nrg {
                let row_count = read_varint(footer, &mut pos)? as usize;
                let mut chunks = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    let off = read_varint(footer, &mut pos)?;
                    let len = read_varint(footer, &mut pos)?;
                    chunks.push((off, len));
                }
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    columns.push(ColumnStats::decode(footer, &mut pos)?);
                }
                row_groups.push(RowGroupStats {
                    row_count,
                    chunks,
                    columns,
                });
            }
            stripes.push(StripeInfo { row_groups });
        }
        Ok(NorcFile {
            path,
            schema,
            stripes,
            data: bytes,
        })
    }

    /// The file's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Path this file was opened from / written to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stripe directory.
    pub fn stripes(&self) -> &[StripeInfo] {
        &self.stripes
    }

    /// Number of stripes (the pushdown-sharing restriction checks `== 1`).
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Total rows.
    pub fn num_rows(&self) -> usize {
        self.stripes.iter().map(StripeInfo::row_count).sum()
    }

    /// All row groups across stripes, in row order.
    pub fn row_groups(&self) -> impl Iterator<Item = &RowGroupStats> {
        self.stripes.iter().flat_map(|s| s.row_groups.iter())
    }

    /// Total number of row groups.
    pub fn row_group_count(&self) -> usize {
        self.stripes.iter().map(|s| s.row_groups.len()).sum()
    }

    /// Size on disk in bytes.
    pub fn byte_size(&self) -> usize {
        self.data.as_slice().len()
    }

    /// `true` when the body is a shared memory mapping rather than an
    /// owned copy (observability for tests and benches).
    pub fn is_mapped(&self) -> bool {
        match self.data {
            FileBytes::Owned(_) => false,
            #[cfg(unix)]
            FileBytes::Mapped(_) => true,
        }
    }

    /// Decode one column chunk of one row group (global row-group index).
    pub fn read_chunk(&self, row_group: usize, column: usize) -> Result<ColumnData> {
        let rg = self
            .row_groups()
            .nth(row_group)
            .ok_or_else(|| StorageError::NotFound {
                what: format!("row group {row_group}"),
            })?;
        let (off, len) = *rg
            .chunks
            .get(column)
            .ok_or_else(|| StorageError::NotFound {
                what: format!("column {column}"),
            })?;
        let start = MAGIC.len() + off as usize;
        let end = start + len as usize;
        let data = self.data.as_slice();
        if end > data.len() {
            return Err(StorageError::corrupt("chunk out of range"));
        }
        let ty = self.schema.fields()[column].ty;
        let mut pos = 0usize;
        let col = ColumnData::decode(ty, &data[start..end], &mut pos)?;
        if col.len() != rg.row_count {
            return Err(StorageError::corrupt("chunk row count mismatch"));
        }
        Ok(col)
    }

    /// Read the requested columns for the row groups where `keep` is true
    /// (or all row groups when `keep` is `None`). Returns one concatenated
    /// [`ColumnData`] per requested column, in request order.
    pub fn read_columns(
        &self,
        columns: &[usize],
        keep: Option<&[bool]>,
    ) -> Result<Vec<ColumnData>> {
        if let Some(keep) = keep {
            if keep.len() != self.row_group_count() {
                return Err(StorageError::ShapeMismatch {
                    detail: format!(
                        "keep array has {} entries, file has {} row groups",
                        keep.len(),
                        self.row_group_count()
                    ),
                });
            }
        }
        let mut out: Vec<ColumnData> = columns
            .iter()
            .map(|&c| ColumnData::empty(self.schema.fields()[c].ty))
            .collect();
        for (rgi, rg) in self.row_groups().enumerate() {
            if let Some(keep) = keep {
                if !keep[rgi] {
                    continue;
                }
            }
            for (outi, &c) in columns.iter().enumerate() {
                let chunk = self.read_chunk(rgi, c)?;
                // Concatenate chunk into out[outi].
                for i in 0..rg.row_count {
                    out[outi]
                        .push(&chunk.get(i), &self.schema.fields()[c].name)
                        .expect("chunk cell matches its own column type");
                }
            }
        }
        Ok(out)
    }

    /// Materialize full rows (all columns), mostly for tests and examples.
    pub fn read_all_rows(&self) -> Result<Vec<Vec<Cell>>> {
        let cols: Vec<usize> = (0..self.schema.len()).collect();
        let data = self.read_columns(&cols, None)?;
        let n = data.first().map_or(0, ColumnData::len);
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            rows.push(data.iter().map(|c| c.get(i)).collect());
        }
        Ok(rows)
    }
}

/// Convenience: write `rows` to `path` in one call.
pub fn write_rows(
    path: impl Into<PathBuf>,
    schema: Schema,
    rows: &[Vec<Cell>],
    options: WriteOptions,
) -> Result<NorcFile> {
    let mut w = NorcWriter::create(path, schema, options)?;
    for row in rows {
        w.append_row(row)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("maxson-storage-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.norc", std::process::id()))
    }

    fn sample_schema() -> Schema {
        Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("name", ColumnType::Utf8),
            Field::new("score", ColumnType::Float64),
        ])
        .unwrap()
    }

    fn sample_rows(n: usize) -> Vec<Vec<Cell>> {
        (0..n)
            .map(|i| {
                vec![
                    Cell::Int(i as i64),
                    if i % 7 == 0 {
                        Cell::Null
                    } else {
                        Cell::from(format!("name-{i}"))
                    },
                    Cell::Float(i as f64 / 2.0),
                ]
            })
            .collect()
    }

    #[test]
    fn write_read_round_trip() {
        let path = temp_path("round-trip");
        let rows = sample_rows(25);
        let opts = WriteOptions {
            row_group_size: 10,
            ..Default::default()
        };
        write_rows(&path, sample_schema(), &rows, opts).unwrap();
        let f = NorcFile::open(&path).unwrap();
        assert_eq!(f.num_rows(), 25);
        assert_eq!(f.row_group_count(), 3);
        assert_eq!(f.stripe_count(), 1);
        assert_eq!(f.read_all_rows().unwrap(), rows);
    }

    #[test]
    fn stripe_splitting() {
        let path = temp_path("stripes");
        let opts = WriteOptions {
            row_group_size: 5,
            row_groups_per_stripe: 2,
        };
        write_rows(&path, sample_schema(), &sample_rows(23), opts).unwrap();
        let f = NorcFile::open(&path).unwrap();
        // 5 row groups of (5,5,5,5,3) -> stripes of 2,2,1 row groups.
        assert_eq!(f.row_group_count(), 5);
        assert_eq!(f.stripe_count(), 3);
        assert_eq!(f.num_rows(), 23);
    }

    #[test]
    fn row_group_stats_are_correct() {
        let path = temp_path("stats");
        let opts = WriteOptions {
            row_group_size: 10,
            ..Default::default()
        };
        write_rows(&path, sample_schema(), &sample_rows(20), opts).unwrap();
        let f = NorcFile::open(&path).unwrap();
        let rgs: Vec<_> = f.row_groups().collect();
        match &rgs[1].columns[0] {
            ColumnStats::Int { min, max, nulls } => {
                assert_eq!(*min, Some(10));
                assert_eq!(*max, Some(19));
                assert_eq!(*nulls, 0);
            }
            other => panic!("unexpected stats {other:?}"),
        }
        match &rgs[0].columns[1] {
            ColumnStats::Utf8 {
                nulls, all_numeric, ..
            } => {
                assert_eq!(*nulls, 2); // rows 0 and 7
                assert!(!all_numeric);
            }
            other => panic!("unexpected stats {other:?}"),
        }
    }

    #[test]
    fn numeric_string_stats_tracked() {
        let path = temp_path("numstats");
        let schema = Schema::new(vec![Field::new("v", ColumnType::Utf8)]).unwrap();
        let rows: Vec<Vec<Cell>> = [("5"), ("40"), ("12")]
            .iter()
            .map(|s| vec![Cell::from(*s)])
            .collect();
        write_rows(&path, schema, &rows, WriteOptions::default()).unwrap();
        let f = NorcFile::open(&path).unwrap();
        let rg = f.row_groups().next().unwrap();
        match &rg.columns[0] {
            ColumnStats::Utf8 {
                num_min,
                num_max,
                all_numeric,
                ..
            } => {
                assert_eq!(*num_min, Some(5.0));
                assert_eq!(*num_max, Some(40.0));
                assert!(all_numeric);
            }
            other => panic!("unexpected stats {other:?}"),
        }
    }

    #[test]
    fn selective_column_and_row_group_reads() {
        let path = temp_path("selective");
        let opts = WriteOptions {
            row_group_size: 10,
            ..Default::default()
        };
        write_rows(&path, sample_schema(), &sample_rows(30), opts).unwrap();
        let f = NorcFile::open(&path).unwrap();
        let keep = vec![false, true, false];
        let cols = f.read_columns(&[0], Some(&keep)).unwrap();
        assert_eq!(cols[0].len(), 10);
        assert_eq!(cols[0].get(0), Cell::Int(10));
        assert_eq!(cols[0].get(9), Cell::Int(19));
    }

    #[test]
    fn keep_array_shape_checked() {
        let path = temp_path("keepshape");
        write_rows(
            &path,
            sample_schema(),
            &sample_rows(5),
            WriteOptions::default(),
        )
        .unwrap();
        let f = NorcFile::open(&path).unwrap();
        assert!(f.read_columns(&[0], Some(&[true, false])).is_err());
    }

    #[test]
    fn corruption_is_detected() {
        let path = temp_path("corrupt");
        write_rows(
            &path,
            sample_schema(),
            &sample_rows(10),
            WriteOptions::default(),
        )
        .unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            NorcFile::open(&path),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let path = temp_path("truncated");
        write_rows(
            &path,
            sample_schema(),
            &sample_rows(10),
            WriteOptions::default(),
        )
        .unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(NorcFile::open(&path).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let path = temp_path("badmagic");
        fs::write(&path, b"NOTNORC-file-content-that-is-long-enough").unwrap();
        assert!(NorcFile::open(&path).is_err());
    }

    #[test]
    fn empty_file_round_trips() {
        let path = temp_path("empty");
        write_rows(&path, sample_schema(), &[], WriteOptions::default()).unwrap();
        let f = NorcFile::open(&path).unwrap();
        assert_eq!(f.num_rows(), 0);
        assert_eq!(f.row_group_count(), 0);
        assert!(f.read_all_rows().unwrap().is_empty());
    }

    #[test]
    fn wrong_arity_row_rejected() {
        let path = temp_path("arity");
        let mut w = NorcWriter::create(&path, sample_schema(), WriteOptions::default()).unwrap();
        assert!(w.append_row(&[Cell::Int(1)]).is_err());
    }
}
