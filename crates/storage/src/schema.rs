//! Table schemas.

use crate::cell::Cell;
use crate::error::{Result, StorageError};
use std::fmt;

/// Physical column types supported by Norc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit float.
    Float64,
    /// UTF-8 string. JSON payload columns are stored as strings, exactly as
    /// in the paper's warehouse (§II-A: "JSON data is often stored as
    /// String Types").
    Utf8,
    /// Boolean.
    Bool,
}

impl ColumnType {
    /// Short type tag used in serialized footers.
    pub fn tag(self) -> u8 {
        match self {
            ColumnType::Int64 => 0,
            ColumnType::Float64 => 1,
            ColumnType::Utf8 => 2,
            ColumnType::Bool => 3,
        }
    }

    /// Inverse of [`ColumnType::tag`].
    pub fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => ColumnType::Int64,
            1 => ColumnType::Float64,
            2 => ColumnType::Utf8,
            3 => ColumnType::Bool,
            t => {
                return Err(StorageError::corrupt(format!(
                    "unknown column type tag {t}"
                )))
            }
        })
    }

    /// Human-readable name (also used in SQL error messages).
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Int64 => "BIGINT",
            ColumnType::Float64 => "DOUBLE",
            ColumnType::Utf8 => "STRING",
            ColumnType::Bool => "BOOLEAN",
        }
    }

    /// Whether `cell` is storable in a column of this type (NULL always is).
    pub fn accepts(self, cell: &Cell) -> bool {
        matches!(
            (self, cell),
            (_, Cell::Null)
                | (ColumnType::Int64, Cell::Int(_))
                | (ColumnType::Float64, Cell::Float(_))
                | (ColumnType::Float64, Cell::Int(_))
                | (ColumnType::Utf8, Cell::Str(_))
                | (ColumnType::Bool, Cell::Bool(_))
        )
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (case-sensitive; the SQL layer lowercases identifiers).
    pub name: String,
    /// Physical type.
    pub ty: ColumnType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields. Duplicate names are rejected.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(StorageError::InvalidOperation {
                    detail: format!("duplicate column name '{}'", f.name),
                });
            }
        }
        Ok(Schema { fields })
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field of the column named `name`.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Append a field, returning a new schema (used when deriving cache
    /// table schemas from raw table schemas).
    pub fn with_field(&self, field: Field) -> Result<Schema> {
        let mut fields = self.fields.clone();
        fields.push(field);
        Schema::new(fields)
    }

    /// Project a subset of columns by name, preserving the requested order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for n in names {
            let f = self.field(n).ok_or_else(|| StorageError::NotFound {
                what: format!("column '{n}'"),
            })?;
            fields.push(f.clone());
        }
        Schema::new(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("mall_id", ColumnType::Utf8),
            Field::new("date", ColumnType::Int64),
            Field::new("sale_logs", ColumnType::Utf8),
        ])
        .unwrap()
    }

    #[test]
    fn index_and_field_lookup() {
        let s = sample();
        assert_eq!(s.index_of("date"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.field("mall_id").unwrap().ty, ColumnType::Utf8);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(Schema::new(vec![
            Field::new("a", ColumnType::Int64),
            Field::new("a", ColumnType::Utf8),
        ])
        .is_err());
    }

    #[test]
    fn projection_preserves_order() {
        let s = sample();
        let p = s.project(&["sale_logs", "mall_id"]).unwrap();
        assert_eq!(p.fields()[0].name, "sale_logs");
        assert_eq!(p.fields()[1].name, "mall_id");
        assert!(s.project(&["missing"]).is_err());
    }

    #[test]
    fn type_tags_round_trip() {
        for ty in [
            ColumnType::Int64,
            ColumnType::Float64,
            ColumnType::Utf8,
            ColumnType::Bool,
        ] {
            assert_eq!(ColumnType::from_tag(ty.tag()).unwrap(), ty);
        }
        assert!(ColumnType::from_tag(99).is_err());
    }

    #[test]
    fn accepts_rules() {
        use crate::cell::Cell;
        assert!(ColumnType::Int64.accepts(&Cell::Int(1)));
        assert!(ColumnType::Int64.accepts(&Cell::Null));
        assert!(!ColumnType::Int64.accepts(&Cell::Str("x".into())));
        assert!(ColumnType::Float64.accepts(&Cell::Int(1)));
        assert!(ColumnType::Utf8.accepts(&Cell::Str("x".into())));
    }
}
