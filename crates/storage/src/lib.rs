//! Norc — an ORC-like columnar storage substrate.
//!
//! The paper stores both raw tables and Maxson cache tables in ORC on HDFS.
//! Norc reproduces the structural properties Maxson depends on:
//!
//! * A **table** is a directory of immutable files plus a metadata document
//!   (schema, modification time). Appends add whole files, mirroring the
//!   append-only distributed file system of the paper (§II-B).
//! * A **file** holds one or more **stripes**; a stripe holds column streams
//!   split into **row groups** (10,000 rows each, like ORC). Each row group
//!   records per-column min/max statistics and null counts.
//! * **SARGs** (Search ARGuments, [`sarg::SearchArgument`]) are simplified
//!   predicates evaluated against row-group statistics to produce a
//!   keep/skip array — the array Maxson *shares* between the cache-table
//!   reader and the raw-table reader (Algorithm 3).
//! * Readers expose split-level access: one file = one split, which is what
//!   guarantees positional alignment between a raw file and the cache file
//!   with the same index (§IV-C).
//!
//! Encodings are real (varint + zigzag + RLE for integers, length-prefixed
//! UTF-8 for strings, raw little-endian for doubles, bitmap nulls) and every
//! file carries a checksum, so corruption is detected rather than silently
//! mis-read.

pub mod catalog;
pub mod cell;
pub mod column;
pub mod encoding;
pub mod error;
pub mod file;
pub mod metacache;
pub mod mmap;
pub mod sarg;
pub mod schema;
pub mod table;

pub use catalog::{Catalog, TableMeta};
pub use cell::{Cell, CellKey, RowKey, RowKeySlice};
pub use column::ColumnData;
pub use error::{Result, StorageError};
pub use file::{MmapMode, NorcFile, RowGroupStats, DEFAULT_ROW_GROUP_SIZE};
pub use metacache::{MetaCacheStats, NorcMetaCache};
pub use sarg::{CmpOp, SearchArgument};
pub use schema::{ColumnType, Field, Schema};
pub use table::{Table, TableReader};
