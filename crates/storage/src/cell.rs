//! The scalar cell type shared by storage and the query engine.

use std::cmp::Ordering;
use std::fmt;

/// One scalar value in a row. `Null` is a first-class member so that missing
/// JSONPath evaluations and SQL NULL semantics compose naturally.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// SQL NULL / missing JSON field.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Cell {
    /// `true` iff this is [`Cell::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Cell::Null)
    }

    /// The integer content, with Float/Str coercion attempted (Hive-style
    /// lax typing used when comparing JSON-extracted strings to numbers).
    pub fn coerce_i64(&self) -> Option<i64> {
        match self {
            Cell::Int(i) => Some(*i),
            Cell::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            Cell::Str(s) => s.trim().parse().ok(),
            Cell::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// The float content, with Int/Str coercion attempted.
    pub fn coerce_f64(&self) -> Option<f64> {
        match self {
            Cell::Int(i) => Some(*i as f64),
            Cell::Float(f) => Some(*f),
            Cell::Str(s) => s.trim().parse().ok(),
            Cell::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Cell::Null => None,
        }
    }

    /// Borrow the string content if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Cell::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render for display / CSV-ish output. NULL renders as the empty
    /// string, matching Hive CLI output.
    pub fn render(&self) -> String {
        match self {
            Cell::Null => String::new(),
            Cell::Bool(b) => b.to_string(),
            Cell::Int(i) => i.to_string(),
            Cell::Float(f) => format!("{f}"),
            Cell::Str(s) => s.clone(),
        }
    }

    /// Approximate in-memory/serialized size in bytes; used by the scoring
    /// function's `B_j` (average size of a cached value).
    pub fn byte_size(&self) -> usize {
        match self {
            Cell::Null => 1,
            Cell::Bool(_) => 1,
            Cell::Int(_) => 8,
            Cell::Float(_) => 8,
            Cell::Str(s) => s.len(),
        }
    }

    /// Three-valued SQL comparison. Returns `None` when either side is NULL
    /// or the types cannot be compared.
    pub fn sql_cmp(&self, other: &Cell) -> Option<Ordering> {
        match (self, other) {
            (Cell::Null, _) | (_, Cell::Null) => None,
            (Cell::Bool(a), Cell::Bool(b)) => Some(a.cmp(b)),
            (Cell::Str(a), Cell::Str(b)) => {
                // Prefer numeric comparison when both sides parse as numbers
                // (JSON-extracted values are strings).
                match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
                    (Ok(x), Ok(y)) => x.partial_cmp(&y),
                    _ => Some(a.cmp(b)),
                }
            }
            (a, b) => {
                let (x, y) = (a.coerce_f64()?, b.coerce_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// A total ordering for sorting: NULLs first, then by value. Used by
    /// ORDER BY and group-key normalization.
    pub fn total_cmp(&self, other: &Cell) -> Ordering {
        fn rank(c: &Cell) -> u8 {
            match c {
                Cell::Null => 0,
                Cell::Bool(_) => 1,
                Cell::Int(_) | Cell::Float(_) => 2,
                Cell::Str(_) => 3,
            }
        }
        match (self, other) {
            (Cell::Null, Cell::Null) => Ordering::Equal,
            (Cell::Bool(a), Cell::Bool(b)) => a.cmp(b),
            (Cell::Int(a), Cell::Int(b)) => a.cmp(b),
            // Numeric strings (the output of get_json_object) sort
            // numerically; numeric strings sort before non-numeric ones so
            // the ordering stays total.
            (Cell::Str(a), Cell::Str(b)) => {
                match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
                    (Ok(x), Ok(y)) => x.total_cmp(&y),
                    (Ok(_), Err(_)) => Ordering::Less,
                    (Err(_), Ok(_)) => Ordering::Greater,
                    (Err(_), Err(_)) => a.cmp(b),
                }
            }
            (Cell::Int(a), Cell::Float(b)) => (*a as f64).total_cmp(b),
            (Cell::Float(a), Cell::Int(b)) => a.total_cmp(&(*b as f64)),
            (Cell::Float(a), Cell::Float(b)) => a.total_cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Equality for group-by keys: NULL groups with NULL, numbers compare
    /// numerically across Int/Float.
    pub fn group_eq(&self, other: &Cell) -> bool {
        match (self, other) {
            (Cell::Null, Cell::Null) => true,
            (Cell::Int(a), Cell::Float(b)) | (Cell::Float(b), Cell::Int(a)) => *a as f64 == *b,
            (a, b) => a == b,
        }
    }

    /// A hashable normalized key string for group-by / join hash maps.
    pub fn key_string(&self) -> String {
        match self {
            Cell::Null => "\u{0}N".to_string(),
            Cell::Bool(b) => format!("b{b}"),
            Cell::Int(i) => format!("n{}", *i as f64),
            Cell::Float(f) => format!("n{f}"),
            Cell::Str(s) => format!("s{s}"),
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Null => f.write_str("NULL"),
            other => f.write_str(&other.render()),
        }
    }
}

impl From<i64> for Cell {
    fn from(i: i64) -> Self {
        Cell::Int(i)
    }
}
impl From<f64> for Cell {
    fn from(f: f64) -> Self {
        Cell::Float(f)
    }
}
impl From<bool> for Cell {
    fn from(b: bool) -> Self {
        Cell::Bool(b)
    }
}
impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Str(s.to_string())
    }
}
impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Str(s)
    }
}
impl<T: Into<Cell>> From<Option<T>> for Cell {
    fn from(o: Option<T>) -> Self {
        o.map_or(Cell::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(Cell::Str(" 42 ".into()).coerce_i64(), Some(42));
        assert_eq!(Cell::Float(3.0).coerce_i64(), Some(3));
        assert_eq!(Cell::Float(3.5).coerce_i64(), None);
        assert_eq!(Cell::Str("2.5".into()).coerce_f64(), Some(2.5));
        assert_eq!(Cell::Null.coerce_f64(), None);
        assert_eq!(Cell::Bool(true).coerce_i64(), Some(1));
    }

    #[test]
    fn sql_cmp_null_propagates() {
        assert_eq!(Cell::Null.sql_cmp(&Cell::Int(1)), None);
        assert_eq!(Cell::Int(1).sql_cmp(&Cell::Null), None);
    }

    #[test]
    fn sql_cmp_numeric_strings_compare_numerically() {
        // "9" > "10" lexicographically but 9 < 10 numerically; JSON-extracted
        // values must compare numerically for Q2/Q9-style predicates.
        assert_eq!(
            Cell::Str("9".into()).sql_cmp(&Cell::Str("10".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            Cell::Str("abc".into()).sql_cmp(&Cell::Str("abd".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            Cell::Str("15".into()).sql_cmp(&Cell::Int(10)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn total_cmp_orders_nulls_first() {
        let mut cells = vec![Cell::Int(2), Cell::Null, Cell::Int(1)];
        cells.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(cells, vec![Cell::Null, Cell::Int(1), Cell::Int(2)]);
    }

    #[test]
    fn group_keys_normalize_numeric_types() {
        assert_eq!(Cell::Int(2).key_string(), Cell::Float(2.0).key_string());
        assert!(Cell::Int(2).group_eq(&Cell::Float(2.0)));
        assert!(!Cell::Int(2).group_eq(&Cell::Str("2".into())));
        assert!(Cell::Null.group_eq(&Cell::Null));
    }

    #[test]
    fn render_and_display() {
        assert_eq!(Cell::Null.render(), "");
        assert_eq!(Cell::Null.to_string(), "NULL");
        assert_eq!(Cell::Int(-3).render(), "-3");
        assert_eq!(Cell::from("x").render(), "x");
        assert_eq!(Cell::from(Some(1i64)).render(), "1");
        assert_eq!(Cell::from(None::<i64>), Cell::Null);
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Cell::Int(1).byte_size(), 8);
        assert_eq!(Cell::Str("abcd".into()).byte_size(), 4);
        assert_eq!(Cell::Null.byte_size(), 1);
    }
}
