//! The scalar cell type shared by storage and the query engine.

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// One scalar value in a row. `Null` is a first-class member so that missing
/// JSONPath evaluations and SQL NULL semantics compose naturally.
///
/// Strings are `Arc<str>`: cloning a cell never copies the text, so one
/// decoded column buffer is shared by every downstream consumer (scan
/// provider, shared-parse slots, the Maxson combiner's paired readers, the
/// online LRU) instead of being re-allocated per row.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// SQL NULL / missing JSON field.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string, shared (clone = refcount bump, not a copy).
    Str(Arc<str>),
}

impl Cell {
    /// `true` iff this is [`Cell::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Cell::Null)
    }

    /// The integer content, with Float/Str coercion attempted (Hive-style
    /// lax typing used when comparing JSON-extracted strings to numbers).
    pub fn coerce_i64(&self) -> Option<i64> {
        match self {
            Cell::Int(i) => Some(*i),
            Cell::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            Cell::Str(s) => s.trim().parse().ok(),
            Cell::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// The float content, with Int/Str coercion attempted.
    pub fn coerce_f64(&self) -> Option<f64> {
        match self {
            Cell::Int(i) => Some(*i as f64),
            Cell::Float(f) => Some(*f),
            Cell::Str(s) => s.trim().parse().ok(),
            Cell::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Cell::Null => None,
        }
    }

    /// Borrow the string content if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Cell::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render for display / CSV-ish output. NULL renders as the empty
    /// string, matching Hive CLI output.
    pub fn render(&self) -> String {
        match self {
            Cell::Null => String::new(),
            Cell::Bool(b) => b.to_string(),
            Cell::Int(i) => i.to_string(),
            Cell::Float(f) => format!("{f}"),
            Cell::Str(s) => s.to_string(),
        }
    }

    /// Approximate in-memory/serialized size in bytes; used by the scoring
    /// function's `B_j` (average size of a cached value).
    pub fn byte_size(&self) -> usize {
        match self {
            Cell::Null => 1,
            Cell::Bool(_) => 1,
            Cell::Int(_) => 8,
            Cell::Float(_) => 8,
            Cell::Str(s) => s.len(),
        }
    }

    /// Three-valued SQL comparison. Returns `None` when either side is NULL
    /// or the types cannot be compared.
    pub fn sql_cmp(&self, other: &Cell) -> Option<Ordering> {
        match (self, other) {
            (Cell::Null, _) | (_, Cell::Null) => None,
            (Cell::Bool(a), Cell::Bool(b)) => Some(a.cmp(b)),
            (Cell::Str(a), Cell::Str(b)) => {
                // Prefer numeric comparison when both sides parse as numbers
                // (JSON-extracted values are strings).
                match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
                    (Ok(x), Ok(y)) => x.partial_cmp(&y),
                    _ => Some(a.as_ref().cmp(b.as_ref())),
                }
            }
            (a, b) => {
                let (x, y) = (a.coerce_f64()?, b.coerce_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// A total ordering for sorting: NULLs first, then by value. Used by
    /// ORDER BY and group-key normalization.
    pub fn total_cmp(&self, other: &Cell) -> Ordering {
        fn rank(c: &Cell) -> u8 {
            match c {
                Cell::Null => 0,
                Cell::Bool(_) => 1,
                Cell::Int(_) | Cell::Float(_) => 2,
                Cell::Str(_) => 3,
            }
        }
        match (self, other) {
            (Cell::Null, Cell::Null) => Ordering::Equal,
            (Cell::Bool(a), Cell::Bool(b)) => a.cmp(b),
            (Cell::Int(a), Cell::Int(b)) => a.cmp(b),
            // Numeric strings (the output of get_json_object) sort
            // numerically; numeric strings sort before non-numeric ones so
            // the ordering stays total.
            (Cell::Str(a), Cell::Str(b)) => {
                match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
                    (Ok(x), Ok(y)) => x.total_cmp(&y),
                    (Ok(_), Err(_)) => Ordering::Less,
                    (Err(_), Ok(_)) => Ordering::Greater,
                    (Err(_), Err(_)) => a.as_ref().cmp(b.as_ref()),
                }
            }
            (Cell::Int(a), Cell::Float(b)) => (*a as f64).total_cmp(b),
            (Cell::Float(a), Cell::Int(b)) => a.total_cmp(&(*b as f64)),
            (Cell::Float(a), Cell::Float(b)) => a.total_cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Equality for group-by keys: NULL groups with NULL, numbers compare
    /// numerically across Int/Float.
    pub fn group_eq(&self, other: &Cell) -> bool {
        match (self, other) {
            (Cell::Null, Cell::Null) => true,
            (Cell::Int(a), Cell::Float(b)) | (Cell::Float(b), Cell::Int(a)) => *a as f64 == *b,
            (a, b) => a == b,
        }
    }

    /// A hashable normalized key string for group-by / join hash maps.
    ///
    /// Retained as the reference semantics for [`CellKey`]/[`RowKey`] (and
    /// for offline consumers that want a printable key); the execution hot
    /// paths hash cells directly instead of building this string.
    pub fn key_string(&self) -> String {
        match self {
            Cell::Null => "\u{0}N".to_string(),
            Cell::Bool(b) => format!("b{b}"),
            Cell::Int(i) => format!("n{}", *i as f64),
            Cell::Float(f) => format!("n{f}"),
            Cell::Str(s) => format!("s{s}"),
        }
    }
}

/// `f64` bits with NaN canonicalized, so the bit pattern is an equality
/// class identifier exactly matching `key_string`'s number formatting:
/// shortest-roundtrip formatting is injective on non-NaN values (`-0` and
/// `0` render differently and keep distinct bits), and every NaN renders
/// as `NaN` (so every NaN must collapse to one bit pattern here).
fn key_f64_bits(f: f64) -> u64 {
    if f.is_nan() {
        f64::NAN.to_bits()
    } else {
        f.to_bits()
    }
}

/// Hash one cell with the same equality classes as [`Cell::key_string`],
/// without allocating: a type tag byte, then the normalized content.
/// Int/Float share a tag and hash as normalized `f64` bits, mirroring
/// `key_string`'s `n{value as f64}` formatting.
fn key_hash_cell<H: Hasher>(cell: &Cell, state: &mut H) {
    match cell {
        Cell::Null => state.write_u8(0),
        Cell::Bool(b) => {
            state.write_u8(1);
            state.write_u8(u8::from(*b));
        }
        Cell::Int(i) => {
            state.write_u8(2);
            state.write_u64(key_f64_bits(*i as f64));
        }
        Cell::Float(f) => {
            state.write_u8(2);
            state.write_u64(key_f64_bits(*f));
        }
        Cell::Str(s) => {
            state.write_u8(3);
            state.write(s.as_bytes());
            // Length terminator so ("ab","c") never collides with ("a","bc")
            // inside a multi-cell key.
            state.write_u8(0xff);
        }
    }
}

/// Equality with the same classes as comparing [`Cell::key_string`] output.
fn key_eq_cell(a: &Cell, b: &Cell) -> bool {
    match (a, b) {
        (Cell::Null, Cell::Null) => true,
        (Cell::Bool(x), Cell::Bool(y)) => x == y,
        (Cell::Str(x), Cell::Str(y)) => x == y,
        (x @ (Cell::Int(_) | Cell::Float(_)), y @ (Cell::Int(_) | Cell::Float(_))) => {
            let fx = match x {
                Cell::Int(i) => *i as f64,
                Cell::Float(f) => *f,
                _ => unreachable!(),
            };
            let fy = match y {
                Cell::Int(i) => *i as f64,
                Cell::Float(f) => *f,
                _ => unreachable!(),
            };
            key_f64_bits(fx) == key_f64_bits(fy)
        }
        _ => false,
    }
}

/// An allocation-free hash-map key over a single cell (join keys, COUNT
/// DISTINCT). Hash and equality follow [`Cell::key_string`]'s equivalence
/// classes — `Int(2)` and `Float(2.0)` are the same key — without building
/// the string.
#[derive(Debug, Clone)]
pub struct CellKey(pub Cell);

impl Hash for CellKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        key_hash_cell(&self.0, state);
    }
}

impl PartialEq for CellKey {
    fn eq(&self, other: &Self) -> bool {
        key_eq_cell(&self.0, &other.0)
    }
}

impl Eq for CellKey {}

/// Borrowed form of [`RowKey`]: lets hash maps be probed with a `&[Cell]`
/// scratch row without allocating an owned key for the lookup.
#[derive(Debug)]
#[repr(transparent)]
pub struct RowKeySlice([Cell]);

impl RowKeySlice {
    /// View a cell slice as a key.
    pub fn new(cells: &[Cell]) -> &RowKeySlice {
        // SAFETY: RowKeySlice is a repr(transparent) wrapper over [Cell].
        unsafe { &*(cells as *const [Cell] as *const RowKeySlice) }
    }

    /// The underlying cells.
    pub fn cells(&self) -> &[Cell] {
        &self.0
    }
}

impl Hash for RowKeySlice {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_usize(self.0.len());
        for c in &self.0 {
            key_hash_cell(c, state);
        }
    }
}

impl PartialEq for RowKeySlice {
    fn eq(&self, other: &Self) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| key_eq_cell(a, b))
    }
}

impl Eq for RowKeySlice {}

/// An owned multi-cell hash-map key (GROUP BY, DISTINCT) with
/// [`Cell::key_string`]-compatible hash/equality and no per-row string
/// build. Probe maps with [`RowKeySlice`] to stay allocation-free on hits.
#[derive(Debug, Clone)]
pub struct RowKey(pub Vec<Cell>);

impl RowKey {
    /// The underlying cells.
    pub fn cells(&self) -> &[Cell] {
        &self.0
    }

    /// Consume into the underlying cells.
    pub fn into_cells(self) -> Vec<Cell> {
        self.0
    }
}

impl Borrow<RowKeySlice> for RowKey {
    fn borrow(&self) -> &RowKeySlice {
        RowKeySlice::new(&self.0)
    }
}

impl Hash for RowKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        let slice: &RowKeySlice = self.borrow();
        slice.hash(state);
    }
}

impl PartialEq for RowKey {
    fn eq(&self, other: &Self) -> bool {
        let a: &RowKeySlice = self.borrow();
        let b: &RowKeySlice = other.borrow();
        a == b
    }
}

impl Eq for RowKey {}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Null => f.write_str("NULL"),
            other => f.write_str(&other.render()),
        }
    }
}

impl From<i64> for Cell {
    fn from(i: i64) -> Self {
        Cell::Int(i)
    }
}
impl From<f64> for Cell {
    fn from(f: f64) -> Self {
        Cell::Float(f)
    }
}
impl From<bool> for Cell {
    fn from(b: bool) -> Self {
        Cell::Bool(b)
    }
}
impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Str(Arc::from(s))
    }
}
impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Str(Arc::from(s))
    }
}
impl From<Arc<str>> for Cell {
    fn from(s: Arc<str>) -> Self {
        Cell::Str(s)
    }
}
impl<T: Into<Cell>> From<Option<T>> for Cell {
    fn from(o: Option<T>) -> Self {
        o.map_or(Cell::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn coercions() {
        assert_eq!(Cell::Str(" 42 ".into()).coerce_i64(), Some(42));
        assert_eq!(Cell::Float(3.0).coerce_i64(), Some(3));
        assert_eq!(Cell::Float(3.5).coerce_i64(), None);
        assert_eq!(Cell::Str("2.5".into()).coerce_f64(), Some(2.5));
        assert_eq!(Cell::Null.coerce_f64(), None);
        assert_eq!(Cell::Bool(true).coerce_i64(), Some(1));
    }

    #[test]
    fn sql_cmp_null_propagates() {
        assert_eq!(Cell::Null.sql_cmp(&Cell::Int(1)), None);
        assert_eq!(Cell::Int(1).sql_cmp(&Cell::Null), None);
    }

    #[test]
    fn sql_cmp_numeric_strings_compare_numerically() {
        // "9" > "10" lexicographically but 9 < 10 numerically; JSON-extracted
        // values must compare numerically for Q2/Q9-style predicates.
        assert_eq!(
            Cell::Str("9".into()).sql_cmp(&Cell::Str("10".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            Cell::Str("abc".into()).sql_cmp(&Cell::Str("abd".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            Cell::Str("15".into()).sql_cmp(&Cell::Int(10)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn total_cmp_orders_nulls_first() {
        let mut cells = vec![Cell::Int(2), Cell::Null, Cell::Int(1)];
        cells.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(cells, vec![Cell::Null, Cell::Int(1), Cell::Int(2)]);
    }

    #[test]
    fn group_keys_normalize_numeric_types() {
        assert_eq!(Cell::Int(2).key_string(), Cell::Float(2.0).key_string());
        assert!(Cell::Int(2).group_eq(&Cell::Float(2.0)));
        assert!(!Cell::Int(2).group_eq(&Cell::Str("2".into())));
        assert!(Cell::Null.group_eq(&Cell::Null));
    }

    #[test]
    fn string_cells_share_one_buffer() {
        let a = Cell::from("shared document");
        let b = a.clone();
        let (Cell::Str(x), Cell::Str(y)) = (&a, &b) else {
            panic!("string cells");
        };
        assert!(Arc::ptr_eq(x, y), "clone must share, not copy");
    }

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    /// CellKey/RowKey must partition cells into exactly key_string's
    /// equivalence classes: equal strings <=> equal keys (and equal hashes).
    #[test]
    fn cell_key_matches_key_string_classes() {
        let samples = [
            Cell::Null,
            Cell::Bool(false),
            Cell::Bool(true),
            Cell::Int(0),
            Cell::Int(2),
            Cell::Int(-7),
            Cell::Float(2.0),
            Cell::Float(2.5),
            Cell::Float(0.0),
            Cell::Float(-0.0),
            Cell::Float(f64::NAN),
            Cell::Float(f64::INFINITY),
            Cell::Float(f64::NEG_INFINITY),
            Cell::Str("".into()),
            Cell::Str("2".into()),
            Cell::Str("true".into()),
            Cell::Str("\u{0}N".into()),
            Cell::Float(9_007_199_254_740_993i64 as f64),
            Cell::Int(9_007_199_254_740_993), // loses precision as f64
        ];
        for a in &samples {
            for b in &samples {
                let str_eq = a.key_string() == b.key_string();
                let key_eq = CellKey(a.clone()) == CellKey(b.clone());
                assert_eq!(str_eq, key_eq, "{a:?} vs {b:?}");
                if key_eq {
                    assert_eq!(
                        hash_of(&CellKey(a.clone())),
                        hash_of(&CellKey(b.clone())),
                        "{a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_key_probes_without_owning() {
        let mut groups: HashMap<RowKey, u64> = HashMap::new();
        groups.insert(RowKey(vec![Cell::Int(2), Cell::from("x")]), 10);
        let scratch = [Cell::Float(2.0), Cell::from("x")];
        assert_eq!(groups.get(RowKeySlice::new(&scratch)), Some(&10));
        let miss = [Cell::Float(2.5), Cell::from("x")];
        assert_eq!(groups.get(RowKeySlice::new(&miss)), None);
    }

    #[test]
    fn row_key_string_boundaries_do_not_collide() {
        let mut seen: HashSet<RowKey> = HashSet::new();
        seen.insert(RowKey(vec![Cell::from("ab"), Cell::from("c")]));
        assert!(!seen.contains(RowKeySlice::new(&[Cell::from("a"), Cell::from("bc")])));
        assert!(seen.contains(RowKeySlice::new(&[Cell::from("ab"), Cell::from("c")])));
    }

    #[test]
    fn render_and_display() {
        assert_eq!(Cell::Null.render(), "");
        assert_eq!(Cell::Null.to_string(), "NULL");
        assert_eq!(Cell::Int(-3).render(), "-3");
        assert_eq!(Cell::from("x").render(), "x");
        assert_eq!(Cell::from(Some(1i64)).render(), "1");
        assert_eq!(Cell::from(None::<i64>), Cell::Null);
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Cell::Int(1).byte_size(), 8);
        assert_eq!(Cell::Str("abcd".into()).byte_size(), 4);
        assert_eq!(Cell::Null.byte_size(), 1);
    }
}
