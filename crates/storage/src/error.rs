//! Error type for the storage substrate.

use std::fmt;
use std::io;

/// Result alias used throughout `maxson-storage`.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors raised by Norc readers, writers, and table management.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A file failed structural validation (bad magic, truncated section,
    /// checksum mismatch, ...).
    Corrupt {
        /// What was being decoded.
        context: String,
    },
    /// The value written or requested does not match the column type.
    TypeMismatch {
        /// Column involved.
        column: String,
        /// Expected column type name.
        expected: &'static str,
        /// What was found instead.
        found: String,
    },
    /// A schema, column, table, or database was not found.
    NotFound {
        /// Description of what was missing.
        what: String,
    },
    /// Rows appended do not match the schema arity or batch shape.
    ShapeMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// The requested operation is not valid in the current state.
    InvalidOperation {
        /// Description of the violation.
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Corrupt { context } => write!(f, "corrupt data: {context}"),
            StorageError::TypeMismatch {
                column,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in column '{column}': expected {expected}, found {found}"
            ),
            StorageError::NotFound { what } => write!(f, "not found: {what}"),
            StorageError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            StorageError::InvalidOperation { detail } => {
                write!(f, "invalid operation: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl StorageError {
    /// Convenience constructor for corruption errors.
    pub fn corrupt(context: impl Into<String>) -> Self {
        StorageError::Corrupt {
            context: context.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = StorageError::corrupt("footer length");
        assert!(e.to_string().contains("footer length"));
        let e = StorageError::NotFound {
            what: "table mydb.t".into(),
        };
        assert!(e.to_string().contains("mydb.t"));
    }

    #[test]
    fn io_errors_convert() {
        let e: StorageError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
