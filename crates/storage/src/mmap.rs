//! A minimal read-only memory map over raw libc syscalls.
//!
//! The workspace is hermetic (no crates-io dependencies), so this binds
//! `mmap`/`munmap` directly from the already-linked libc instead of pulling
//! in a wrapper crate. Only what [`crate::file::NorcFile`] needs is
//! implemented: map a whole file `PROT_READ | MAP_PRIVATE`, expose it as
//! `&[u8]`, unmap on drop.
//!
//! # Safety argument (why `&[u8]` over a mapping is sound here)
//!
//! A mapped file that shrinks underneath the mapping turns page access into
//! `SIGBUS`, and one that is rewritten in place changes bytes behind safe
//! references. Norc part files are protected from both by the warehouse's
//! append-only invariant — tables grow by adding whole new files; an
//! existing part file is never rewritten or truncated (the same invariant
//! [`crate::metacache`] relies on to cache parsed footers, re-validated by
//! `(len, mtime)` there). The full-file checksum is still verified against
//! the mapped bytes at open, so a file damaged *before* open is rejected
//! exactly like on the `fs::read` path; external interference *after* open
//! is outside the storage contract on either path (with `read` it yields
//! stale bytes, with mmap it may fault). `MAXSON_MMAP=0` opts out entirely.

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    // Stable across Linux and the BSDs/macOS for these two values.
    pub const PROT_READ: c_int = 0x1;
    pub const MAP_PRIVATE: c_int = 0x02;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only, private, whole-file memory mapping.
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE and never handed out
// mutably; sharing read-only pages across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map all of `file` read-only. Fails with the OS error when the kernel
    /// refuses (callers fall back to `fs::read`).
    #[cfg(unix)]
    pub fn map(file: &File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            // mmap(len = 0) is EINVAL; an empty mapping never dereferences.
            return Ok(Mmap {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            });
        }
        // SAFETY: fd is a valid open file descriptor borrowed from `file`,
        // length matches the file, and the result is checked against
        // MAP_FAILED before use.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr as *const u8,
            len,
        })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of `len` bytes (or a
        // dangling pointer with len 0, for which from_raw_parts is fine).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len > 0 {
            // SAFETY: `ptr`/`len` describe exactly the mapping created in
            // `map`; after munmap nothing touches it (we are in drop).
            unsafe {
                sys::munmap(self.ptr as *mut _, self.len);
            }
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("maxson-mmap-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.bin", std::process::id()));
        let mut f = File::create(&p).unwrap();
        f.write_all(contents).unwrap();
        p
    }

    #[test]
    fn maps_whole_file() {
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let path = temp_file("whole", &payload);
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&*map, &payload[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = temp_file("empty", b"");
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(&*map, b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partial_page_tail_is_readable() {
        // A length deliberately not a multiple of any page size: the tail
        // past EOF within the last page must read as written bytes up to
        // len and never be exposed beyond it.
        let payload = vec![0xA7u8; 4096 + 123];
        let path = temp_file("partial", &payload);
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.len(), payload.len());
        assert_eq!(&*map, &payload[..]);
        std::fs::remove_file(&path).ok();
    }
}
