//! Search ARGuments (SARGs): simplified predicates evaluated against
//! row-group statistics.
//!
//! A SARG never decides that a row *matches* — it only proves that an entire
//! row group *cannot* contain matching rows, so it can be skipped. The
//! soundness invariant (checked by the `maxson-testkit` property test
//! `sarg_skipping_never_drops_qualifying_rows` in the workspace-level
//! `tests/property_tests.rs`) is: a row group containing any row satisfying
//! the predicate is never skipped.

use crate::cell::Cell;
use crate::file::{ColumnStats, RowGroupStats};

/// Comparison operators supported in SARGs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl CmpOp {
    /// Render the SQL operator text.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::NotEq => "<>",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        }
    }
}

/// One atomic comparison: `column <op> literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct SargLeaf {
    /// Column index in the file schema.
    pub column: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub literal: Cell,
}

/// A conjunction of leaves (the only combination ORC SARGs push down that
/// Maxson's Algorithm 3 needs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchArgument {
    /// All leaves must be satisfiable for a row group to be kept.
    pub leaves: Vec<SargLeaf>,
}

impl SearchArgument {
    /// An empty SARG (keeps everything).
    pub fn new() -> Self {
        SearchArgument::default()
    }

    /// Add a `column <op> literal` conjunct.
    pub fn with(mut self, column: usize, op: CmpOp, literal: Cell) -> Self {
        self.leaves.push(SargLeaf {
            column,
            op,
            literal,
        });
        self
    }

    /// `true` when no leaves are present.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Evaluate against one row group: `true` = must read, `false` = can
    /// safely skip.
    pub fn row_group_may_match(&self, rg: &RowGroupStats) -> bool {
        self.leaves.iter().all(|leaf| {
            rg.columns
                .get(leaf.column)
                .is_none_or(|stats| leaf_may_match(leaf, stats, rg.row_count))
        })
    }

    /// Compute the keep array over an ordered row-group listing.
    pub fn keep_array<'a>(&self, row_groups: impl Iterator<Item = &'a RowGroupStats>) -> Vec<bool> {
        row_groups.map(|rg| self.row_group_may_match(rg)).collect()
    }
}

/// Conservative satisfiability test of one leaf against column stats.
fn leaf_may_match(leaf: &SargLeaf, stats: &ColumnStats, row_count: usize) -> bool {
    // A group of only NULLs can never satisfy a comparison.
    let nulls = match stats {
        ColumnStats::Int { nulls, .. }
        | ColumnStats::Float { nulls, .. }
        | ColumnStats::Utf8 { nulls, .. }
        | ColumnStats::Bool { nulls, .. } => *nulls,
    };
    if nulls as usize >= row_count {
        return false;
    }
    match stats {
        ColumnStats::Int { min, max, .. } => {
            let (Some(min), Some(max)) = (*min, *max) else {
                return false;
            };
            let Some(lit) = leaf.literal.coerce_f64() else {
                // Non-numeric literal against an int column can never match,
                // except `<>` which matches every non-null row.
                return leaf.op == CmpOp::NotEq;
            };
            range_may_match(min as f64, max as f64, leaf.op, lit)
        }
        ColumnStats::Float { min, max, .. } => {
            let (Some(min), Some(max)) = (*min, *max) else {
                return false;
            };
            let Some(lit) = leaf.literal.coerce_f64() else {
                return leaf.op == CmpOp::NotEq;
            };
            range_may_match(min, max, leaf.op, lit)
        }
        ColumnStats::Utf8 {
            min,
            max,
            num_min,
            num_max,
            all_numeric,
            ..
        } => {
            // Numeric literal: use the numeric min/max when every value in
            // the group is numeric; otherwise we cannot prune soundly
            // (non-numeric strings compare lexicographically and interleave).
            if let Some(lit) = match &leaf.literal {
                Cell::Int(_) | Cell::Float(_) => leaf.literal.coerce_f64(),
                Cell::Str(s) => s.trim().parse::<f64>().ok(),
                _ => None,
            } {
                if *all_numeric {
                    let (Some(nmin), Some(nmax)) = (*num_min, *num_max) else {
                        return false;
                    };
                    return range_may_match(nmin, nmax, leaf.op, lit);
                }
                // Mixed group: keep (sound, not tight).
                return true;
            }
            // String literal against lexicographic min/max.
            let Cell::Str(lit) = &leaf.literal else {
                return true;
            };
            let (Some(min), Some(max)) = (min.as_deref(), max.as_deref()) else {
                return false;
            };
            str_range_may_match(min, max, leaf.op, lit)
        }
        ColumnStats::Bool {
            true_count,
            false_count,
            ..
        } => match (&leaf.literal, leaf.op) {
            (Cell::Bool(b), CmpOp::Eq) => {
                if *b {
                    *true_count > 0
                } else {
                    *false_count > 0
                }
            }
            (Cell::Bool(b), CmpOp::NotEq) => {
                if *b {
                    *false_count > 0
                } else {
                    *true_count > 0
                }
            }
            _ => true,
        },
    }
}

fn range_may_match(min: f64, max: f64, op: CmpOp, lit: f64) -> bool {
    match op {
        CmpOp::Eq => lit >= min && lit <= max,
        CmpOp::NotEq => !(min == max && min == lit),
        CmpOp::Lt => min < lit,
        CmpOp::LtEq => min <= lit,
        CmpOp::Gt => max > lit,
        CmpOp::GtEq => max >= lit,
    }
}

fn str_range_may_match(min: &str, max: &str, op: CmpOp, lit: &str) -> bool {
    match op {
        CmpOp::Eq => lit >= min && lit <= max,
        CmpOp::NotEq => !(min == max && min == lit),
        CmpOp::Lt => min < lit,
        CmpOp::LtEq => min <= lit,
        CmpOp::Gt => max > lit,
        CmpOp::GtEq => max >= lit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_rg(min: i64, max: i64, nulls: u64, rows: usize) -> RowGroupStats {
        RowGroupStats {
            row_count: rows,
            chunks: vec![(0, 0)],
            columns: vec![ColumnStats::Int {
                min: Some(min),
                max: Some(max),
                nulls,
            }],
        }
    }

    #[test]
    fn int_range_pruning() {
        let rg = int_rg(10, 20, 0, 100);
        let keep = |op, lit: i64| {
            SearchArgument::new()
                .with(0, op, Cell::Int(lit))
                .row_group_may_match(&rg)
        };
        assert!(keep(CmpOp::Eq, 15));
        assert!(!keep(CmpOp::Eq, 9));
        assert!(!keep(CmpOp::Eq, 21));
        assert!(!keep(CmpOp::Gt, 20));
        assert!(keep(CmpOp::Gt, 19));
        assert!(!keep(CmpOp::Lt, 10));
        assert!(keep(CmpOp::Lt, 11));
        assert!(keep(CmpOp::GtEq, 20));
        assert!(keep(CmpOp::LtEq, 10));
        assert!(!keep(CmpOp::GtEq, 21));
    }

    #[test]
    fn noteq_prunes_constant_groups_only() {
        let constant = int_rg(7, 7, 0, 10);
        let varied = int_rg(7, 9, 0, 10);
        let sarg = SearchArgument::new().with(0, CmpOp::NotEq, Cell::Int(7));
        assert!(!sarg.row_group_may_match(&constant));
        assert!(sarg.row_group_may_match(&varied));
    }

    #[test]
    fn all_null_groups_are_skipped() {
        let rg = RowGroupStats {
            row_count: 10,
            chunks: vec![(0, 0)],
            columns: vec![ColumnStats::Int {
                min: None,
                max: None,
                nulls: 10,
            }],
        };
        let sarg = SearchArgument::new().with(0, CmpOp::Gt, Cell::Int(0));
        assert!(!sarg.row_group_may_match(&rg));
    }

    #[test]
    fn conjunction_requires_all_leaves() {
        let rg = int_rg(10, 20, 0, 100);
        let sarg =
            SearchArgument::new()
                .with(0, CmpOp::Gt, Cell::Int(5))
                .with(0, CmpOp::Lt, Cell::Int(8));
        assert!(!sarg.row_group_may_match(&rg));
    }

    #[test]
    fn empty_sarg_keeps_everything() {
        let rg = int_rg(0, 0, 0, 1);
        assert!(SearchArgument::new().row_group_may_match(&rg));
    }

    fn utf8_stats(min: &str, max: &str, num: Option<(f64, f64)>, all_numeric: bool) -> ColumnStats {
        ColumnStats::Utf8 {
            min: Some(min.to_string()),
            max: Some(max.to_string()),
            num_min: num.map(|n| n.0),
            num_max: num.map(|n| n.1),
            all_numeric,
            nulls: 0,
        }
    }

    #[test]
    fn numeric_strings_prune_numerically() {
        let rg = RowGroupStats {
            row_count: 10,
            chunks: vec![(0, 0)],
            // Lexicographic range "10".."9" but numeric range 5..40.
            columns: vec![utf8_stats("10", "9", Some((5.0, 40.0)), true)],
        };
        let gt = |lit: i64| {
            SearchArgument::new()
                .with(0, CmpOp::Gt, Cell::Int(lit))
                .row_group_may_match(&rg)
        };
        assert!(gt(30));
        assert!(!gt(40));
        assert!(!gt(10_000)); // the Fig. 8 predicate `id > 10000`
    }

    #[test]
    fn mixed_string_groups_are_kept_for_numeric_literals() {
        let rg = RowGroupStats {
            row_count: 10,
            chunks: vec![(0, 0)],
            columns: vec![utf8_stats("abc", "zzz", None, false)],
        };
        let sarg = SearchArgument::new().with(0, CmpOp::Gt, Cell::Int(100));
        assert!(sarg.row_group_may_match(&rg), "must be conservative");
    }

    #[test]
    fn string_literal_lexicographic_pruning() {
        let rg = RowGroupStats {
            row_count: 10,
            chunks: vec![(0, 0)],
            columns: vec![utf8_stats("bb", "dd", None, false)],
        };
        let may = |op, lit: &str| {
            SearchArgument::new()
                .with(0, op, Cell::Str(lit.into()))
                .row_group_may_match(&rg)
        };
        assert!(may(CmpOp::Eq, "cc"));
        assert!(!may(CmpOp::Eq, "aa"));
        assert!(!may(CmpOp::Eq, "ee"));
        assert!(!may(CmpOp::Gt, "dd"));
        assert!(may(CmpOp::Lt, "bc"));
    }

    #[test]
    fn bool_stats_pruning() {
        let rg = RowGroupStats {
            row_count: 10,
            chunks: vec![(0, 0)],
            columns: vec![ColumnStats::Bool {
                true_count: 0,
                false_count: 10,
                nulls: 0,
            }],
        };
        let eq_true = SearchArgument::new().with(0, CmpOp::Eq, Cell::Bool(true));
        let eq_false = SearchArgument::new().with(0, CmpOp::Eq, Cell::Bool(false));
        assert!(!eq_true.row_group_may_match(&rg));
        assert!(eq_false.row_group_may_match(&rg));
    }

    #[test]
    fn keep_array_shape() {
        let groups = [
            int_rg(0, 5, 0, 10),
            int_rg(10, 20, 0, 10),
            int_rg(30, 40, 0, 10),
        ];
        let sarg = SearchArgument::new().with(0, CmpOp::Gt, Cell::Int(15));
        assert_eq!(sarg.keep_array(groups.iter()), vec![false, true, true]);
    }

    #[test]
    fn unknown_column_index_keeps_group() {
        let rg = int_rg(0, 5, 0, 10);
        let sarg = SearchArgument::new().with(9, CmpOp::Eq, Cell::Int(1));
        assert!(sarg.row_group_may_match(&rg));
    }
}
