//! In-memory column vectors.

use std::sync::Arc;

use crate::cell::Cell;
use crate::encoding::{
    read_bitmap, read_f64, read_str, read_varint, rle_decode_i64, rle_encode_i64, write_bitmap,
    write_f64, write_str, write_varint,
};
use crate::error::{Result, StorageError};
use crate::schema::ColumnType;

/// A typed column of values with a validity mask, the unit of encoding in a
/// row group.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Int64 column: validity + values (invalid slots hold 0).
    Int64 {
        /// Per-row validity (false = NULL).
        valid: Vec<bool>,
        /// Row values; unspecified where invalid.
        values: Vec<i64>,
    },
    /// Float64 column.
    Float64 {
        /// Per-row validity (false = NULL).
        valid: Vec<bool>,
        /// Row values; unspecified where invalid.
        values: Vec<f64>,
    },
    /// String column. Values are `Arc<str>` so handing a cell to the
    /// engine shares the decoded buffer instead of copying the text.
    Utf8 {
        /// Per-row validity (false = NULL).
        valid: Vec<bool>,
        /// Row values; empty where invalid.
        values: Vec<Arc<str>>,
    },
    /// Boolean column.
    Bool {
        /// Per-row validity (false = NULL).
        valid: Vec<bool>,
        /// Row values; false where invalid.
        values: Vec<bool>,
    },
}

impl ColumnData {
    /// An empty column of the given type.
    pub fn empty(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int64 => ColumnData::Int64 {
                valid: Vec::new(),
                values: Vec::new(),
            },
            ColumnType::Float64 => ColumnData::Float64 {
                valid: Vec::new(),
                values: Vec::new(),
            },
            ColumnType::Utf8 => ColumnData::Utf8 {
                valid: Vec::new(),
                values: Vec::new(),
            },
            ColumnType::Bool => ColumnData::Bool {
                valid: Vec::new(),
                values: Vec::new(),
            },
        }
    }

    /// The column's physical type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            ColumnData::Int64 { .. } => ColumnType::Int64,
            ColumnData::Float64 { .. } => ColumnType::Float64,
            ColumnData::Utf8 { .. } => ColumnType::Utf8,
            ColumnData::Bool { .. } => ColumnType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int64 { valid, .. }
            | ColumnData::Float64 { valid, .. }
            | ColumnData::Utf8 { valid, .. }
            | ColumnData::Bool { valid, .. } => valid.len(),
        }
    }

    /// `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a cell, coercing Int into Float64 columns.
    pub fn push(&mut self, cell: &Cell, column_name: &str) -> Result<()> {
        match (self, cell) {
            (ColumnData::Int64 { valid, values }, Cell::Int(v)) => {
                valid.push(true);
                values.push(*v);
            }
            (ColumnData::Int64 { valid, values }, Cell::Null) => {
                valid.push(false);
                values.push(0);
            }
            (ColumnData::Float64 { valid, values }, Cell::Float(v)) => {
                valid.push(true);
                values.push(*v);
            }
            (ColumnData::Float64 { valid, values }, Cell::Int(v)) => {
                valid.push(true);
                values.push(*v as f64);
            }
            (ColumnData::Float64 { valid, values }, Cell::Null) => {
                valid.push(false);
                values.push(0.0);
            }
            (ColumnData::Utf8 { valid, values }, Cell::Str(s)) => {
                valid.push(true);
                values.push(s.clone());
            }
            (ColumnData::Utf8 { valid, values }, Cell::Null) => {
                valid.push(false);
                values.push(Arc::from(""));
            }
            (ColumnData::Bool { valid, values }, Cell::Bool(b)) => {
                valid.push(true);
                values.push(*b);
            }
            (ColumnData::Bool { valid, values }, Cell::Null) => {
                valid.push(false);
                values.push(false);
            }
            (col, cell) => {
                return Err(StorageError::TypeMismatch {
                    column: column_name.to_string(),
                    expected: col.column_type().name(),
                    found: format!("{cell:?}"),
                })
            }
        }
        Ok(())
    }

    /// Read row `i` as a [`Cell`].
    pub fn get(&self, i: usize) -> Cell {
        match self {
            ColumnData::Int64 { valid, values } => {
                if valid[i] {
                    Cell::Int(values[i])
                } else {
                    Cell::Null
                }
            }
            ColumnData::Float64 { valid, values } => {
                if valid[i] {
                    Cell::Float(values[i])
                } else {
                    Cell::Null
                }
            }
            ColumnData::Utf8 { valid, values } => {
                if valid[i] {
                    Cell::Str(Arc::clone(&values[i]))
                } else {
                    Cell::Null
                }
            }
            ColumnData::Bool { valid, values } => {
                if valid[i] {
                    Cell::Bool(values[i])
                } else {
                    Cell::Null
                }
            }
        }
    }

    /// Encode into `out`. Layout: null bitmap, then type-specific stream.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ColumnData::Int64 { valid, values } => {
                write_bitmap(out, valid);
                rle_encode_i64(values, out);
            }
            ColumnData::Float64 { valid, values } => {
                write_bitmap(out, valid);
                write_varint(out, values.len() as u64);
                for &v in values {
                    write_f64(out, v);
                }
            }
            ColumnData::Utf8 { valid, values } => {
                write_bitmap(out, valid);
                write_varint(out, values.len() as u64);
                // Dictionary encoding (like ORC's DICTIONARY_V2) when the
                // column is repetitive enough to pay off; plain otherwise.
                let mut dict: Vec<&str> = Vec::new();
                let mut index_of: std::collections::HashMap<&str, usize> =
                    std::collections::HashMap::new();
                let mut indexes: Vec<i64> = Vec::with_capacity(values.len());
                for v in values {
                    let idx = *index_of.entry(v.as_ref()).or_insert_with(|| {
                        dict.push(v.as_ref());
                        dict.len() - 1
                    });
                    indexes.push(idx as i64);
                }
                let use_dict = !values.is_empty() && dict.len() * 2 <= values.len();
                if use_dict {
                    out.push(1); // dictionary stream
                    write_varint(out, dict.len() as u64);
                    for d in &dict {
                        write_str(out, d);
                    }
                    rle_encode_i64(&indexes, out);
                } else {
                    out.push(0); // plain stream
                    for v in values {
                        write_str(out, v);
                    }
                }
            }
            ColumnData::Bool { valid, values } => {
                write_bitmap(out, valid);
                write_bitmap(out, values);
            }
        }
    }

    /// Decode a column of `ty` from `buf`, advancing `pos`.
    pub fn decode(ty: ColumnType, buf: &[u8], pos: &mut usize) -> Result<Self> {
        let valid = read_bitmap(buf, pos)?;
        match ty {
            ColumnType::Int64 => {
                let values = rle_decode_i64(buf, pos)?;
                if values.len() != valid.len() {
                    return Err(StorageError::corrupt("int column length mismatch"));
                }
                Ok(ColumnData::Int64 { valid, values })
            }
            ColumnType::Float64 => {
                let n = read_varint(buf, pos)? as usize;
                if n != valid.len() {
                    return Err(StorageError::corrupt("float column length mismatch"));
                }
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(read_f64(buf, pos)?);
                }
                Ok(ColumnData::Float64 { valid, values })
            }
            ColumnType::Utf8 => {
                let n = read_varint(buf, pos)? as usize;
                if n != valid.len() {
                    return Err(StorageError::corrupt("string column length mismatch"));
                }
                let mode = *buf
                    .get(*pos)
                    .ok_or_else(|| StorageError::corrupt("string stream mode truncated"))?;
                *pos += 1;
                let values = match mode {
                    0 => {
                        let mut values = Vec::with_capacity(n);
                        for _ in 0..n {
                            values.push(Arc::<str>::from(read_str(buf, pos)?));
                        }
                        values
                    }
                    1 => {
                        let dict_len = read_varint(buf, pos)? as usize;
                        let mut dict: Vec<Arc<str>> = Vec::with_capacity(dict_len);
                        for _ in 0..dict_len {
                            dict.push(Arc::from(read_str(buf, pos)?));
                        }
                        let indexes = rle_decode_i64(buf, pos)?;
                        if indexes.len() != n {
                            return Err(StorageError::corrupt("dictionary index count mismatch"));
                        }
                        // Rows sharing a dictionary entry share one
                        // allocation in memory too.
                        indexes
                            .into_iter()
                            .map(|i| {
                                usize::try_from(i)
                                    .ok()
                                    .and_then(|i| dict.get(i))
                                    .map(Arc::clone)
                                    .ok_or_else(|| {
                                        StorageError::corrupt("dictionary index out of range")
                                    })
                            })
                            .collect::<Result<Vec<Arc<str>>>>()?
                    }
                    m => {
                        return Err(StorageError::corrupt(format!(
                            "unknown string stream mode {m}"
                        )))
                    }
                };
                Ok(ColumnData::Utf8 { valid, values })
            }
            ColumnType::Bool => {
                let values = read_bitmap(buf, pos)?;
                if values.len() != valid.len() {
                    return Err(StorageError::corrupt("bool column length mismatch"));
                }
                Ok(ColumnData::Bool { valid, values })
            }
        }
    }

    /// Approximate decoded byte footprint (for cache budget accounting).
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnData::Int64 { values, .. } => values.len() * 8,
            ColumnData::Float64 { values, .. } => values.len() * 8,
            ColumnData::Utf8 { values, .. } => values.iter().map(|s| s.len()).sum::<usize>(),
            ColumnData::Bool { values, .. } => values.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(col: &ColumnData) -> ColumnData {
        let mut buf = Vec::new();
        col.encode(&mut buf);
        let mut pos = 0;
        let back = ColumnData::decode(col.column_type(), &buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        back
    }

    #[test]
    fn int_column_round_trip_with_nulls() {
        let mut col = ColumnData::empty(ColumnType::Int64);
        for c in [
            Cell::Int(1),
            Cell::Null,
            Cell::Int(-5),
            Cell::Int(-5),
            Cell::Int(-5),
        ] {
            col.push(&c, "c").unwrap();
        }
        let back = round_trip(&col);
        assert_eq!(back.get(0), Cell::Int(1));
        assert_eq!(back.get(1), Cell::Null);
        assert_eq!(back.get(4), Cell::Int(-5));
    }

    #[test]
    fn float_column_accepts_ints() {
        let mut col = ColumnData::empty(ColumnType::Float64);
        col.push(&Cell::Int(3), "c").unwrap();
        col.push(&Cell::Float(2.5), "c").unwrap();
        col.push(&Cell::Null, "c").unwrap();
        let back = round_trip(&col);
        assert_eq!(back.get(0), Cell::Float(3.0));
        assert_eq!(back.get(1), Cell::Float(2.5));
        assert_eq!(back.get(2), Cell::Null);
    }

    #[test]
    fn string_and_bool_round_trip() {
        let mut s = ColumnData::empty(ColumnType::Utf8);
        s.push(&Cell::Str("a\"b".into()), "c").unwrap();
        s.push(&Cell::Null, "c").unwrap();
        let back = round_trip(&s);
        assert_eq!(back.get(0), Cell::Str("a\"b".into()));
        assert_eq!(back.get(1), Cell::Null);

        let mut b = ColumnData::empty(ColumnType::Bool);
        b.push(&Cell::Bool(true), "c").unwrap();
        b.push(&Cell::Bool(false), "c").unwrap();
        b.push(&Cell::Null, "c").unwrap();
        let back = round_trip(&b);
        assert_eq!(back.get(0), Cell::Bool(true));
        assert_eq!(back.get(2), Cell::Null);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut col = ColumnData::empty(ColumnType::Int64);
        let err = col.push(&Cell::Str("x".into()), "mycol").unwrap_err();
        assert!(err.to_string().contains("mycol"));
    }

    #[test]
    fn empty_column_round_trip() {
        for ty in [
            ColumnType::Int64,
            ColumnType::Float64,
            ColumnType::Utf8,
            ColumnType::Bool,
        ] {
            let col = ColumnData::empty(ty);
            let back = round_trip(&col);
            assert_eq!(back.len(), 0);
            assert!(back.is_empty());
        }
    }

    #[test]
    fn byte_size_reflects_content() {
        let mut col = ColumnData::empty(ColumnType::Utf8);
        col.push(&Cell::Str("abcd".into()), "c").unwrap();
        col.push(&Cell::Str("ef".into()), "c").unwrap();
        assert_eq!(col.byte_size(), 6);
    }
}

#[cfg(test)]
mod dict_tests {
    use super::*;

    fn utf8_col(values: &[&str]) -> ColumnData {
        let mut col = ColumnData::empty(ColumnType::Utf8);
        for v in values {
            col.push(&Cell::from(*v), "c").unwrap();
        }
        col
    }

    fn round_trip(col: &ColumnData) -> (ColumnData, usize) {
        let mut buf = Vec::new();
        col.encode(&mut buf);
        let mut pos = 0;
        let back = ColumnData::decode(col.column_type(), &buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        (back, buf.len())
    }

    #[test]
    fn repetitive_strings_use_dictionary_and_shrink() {
        let repetitive: Vec<&str> = std::iter::repeat_n(["alpha", "beta", "gamma"], 100)
            .flatten()
            .collect();
        let col = utf8_col(&repetitive);
        let (back, dict_size) = round_trip(&col);
        assert_eq!(back, col);
        // Plain encoding is ~300 entries x (1 length byte + 4-5 chars)
        // ~= 2 KB; the dictionary stream stores 3 strings + 1 index byte
        // per row.
        assert!(
            dict_size < 700,
            "dictionary stream should compress, got {dict_size} bytes"
        );
    }

    #[test]
    fn unique_strings_stay_plain() {
        let unique: Vec<String> = (0..50).map(|i| format!("value-{i}")).collect();
        let refs: Vec<&str> = unique.iter().map(String::as_str).collect();
        let col = utf8_col(&refs);
        let mut buf = Vec::new();
        col.encode(&mut buf);
        // Mode byte follows bitmap + count; find it by decoding prefix.
        let mut pos = 0;
        let _ = crate::encoding::read_bitmap(&buf, &mut pos).unwrap();
        let _ = crate::encoding::read_varint(&buf, &mut pos).unwrap();
        assert_eq!(buf[pos], 0, "unique values must use the plain stream");
        let (back, _) = round_trip(&col);
        assert_eq!(back, col);
    }

    #[test]
    fn dictionary_with_nulls_round_trips() {
        let mut col = ColumnData::empty(ColumnType::Utf8);
        for i in 0..40 {
            if i % 5 == 0 {
                col.push(&Cell::Null, "c").unwrap();
            } else {
                col.push(&Cell::from(format!("k{}", i % 3)), "c").unwrap();
            }
        }
        let (back, _) = round_trip(&col);
        assert_eq!(back, col);
        assert_eq!(back.get(0), Cell::Null);
        assert_eq!(back.get(1), Cell::Str("k1".into()));
    }

    #[test]
    fn corrupt_dictionary_mode_detected() {
        let col = utf8_col(&["a", "a", "a", "a"]);
        let mut buf = Vec::new();
        col.encode(&mut buf);
        // Find the mode byte and corrupt it.
        let mut pos = 0;
        let _ = crate::encoding::read_bitmap(&buf, &mut pos).unwrap();
        let _ = crate::encoding::read_varint(&buf, &mut pos).unwrap();
        buf[pos] = 9;
        let mut dpos = 0;
        assert!(ColumnData::decode(ColumnType::Utf8, &buf, &mut dpos).is_err());
    }
}
