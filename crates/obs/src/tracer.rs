//! The span collector: [`Tracer`], [`SpanGuard`], and trace snapshots.

use std::fmt::Display;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use crate::hist::LatencyHistogram;

/// Opaque handle to a recorded span, used to parent child spans — including
/// spans recorded on *other* threads (a pool worker attaches its per-split
/// span to the pipeline span opened on the coordinating thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// One recorded span interval.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Identifier; equals this record's index in the trace buffer.
    pub id: u64,
    /// Parent span, when one was supplied.
    pub parent: Option<u64>,
    /// Operator / stage name ("scan_pipeline", "hash_join", ...).
    pub name: String,
    /// Index into [`TraceSnapshot::threads`] — the track this span runs on.
    pub track: usize,
    /// Start offset from the tracer origin, microseconds.
    pub start_us: u64,
    /// End offset from the tracer origin, microseconds (>= `start_us`).
    pub end_us: u64,
    /// Ordered key/value annotations (rows, counters, labels).
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Wall time of the span.
    pub fn wall(&self) -> Duration {
        Duration::from_micros(self.end_us - self.start_us)
    }

    /// Value of an attribute, if recorded.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[derive(Default)]
struct State {
    spans: Vec<SpanRecord>,
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, LatencyHistogram)>,
    /// OS-thread → track index registry, in first-seen order. Track 0 is
    /// whichever thread records first (normally the session thread).
    threads: Vec<(ThreadId, String)>,
}

impl State {
    fn track_index(&mut self) -> usize {
        let current = std::thread::current();
        if let Some(i) = self.threads.iter().position(|(t, _)| *t == current.id()) {
            return i;
        }
        let name = current
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("worker-{}", self.threads.len()));
        self.threads.push((current.id(), name));
        self.threads.len() - 1
    }
}

struct Inner {
    enabled: AtomicBool,
    origin: Instant,
    state: Mutex<State>,
}

/// A thread-safe span/counter/histogram collector.
///
/// Cloning is cheap and shares the buffer: hand clones to providers,
/// rewriters, and worker tasks, and every event lands in one trace.
/// See the crate docs for the zero-cost-when-disabled contract.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// A toggleable tracer, initially disabled. All clones share the buffer
    /// and the enable flag, so a handle distributed at construction time
    /// starts recording the moment [`Tracer::set_enabled`] flips on.
    pub fn new() -> Self {
        Tracer {
            inner: Some(Arc::new(Inner {
                enabled: AtomicBool::new(false),
                origin: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// A tracer that is recording from the start.
    pub fn enabled() -> Self {
        let t = Tracer::new();
        t.set_enabled(true);
        t
    }

    /// A permanently-off tracer (no buffer at all). Same as `default()`.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Whether hooks currently record.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => inner.enabled.load(Ordering::Relaxed),
        }
    }

    /// Flip recording on or off. No-op on a permanently-off tracer.
    pub fn set_enabled(&self, on: bool) {
        if let Some(inner) = &self.inner {
            inner.enabled.store(on, Ordering::Relaxed);
        }
    }

    /// Clear the trace buffer (spans, counters, histograms, thread
    /// registry). Do not call while spans are open — their guards would
    /// write end timestamps into the fresh buffer.
    pub fn reset(&self) {
        if let Some(inner) = &self.inner {
            *inner.state.lock().unwrap() = State::default();
        }
    }

    /// Open a root span.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        self.child(name, None)
    }

    /// Open a span under `parent` (pass a [`SpanGuard::id`] — possibly one
    /// captured on another thread).
    pub fn child(&self, name: &str, parent: Option<SpanId>) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard {
                tracer: self,
                id: None,
            };
        }
        let inner = self.inner.as_ref().expect("enabled implies buffer");
        let now = inner.origin.elapsed().as_micros() as u64;
        let mut st = inner.state.lock().unwrap();
        let track = st.track_index();
        let id = st.spans.len() as u64;
        st.spans.push(SpanRecord {
            id,
            parent: parent.map(|p| p.0),
            name: name.to_string(),
            track,
            start_us: now,
            end_us: now,
            attrs: Vec::new(),
        });
        SpanGuard {
            tracer: self,
            id: Some(SpanId(id)),
        }
    }

    /// Bump a named counter.
    pub fn add(&self, name: &str, delta: u64) {
        if !self.is_enabled() || delta == 0 {
            return;
        }
        let inner = self.inner.as_ref().expect("enabled implies buffer");
        let mut st = inner.state.lock().unwrap();
        match st.counters.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v += delta,
            None => st.counters.push((name.to_string(), delta)),
        }
    }

    /// Current value of a named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let st = inner.state.lock().unwrap();
        st.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Record a duration into a named log-bucketed histogram.
    pub fn observe(&self, name: &str, d: Duration) {
        if !self.is_enabled() {
            return;
        }
        let inner = self.inner.as_ref().expect("enabled implies buffer");
        let mut st = inner.state.lock().unwrap();
        match st.histograms.iter_mut().find(|(k, _)| k == name) {
            Some((_, h)) => h.record(d),
            None => {
                let mut h = LatencyHistogram::new();
                h.record(d);
                st.histograms.push((name.to_string(), h));
            }
        }
    }

    /// Copy of a named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<LatencyHistogram> {
        let inner = self.inner.as_ref()?;
        let st = inner.state.lock().unwrap();
        st.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h.clone())
    }

    /// Snapshot the whole trace buffer.
    pub fn snapshot(&self) -> TraceSnapshot {
        let Some(inner) = &self.inner else {
            return TraceSnapshot::default();
        };
        let st = inner.state.lock().unwrap();
        TraceSnapshot {
            spans: st.spans.clone(),
            counters: st.counters.clone(),
            histograms: st.histograms.clone(),
            threads: st.threads.iter().map(|(_, n)| n.clone()).collect(),
        }
    }

    /// Per-span-name wall-time rollup, sorted by total wall descending
    /// (ties broken by name so the order is deterministic).
    pub fn rollup(&self) -> Vec<OpRollup> {
        self.snapshot().rollup()
    }

    /// Render the buffer as Chrome trace-event JSON (see `chrome.rs`).
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::to_chrome_json(&self.snapshot())
    }

    /// Write the Chrome trace-event JSON to `path`.
    pub fn export_chrome(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }

    fn finish_span(&self, id: SpanId) {
        let Some(inner) = &self.inner else { return };
        let now = inner.origin.elapsed().as_micros() as u64;
        let mut st = inner.state.lock().unwrap();
        if let Some(rec) = st.spans.get_mut(id.0 as usize) {
            rec.end_us = now.max(rec.start_us);
        }
    }

    fn push_attr(&self, id: SpanId, key: &str, value: String) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().unwrap();
        if let Some(rec) = st.spans.get_mut(id.0 as usize) {
            rec.attrs.push((key.to_string(), value));
        }
    }
}

/// RAII handle for an open span; records the end timestamp on drop.
#[must_use = "dropping the guard ends the span"]
pub struct SpanGuard<'t> {
    tracer: &'t Tracer,
    id: Option<SpanId>,
}

impl SpanGuard<'_> {
    /// The recorded span's id — `None` when the tracer is disabled. Pass to
    /// [`Tracer::child`] to parent further spans (any thread).
    pub fn id(&self) -> Option<SpanId> {
        self.id
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.id.is_some()
    }

    /// Annotate the span. The value is only formatted when recording, so a
    /// disabled tracer pays one branch and nothing else.
    pub fn attr<V: Display>(&self, key: &str, value: V) {
        if let Some(id) = self.id {
            self.tracer.push_attr(id, key, value.to_string());
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            self.tracer.finish_span(id);
        }
    }
}

/// A point-in-time copy of a tracer's buffer.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// All spans recorded so far (open spans have `end_us == start_us`).
    pub spans: Vec<SpanRecord>,
    /// Named counters in first-touch order.
    pub counters: Vec<(String, u64)>,
    /// Named histograms in first-touch order.
    pub histograms: Vec<(String, LatencyHistogram)>,
    /// Track names, indexed by [`SpanRecord::track`].
    pub threads: Vec<String>,
}

impl TraceSnapshot {
    /// The span with the given id, if present.
    pub fn span(&self, id: u64) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Children of `parent` in a deterministic order: spans carrying a
    /// numeric `split` attribute sort by split index (parallel workers
    /// finish — and hence record — in scheduling order, which must not leak
    /// into rendered output); everything else keeps recording order.
    pub fn children_of(&self, parent: u64) -> Vec<&SpanRecord> {
        let mut kids: Vec<&SpanRecord> = self
            .spans
            .iter()
            .filter(|s| s.parent == Some(parent))
            .collect();
        kids.sort_by_key(|s| {
            s.attr("split")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(u64::MAX)
        });
        kids
    }

    /// Per-span-name wall-time rollup, sorted by total wall descending
    /// (ties by name).
    pub fn rollup(&self) -> Vec<OpRollup> {
        let mut by_name: Vec<OpRollup> = Vec::new();
        for span in &self.spans {
            match by_name.iter_mut().find(|r| r.name == span.name) {
                Some(r) => {
                    r.count += 1;
                    r.total += span.wall();
                }
                None => by_name.push(OpRollup {
                    name: span.name.clone(),
                    count: 1,
                    total: span.wall(),
                }),
            }
        }
        by_name.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.name.cmp(&b.name)));
        by_name
    }
}

/// Aggregate wall time of all spans sharing one name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRollup {
    /// Span name.
    pub name: String,
    /// Number of spans.
    pub count: u64,
    /// Sum of span wall times.
    pub total: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tracer_is_inert() {
        let t = Tracer::default();
        assert!(!t.is_enabled());
        let g = t.span("noop");
        assert!(!g.is_recording());
        g.attr("k", "v");
        drop(g);
        t.add("c", 5);
        t.observe("h", Duration::from_millis(1));
        let snap = t.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        // set_enabled on a bufferless tracer stays off.
        t.set_enabled(true);
        assert!(!t.is_enabled());
    }

    #[test]
    fn toggle_gates_recording() {
        let t = Tracer::new();
        assert!(!t.is_enabled());
        drop(t.span("before"));
        t.set_enabled(true);
        drop(t.span("during"));
        t.set_enabled(false);
        drop(t.span("after"));
        let spans = t.snapshot().spans;
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "during");
    }

    #[test]
    fn spans_nest_and_record_attrs() {
        let t = Tracer::enabled();
        let root = t.span("query");
        root.attr("sql", "select 1");
        {
            let child = t.child("scan", root.id());
            child.attr("rows", 42u64);
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(root);
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let root_rec = &snap.spans[0];
        let child_rec = &snap.spans[1];
        assert_eq!(root_rec.name, "query");
        assert_eq!(root_rec.attr("sql"), Some("select 1"));
        assert_eq!(child_rec.parent, Some(root_rec.id));
        assert_eq!(child_rec.attr("rows"), Some("42"));
        // Child interval nests inside the parent's.
        assert!(child_rec.start_us >= root_rec.start_us);
        assert!(child_rec.end_us <= root_rec.end_us);
        assert!(child_rec.wall() >= Duration::from_millis(2));
        assert_eq!(snap.children_of(root_rec.id).len(), 1);
    }

    #[test]
    fn cross_thread_spans_get_their_own_track() {
        let t = Tracer::enabled();
        let root = t.span("root");
        let parent = root.id();
        std::thread::scope(|scope| {
            for i in 0..2 {
                let t = &t;
                scope.spawn(move || {
                    let g = t.child("task", parent);
                    g.attr("split", i);
                });
            }
        });
        drop(root);
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 3);
        // Two worker tracks plus the root's track.
        assert_eq!(snap.threads.len(), 3);
        let kids = snap.children_of(0);
        assert_eq!(kids.len(), 2);
        // Deterministic split order regardless of completion order.
        assert_eq!(kids[0].attr("split"), Some("0"));
        assert_eq!(kids[1].attr("split"), Some("1"));
        assert_ne!(kids[0].track, 0);
        assert_ne!(kids[1].track, 0);
    }

    #[test]
    fn counters_sum_across_clones() {
        let t = Tracer::enabled();
        let clone = t.clone();
        t.add("hits", 2);
        clone.add("hits", 3);
        clone.add("misses", 1);
        assert_eq!(t.counter("hits"), 5);
        assert_eq!(t.counter("misses"), 1);
        assert_eq!(t.counter("absent"), 0);
    }

    #[test]
    fn histograms_collect_observations() {
        let t = Tracer::enabled();
        t.observe("lat", Duration::from_micros(10));
        t.observe("lat", Duration::from_micros(1000));
        let h = t.histogram("lat").expect("recorded");
        assert_eq!(h.count(), 2);
        assert!(t.histogram("other").is_none());
    }

    #[test]
    fn rollup_aggregates_by_name() {
        let t = Tracer::enabled();
        drop(t.span("a"));
        drop(t.span("a"));
        drop(t.span("b"));
        let roll = t.rollup();
        assert_eq!(roll.len(), 2);
        let a = roll.iter().find(|r| r.name == "a").unwrap();
        assert_eq!(a.count, 2);
    }

    #[test]
    fn reset_clears_the_buffer() {
        let t = Tracer::enabled();
        drop(t.span("x"));
        t.add("c", 1);
        t.reset();
        let snap = t.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(t.is_enabled(), "reset keeps the enable flag");
    }
}
