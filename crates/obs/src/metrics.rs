//! Process-wide metric registry with Prometheus-style text exposition.
//!
//! The registry hands out cheap, lock-free *handles* — [`Counter`] and
//! [`Gauge`] wrap an `Arc<AtomicU64>`, [`HistogramHandle`] wraps the
//! log-bucketed [`LatencyHistogram`] behind a mutex — keyed by metric name
//! plus a sorted label set (`query_wall{parser="tape"}`). Charging a
//! metric on the hot path is one relaxed atomic op; registration (the
//! only locking operation) happens once per call site, so callers hoist
//! handles out of loops.
//!
//! ## Type discipline
//!
//! The first registration of a name fixes its type. Re-requesting the
//! same key with a different type returns a *detached* handle: it works
//! (callers never panic, telemetry must not take the process down) but is
//! not linked to the registry and never appears in the exposition. The
//! mismatch is counted in `maxson_registry_type_conflicts_total` so it is
//! visible rather than silent.
//!
//! ## Exposition
//!
//! [`Registry::expose`] renders the classic Prometheus text format with
//! fully deterministic ordering: series live in a `BTreeMap` keyed by
//! `(name, labels)`, so equal registry contents always render equal
//! bytes. Histograms emit cumulative `_bucket{le="…"}` lines (seconds,
//! derived from the log-bucket upper bounds in µs) plus `_sum`/`_count`.
//!
//! ## Workload sketch
//!
//! The registry embeds one deterministic [`SpaceSaving`] sketch of
//! per-`(table, JSONPath)` extraction frequencies — the streaming
//! workload signal the continuous-caching roadmap item consumes. Keys
//! are `table\tpath` (tab cannot appear in either part).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::hist::LatencyHistogram;
use crate::sketch::SpaceSaving;

/// Tracked (table, JSONPath) keys in the workload sketch.
const PATH_SKETCH_CAPACITY: usize = 128;

/// A metric series identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        labels.dedup_by(|a, b| a.0 == b.0);
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// One registered series.
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Mutex<LatencyHistogram>>),
}

impl Slot {
    fn type_name(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// Monotonically increasing counter handle. Clone freely; all clones
/// charge the same series.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.value())
    }
}

impl Counter {
    /// A handle not linked to any registry (its charges go nowhere
    /// visible). Used as the fallback on type conflicts and handy as a
    /// null object in tests.
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge handle.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.value())
    }
}

impl Gauge {
    /// A handle not linked to any registry.
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    /// Set the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to at least `v` (high-watermark).
    pub fn max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Histogram handle over the shared log-bucketed latency histogram.
#[derive(Clone)]
pub struct HistogramHandle(Arc<Mutex<LatencyHistogram>>);

impl HistogramHandle {
    /// A handle not linked to any registry.
    pub fn detached() -> Self {
        HistogramHandle(Arc::new(Mutex::new(LatencyHistogram::new())))
    }

    /// Record one duration.
    pub fn observe(&self, d: Duration) {
        self.0.lock().expect("histogram poisoned").record(d);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.0.lock().expect("histogram poisoned").clone()
    }
}

/// Thread-safe metric registry. See the module docs.
pub struct Registry {
    slots: Mutex<BTreeMap<MetricKey, Slot>>,
    type_conflicts: AtomicU64,
    paths: Mutex<SpaceSaving>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            slots: Mutex::new(BTreeMap::new()),
            type_conflicts: AtomicU64::new(0),
            paths: Mutex::new(SpaceSaving::new(PATH_SKETCH_CAPACITY)),
        }
    }

    /// The process-global registry (created on first use).
    pub fn global() -> &'static Arc<Registry> {
        static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(Registry::new()))
    }

    /// Counter handle for `name{labels}` (registering it on first use).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut slots = self.slots.lock().expect("registry poisoned");
        match slots
            .entry(key)
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))))
        {
            Slot::Counter(c) => Counter(Arc::clone(c)),
            _ => {
                self.type_conflicts.fetch_add(1, Ordering::Relaxed);
                Counter::detached()
            }
        }
    }

    /// Gauge handle for `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut slots = self.slots.lock().expect("registry poisoned");
        match slots
            .entry(key)
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0))))
        {
            Slot::Gauge(g) => Gauge(Arc::clone(g)),
            _ => {
                self.type_conflicts.fetch_add(1, Ordering::Relaxed);
                Gauge::detached()
            }
        }
    }

    /// Histogram handle for `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        let key = MetricKey::new(name, labels);
        let mut slots = self.slots.lock().expect("registry poisoned");
        match slots
            .entry(key)
            .or_insert_with(|| Slot::Histogram(Arc::new(Mutex::new(LatencyHistogram::new()))))
        {
            Slot::Histogram(h) => HistogramHandle(Arc::clone(h)),
            _ => {
                self.type_conflicts.fetch_add(1, Ordering::Relaxed);
                HistogramHandle::detached()
            }
        }
    }

    /// Number of handle requests refused for requesting the wrong type.
    pub fn type_conflicts(&self) -> u64 {
        self.type_conflicts.load(Ordering::Relaxed)
    }

    /// Record `weight` extractions of `path` against `table` in the
    /// workload sketch.
    pub fn record_path(&self, table: &str, path: &str, weight: u64) {
        if weight == 0 {
            return;
        }
        let key = format!("{table}\t{path}");
        self.paths
            .lock()
            .expect("path sketch poisoned")
            .record(&key, weight);
    }

    /// Top-`k` `(table, path, estimated_count)` triples from the workload
    /// sketch, hottest first (count desc, key asc — deterministic).
    pub fn hot_paths(&self, k: usize) -> Vec<(String, String, u64)> {
        self.paths
            .lock()
            .expect("path sketch poisoned")
            .top(k)
            .into_iter()
            .map(|e| {
                let (table, path) = e.key.split_once('\t').unwrap_or(("", e.key.as_str()));
                (table.to_string(), path.to_string(), e.count)
            })
            .collect()
    }

    /// Current value of a counter series, if registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey::new(name, labels);
        match self.slots.lock().expect("registry poisoned").get(&key) {
            Some(Slot::Counter(c)) => Some(c.load(Ordering::Relaxed)),
            _ => None,
        }
    }

    /// Current value of a gauge series, if registered.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey::new(name, labels);
        match self.slots.lock().expect("registry poisoned").get(&key) {
            Some(Slot::Gauge(g)) => Some(g.load(Ordering::Relaxed)),
            _ => None,
        }
    }

    /// Snapshot of a histogram series, if registered.
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<LatencyHistogram> {
        let key = MetricKey::new(name, labels);
        match self.slots.lock().expect("registry poisoned").get(&key) {
            Some(Slot::Histogram(h)) => Some(h.lock().expect("histogram poisoned").clone()),
            _ => None,
        }
    }

    /// Every counter and gauge series as `(rendered_id, value)` pairs in
    /// exposition order, plus histogram series as `(id_count, count)`.
    /// A cheap monotonicity probe for tests.
    pub fn sample(&self) -> Vec<(String, u64)> {
        let slots = self.slots.lock().expect("registry poisoned");
        let mut out = Vec::with_capacity(slots.len());
        for (key, slot) in slots.iter() {
            let id = render_series(&key.name, &key.labels, None);
            match slot {
                Slot::Counter(c) => out.push((id, c.load(Ordering::Relaxed))),
                Slot::Gauge(g) => out.push((id, g.load(Ordering::Relaxed))),
                Slot::Histogram(h) => {
                    let count = h.lock().expect("histogram poisoned").count();
                    out.push((format!("{id}#count"), count));
                }
            }
        }
        out
    }

    /// Prometheus-style text exposition. Deterministic: equal registry
    /// contents render equal bytes. `# TYPE` comments are emitted once
    /// per metric name; histogram buckets are cumulative with `le` in
    /// seconds.
    pub fn expose(&self) -> String {
        let slots = self.slots.lock().expect("registry poisoned");
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (key, slot) in slots.iter() {
            if last_name != Some(key.name.as_str()) {
                out.push_str("# TYPE ");
                out.push_str(&key.name);
                out.push(' ');
                out.push_str(slot.type_name());
                out.push('\n');
                last_name = Some(key.name.as_str());
            }
            match slot {
                Slot::Counter(c) => {
                    out.push_str(&render_series(&key.name, &key.labels, None));
                    out.push(' ');
                    out.push_str(&c.load(Ordering::Relaxed).to_string());
                    out.push('\n');
                }
                Slot::Gauge(g) => {
                    out.push_str(&render_series(&key.name, &key.labels, None));
                    out.push(' ');
                    out.push_str(&g.load(Ordering::Relaxed).to_string());
                    out.push('\n');
                }
                Slot::Histogram(h) => {
                    let h = h.lock().expect("histogram poisoned").clone();
                    let mut cumulative = 0u64;
                    for (_, upper_us, n) in h.nonzero_buckets() {
                        cumulative += n;
                        let le = format_seconds(upper_us);
                        let bucket = format!("{}_bucket", key.name);
                        out.push_str(&render_series(&bucket, &key.labels, Some(("le", &le))));
                        out.push(' ');
                        out.push_str(&cumulative.to_string());
                        out.push('\n');
                    }
                    let bucket = format!("{}_bucket", key.name);
                    out.push_str(&render_series(&bucket, &key.labels, Some(("le", "+Inf"))));
                    out.push(' ');
                    out.push_str(&h.count().to_string());
                    out.push('\n');
                    out.push_str(&render_series(
                        &format!("{}_sum", key.name),
                        &key.labels,
                        None,
                    ));
                    out.push(' ');
                    out.push_str(&format_seconds(h.total().as_micros() as u64));
                    out.push('\n');
                    out.push_str(&render_series(
                        &format!("{}_count", key.name),
                        &key.labels,
                        None,
                    ));
                    out.push(' ');
                    out.push_str(&h.count().to_string());
                    out.push('\n');
                }
            }
        }
        // Workload sketch rides along as an info-style gauge family.
        let hot = self.hot_paths(PATH_SKETCH_CAPACITY);
        if !hot.is_empty() {
            out.push_str("# TYPE maxson_hot_path_extracts gauge\n");
            for (table, path, count) in hot {
                out.push_str(&render_series(
                    "maxson_hot_path_extracts",
                    &[("path".to_string(), path), ("table".to_string(), table)],
                    None,
                ));
                out.push(' ');
                out.push_str(&count.to_string());
                out.push('\n');
            }
        }
        out
    }
}

/// Render `name{k="v",…}` with an optional extra label (used for `le`).
fn render_series(name: &str, labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut all: Vec<(&str, &str)> = labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    if let Some((k, v)) = extra {
        all.push((k, v));
        all.sort();
    }
    if all.is_empty() {
        return name.to_string();
    }
    let mut out = String::from(name);
    out.push('{');
    for (i, (k, v)) in all.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Render a µs count as seconds with no trailing-zero noise (Rust f64
/// Display is shortest-roundtrip, hence deterministic across platforms).
fn format_seconds(us: u64) -> String {
    let secs = us as f64 / 1e6;
    format!("{secs}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_a_series_and_labels_are_order_insensitive() {
        let r = Registry::new();
        let a = r.counter("q_total", &[("parser", "tape"), ("mode", "shared")]);
        let b = r.counter("q_total", &[("mode", "shared"), ("parser", "tape")]);
        a.add(3);
        b.inc();
        assert_eq!(a.value(), 4);
        assert_eq!(
            r.counter_value("q_total", &[("parser", "tape"), ("mode", "shared")]),
            Some(4)
        );
    }

    #[test]
    fn type_conflict_returns_detached_handle() {
        let r = Registry::new();
        let c = r.counter("x", &[]);
        c.inc();
        let g = r.gauge("x", &[]);
        g.set(99);
        assert_eq!(r.counter_value("x", &[]), Some(1), "registry unchanged");
        assert_eq!(r.type_conflicts(), 1);
        assert!(!r.expose().contains("99"));
    }

    #[test]
    fn exposition_is_deterministic_and_ordered() {
        let build = || {
            let r = Registry::new();
            r.counter("zeta_total", &[]).add(7);
            r.counter("alpha_total", &[("p", "b")]).add(1);
            r.counter("alpha_total", &[("p", "a")]).add(2);
            r.gauge("mid_gauge", &[]).set(5);
            r.record_path("db.t", "$.a", 10);
            r.record_path("db.t", "$.b", 4);
            r.expose()
        };
        let text = build();
        assert_eq!(text, build());
        let alpha = text.find("alpha_total{p=\"a\"} 2").unwrap();
        let alpha_b = text.find("alpha_total{p=\"b\"} 1").unwrap();
        let zeta = text.find("zeta_total 7").unwrap();
        assert!(
            alpha < alpha_b && alpha_b < zeta,
            "sorted by (name, labels)"
        );
        assert!(text.contains("# TYPE alpha_total counter"));
        assert!(text.contains("# TYPE mid_gauge gauge"));
        assert!(text.contains("maxson_hot_path_extracts{path=\"$.a\",table=\"db.t\"} 10"));
    }

    #[test]
    fn histogram_exposition_has_cumulative_buckets() {
        let r = Registry::new();
        let h = r.histogram("wall_seconds", &[("op", "q")]);
        h.observe(Duration::from_micros(3));
        h.observe(Duration::from_micros(3));
        h.observe(Duration::from_micros(900));
        let text = r.expose();
        assert!(text.contains("# TYPE wall_seconds histogram"));
        // [2,4)µs bucket → le=4e-6 s, two samples.
        assert!(
            text.contains("wall_seconds_bucket{le=\"0.000004\",op=\"q\"} 2"),
            "{text}"
        );
        // [512,1024)µs bucket → cumulative 3.
        assert!(
            text.contains("wall_seconds_bucket{le=\"0.001024\",op=\"q\"} 3"),
            "{text}"
        );
        assert!(text.contains("wall_seconds_bucket{le=\"+Inf\",op=\"q\"} 3"));
        assert!(text.contains("wall_seconds_count{op=\"q\"} 3"));
        assert!(text.contains("wall_seconds_sum{op=\"q\"} 0.000906"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("esc_total", &[("v", "a\"b\\c\nd")]).inc();
        let text = r.expose();
        assert!(text.contains(r#"esc_total{v="a\"b\\c\nd"} 1"#), "{text}");
    }

    #[test]
    fn sample_tracks_histogram_counts() {
        let r = Registry::new();
        r.counter("c_total", &[]).add(2);
        let h = r.histogram("h_seconds", &[]);
        h.observe(Duration::from_micros(5));
        let s = r.sample();
        assert!(s.contains(&("c_total".to_string(), 2)));
        assert!(s.contains(&("h_seconds#count".to_string(), 1)));
    }
}
