//! Observability spine: a thread-safe span tracer, log-bucketed latency
//! histograms, named counters, and Chrome trace-event export.
//!
//! ## Span model
//!
//! A [`Tracer`] owns one trace buffer. Callers open spans with
//! [`Tracer::span`] (roots) or [`Tracer::child`] (explicit parent, so a
//! worker thread can attach its spans to a span opened on the coordinating
//! thread); the returned [`SpanGuard`] records the end timestamp on drop.
//! Timestamps come from one [`Instant`] origin fixed when the tracer is
//! created, so intervals are monotonic and comparable across threads.
//! Every span remembers which OS thread recorded it — the Chrome export
//! turns that into one track per worker thread.
//!
//! ## Overhead contract
//!
//! Tracing is pay-for-what-you-use. A default tracer carries no buffer at
//! all ([`Tracer::default`] is `inner: None` — no allocation, ever), and a
//! toggleable tracer ([`Tracer::new`]) gates every hook on one relaxed
//! atomic load. When disabled, `span`/`child` return an inert guard,
//! `attr` never formats its value (the generic parameter is only rendered
//! after the enabled check), and `add`/`observe` return before touching
//! the buffer: branch-on-a-bool, no allocation, no lock.

mod chrome;
mod hist;
mod metrics;
mod sketch;
mod tracer;

pub use hist::LatencyHistogram;
pub use metrics::{Counter, Gauge, HistogramHandle, Registry};
pub use sketch::{SketchEntry, SpaceSaving};
pub use tracer::{OpRollup, SpanGuard, SpanId, SpanRecord, TraceSnapshot, Tracer};
