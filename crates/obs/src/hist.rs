//! Log-bucketed latency histogram.
//!
//! Bucket `i` holds samples whose microsecond value has `i` significant
//! bits, i.e. durations in `[2^(i-1), 2^i)` µs (bucket 0 is exactly 0 µs).
//! That gives ~2x resolution from microseconds to hours in a fixed 64-slot
//! array — no allocation on the record path, and merging two histograms is
//! element-wise addition, so parallel collection stays commutative.

use std::time::Duration;

/// Number of buckets: one per possible bit-length of a `u64` µs count.
const BUCKETS: usize = 64;

/// A fixed-size logarithmic histogram of durations.
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            total_us: 0,
            max_us: 0,
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("total_us", &self.total_us)
            .field("max_us", &self.max_us)
            .finish()
    }
}

/// Bucket index for a microsecond value: its bit length.
fn bucket_of(us: u64) -> usize {
    (u64::BITS - us.leading_zeros()) as usize
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration.
    pub fn record(&mut self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        // bucket_of(0) == 0, bucket_of(u64::MAX) == 64; clamp into range.
        self.buckets[bucket_of(us).min(BUCKETS - 1)] += 1;
        self.count += 1;
        self.total_us = self.total_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations.
    pub fn total(&self) -> Duration {
        Duration::from_micros(self.total_us)
    }

    /// Largest recorded duration (µs resolution).
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us)
    }

    /// Mean recorded duration (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(self.total_us / self.count)
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (nearest-rank over buckets; `q` clamped to `[0, 1]`).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i covers [2^(i-1), 2^i) µs; report the upper bound,
                // capped by the observed max so p100 is exact-ish.
                let upper = if i == 0 { 0 } else { 1u64 << i };
                return Duration::from_micros(upper.min(self.max_us));
            }
        }
        Duration::from_micros(self.max_us)
    }

    /// Fold another histogram into this one (element-wise; commutative).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_us = self.total_us.saturating_add(other.total_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Non-empty buckets as `(lower_us, upper_us, count)` triples.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let lower = if i <= 1 { 0 } else { 1u64 << (i - 1) };
                let upper = if i == 0 { 0 } else { 1u64 << i };
                (lower, upper, n)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.total(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn buckets_are_log_spaced() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
    }

    #[test]
    fn record_and_quantiles() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.total(), Duration::from_micros(101_106));
        assert_eq!(h.max(), Duration::from_micros(100_000));
        // Median lands in the bucket holding 3µs: [2,4) → upper bound 4µs.
        assert_eq!(h.quantile(0.5), Duration::from_micros(4));
        // The top quantile is capped at the observed max.
        assert_eq!(h.quantile(1.0), Duration::from_micros(100_000));
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for us in [5u64, 50, 500] {
            a.record(Duration::from_micros(us));
            both.record(Duration::from_micros(us));
        }
        for us in [7u64, 70, 7_000_000] {
            b.record(Duration::from_micros(us));
            both.record(Duration::from_micros(us));
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.total(), both.total());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.nonzero_buckets(), both.nonzero_buckets());
    }

    #[test]
    fn huge_durations_saturate() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.max() >= Duration::from_secs(1 << 40));
    }
}
