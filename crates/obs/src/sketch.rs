//! Deterministic Space-Saving heavy-hitters sketch.
//!
//! Tracks the approximate top-K keys of a stream in a fixed-size table
//! (Metwally, Agrawal, El Abbadi: "Efficient Computation of Frequent and
//! Top-k Elements in Data Streams"). When a new key arrives and the table
//! is full, the entry with the *minimum* count is evicted and the new key
//! inherits `min + weight` with an error bound of `min` — so every
//! reported count over-estimates the true count by at most the entry's
//! recorded `error`, and any key whose true count exceeds the current
//! minimum is guaranteed to be present.
//!
//! Determinism matters here (the telemetry differential test replays fixed
//! query sequences and asserts identical output): the sketch is seed-free
//! and hash-free. Eviction picks the entry with the smallest `(count,
//! key)` pair — lexicographic key order breaks count ties — so the same
//! update sequence always produces the same table, on any platform.

/// One tracked key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchEntry {
    /// The tracked key.
    pub key: String,
    /// Estimated count (true count ≤ `count`, true count ≥ `count - error`).
    pub count: u64,
    /// Over-estimation bound inherited from the evicted minimum.
    pub error: u64,
}

/// Fixed-capacity Space-Saving sketch over string keys.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    entries: Vec<SketchEntry>,
}

impl SpaceSaving {
    /// An empty sketch holding at most `capacity` keys (min 1).
    pub fn new(capacity: usize) -> Self {
        SpaceSaving {
            capacity: capacity.max(1),
            entries: Vec::new(),
        }
    }

    /// Maximum number of tracked keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently tracked keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no key has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record `weight` occurrences of `key`.
    pub fn record(&mut self, key: &str, weight: u64) {
        if weight == 0 {
            return;
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.count += weight;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(SketchEntry {
                key: key.to_string(),
                count: weight,
                error: 0,
            });
            return;
        }
        // Evict the minimum-(count, key) entry; the newcomer inherits its
        // count as both floor and error bound.
        let victim = self
            .entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.count.cmp(&b.count).then_with(|| a.key.cmp(&b.key)))
            .map(|(i, _)| i)
            .expect("sketch is full, so non-empty");
        let min = self.entries[victim].count;
        self.entries[victim] = SketchEntry {
            key: key.to_string(),
            count: min + weight,
            error: min,
        };
    }

    /// Fold `other` into this sketch. Matching keys add counts and errors;
    /// foreign keys are replayed through the normal eviction path in
    /// deterministic (count desc, key asc) order, so merge order of equal
    /// inputs yields equal tables.
    pub fn merge(&mut self, other: &SpaceSaving) {
        let mut foreign: Vec<&SketchEntry> = Vec::new();
        for e in &other.entries {
            match self.entries.iter_mut().find(|m| m.key == e.key) {
                Some(m) => {
                    m.count += e.count;
                    m.error += e.error;
                }
                None => foreign.push(e),
            }
        }
        foreign.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.key.cmp(&b.key)));
        for e in foreign {
            self.record_with_error(&e.key, e.count, e.error);
        }
    }

    /// Like `record`, but the inserted entry carries a pre-existing error
    /// bound (used by merge; eviction still adds the displaced minimum).
    fn record_with_error(&mut self, key: &str, count: u64, error: u64) {
        if count == 0 {
            return;
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.count += count;
            e.error += error;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(SketchEntry {
                key: key.to_string(),
                count,
                error,
            });
            return;
        }
        let victim = self
            .entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.count.cmp(&b.count).then_with(|| a.key.cmp(&b.key)))
            .map(|(i, _)| i)
            .expect("sketch is full, so non-empty");
        let min = self.entries[victim].count;
        self.entries[victim] = SketchEntry {
            key: key.to_string(),
            count: min + count,
            error: min + error,
        };
    }

    /// The top `k` entries, sorted by count descending then key ascending.
    pub fn top(&self, k: usize) -> Vec<SketchEntry> {
        let mut out = self.entries.clone();
        out.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.key.cmp(&b.key)));
        out.truncate(k);
        out
    }

    /// Estimated count for one key (0 when untracked).
    pub fn estimate(&self, key: &str) -> u64 {
        self.entries
            .iter()
            .find(|e| e.key == key)
            .map(|e| e.count)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = SpaceSaving::new(8);
        for _ in 0..5 {
            s.record("a", 1);
        }
        for _ in 0..3 {
            s.record("b", 1);
        }
        s.record("c", 2);
        assert_eq!(s.estimate("a"), 5);
        assert_eq!(s.estimate("b"), 3);
        assert_eq!(s.estimate("c"), 2);
        let top = s.top(2);
        assert_eq!(top[0].key, "a");
        assert_eq!(top[1].key, "b");
        assert_eq!(top[0].error, 0, "no eviction below capacity → exact");
    }

    #[test]
    fn eviction_keeps_heavy_hitters_and_bounds_error() {
        let mut s = SpaceSaving::new(8);
        // Two heavy keys interleaved with a churning tail of 16 cool keys.
        // Total stream weight is 500, so the evicted minimum never exceeds
        // 500/8 = 62; tail estimates stay ≤ 13 + 62 < warm's true 100,
        // which is the Space-Saving top-k guarantee in miniature.
        for i in 0..200u32 {
            s.record("hot", 1);
            if i % 2 == 0 {
                s.record("warm", 1);
            }
            s.record(&format!("tail{}", i % 16), 1);
        }
        assert_eq!(s.len(), 8);
        let top = s.top(2);
        assert_eq!(top[0].key, "hot");
        assert_eq!(top[1].key, "warm");
        for e in s.top(8) {
            assert!(e.count >= e.error, "count {} < error {}", e.count, e.error);
        }
        // Space-Saving guarantee: estimate over-counts, never under-counts.
        assert!(s.estimate("hot") >= 200);
        assert!(s.estimate("warm") >= 100);
    }

    #[test]
    fn deterministic_across_replays() {
        let build = || {
            let mut s = SpaceSaving::new(3);
            for i in 0..50u32 {
                s.record(&format!("k{}", i % 7), 1 + u64::from(i % 3));
            }
            s.top(3)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn ties_break_lexicographically() {
        let mut s = SpaceSaving::new(2);
        s.record("b", 1);
        s.record("a", 1);
        // Table full; both have count 1 → "a" is the min by key order.
        s.record("z", 1);
        assert_eq!(s.estimate("a"), 0, "lexicographic min evicted");
        assert_eq!(s.estimate("b"), 1);
        assert_eq!(s.estimate("z"), 2, "inherits evicted min + weight");
    }

    #[test]
    fn merge_matches_combined_stream_when_exact() {
        let mut a = SpaceSaving::new(16);
        let mut b = SpaceSaving::new(16);
        let mut both = SpaceSaving::new(16);
        for (sk, key, w) in [
            (0, "x", 3u64),
            (0, "y", 1),
            (1, "x", 2),
            (1, "z", 5),
            (1, "y", 1),
        ] {
            let t = if sk == 0 { &mut a } else { &mut b };
            t.record(key, w);
            both.record(key, w);
        }
        a.merge(&b);
        assert_eq!(a.top(16), both.top(16));
    }

    #[test]
    fn zero_weight_is_a_noop() {
        let mut s = SpaceSaving::new(2);
        s.record("a", 0);
        assert!(s.is_empty());
    }
}
