//! Chrome trace-event export.
//!
//! Renders a [`TraceSnapshot`] as the Trace Event Format JSON that
//! `chrome://tracing` and Perfetto load: one `"X"` (complete) event per
//! span with microsecond `ts`/`dur`, one `"M"` `thread_name` metadata
//! event per recorded thread (so every worker gets its own track), and one
//! `"C"` counter event per named counter/histogram. Span args carry the
//! span id, parent id, and all attributes, so nesting can be checked
//! programmatically even across tracks.

use maxson_json::value::JsonNumber;
use maxson_json::JsonValue;

use crate::tracer::TraceSnapshot;

fn num(n: u64) -> JsonValue {
    JsonValue::Number(JsonNumber::Int(n as i64))
}

fn s(v: &str) -> JsonValue {
    JsonValue::String(v.to_string())
}

/// Render `snap` as a Trace Event Format document.
pub fn to_chrome_json(snap: &TraceSnapshot) -> String {
    let mut events: Vec<JsonValue> = Vec::new();
    for (track, name) in snap.threads.iter().enumerate() {
        events.push(JsonValue::object(vec![
            ("ph".into(), s("M")),
            ("pid".into(), num(1)),
            ("tid".into(), num(track as u64)),
            ("name".into(), s("thread_name")),
            (
                "args".into(),
                JsonValue::object(vec![("name".into(), s(name))]),
            ),
        ]));
    }
    for span in &snap.spans {
        let mut args: Vec<(String, JsonValue)> = vec![("id".into(), num(span.id))];
        if let Some(p) = span.parent {
            args.push(("parent".into(), num(p)));
        }
        for (k, v) in &span.attrs {
            args.push((k.clone(), s(v)));
        }
        events.push(JsonValue::object(vec![
            ("ph".into(), s("X")),
            ("pid".into(), num(1)),
            ("tid".into(), num(span.track as u64)),
            ("ts".into(), num(span.start_us)),
            ("dur".into(), num(span.end_us - span.start_us)),
            ("name".into(), s(&span.name)),
            ("args".into(), JsonValue::Object(args)),
        ]));
    }
    let end_ts = snap.spans.iter().map(|s| s.end_us).max().unwrap_or(0);
    for (name, value) in &snap.counters {
        events.push(JsonValue::object(vec![
            ("ph".into(), s("C")),
            ("pid".into(), num(1)),
            ("tid".into(), num(0)),
            ("ts".into(), num(end_ts)),
            ("name".into(), s(name)),
            (
                "args".into(),
                JsonValue::object(vec![("value".into(), num(*value))]),
            ),
        ]));
    }
    for (name, hist) in &snap.histograms {
        events.push(JsonValue::object(vec![
            ("ph".into(), s("C")),
            ("pid".into(), num(1)),
            ("tid".into(), num(0)),
            ("ts".into(), num(end_ts)),
            ("name".into(), s(&format!("hist:{name}"))),
            (
                "args".into(),
                JsonValue::object(vec![
                    ("count".into(), num(hist.count())),
                    ("p50_us".into(), num(hist.quantile(0.5).as_micros() as u64)),
                    ("p95_us".into(), num(hist.quantile(0.95).as_micros() as u64)),
                    ("max_us".into(), num(hist.max().as_micros() as u64)),
                ]),
            ),
        ]));
    }
    let doc = JsonValue::object(vec![
        ("traceEvents".into(), JsonValue::Array(events)),
        ("displayTimeUnit".into(), s("ms")),
    ]);
    maxson_json::to_string(&doc)
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use crate::Tracer;

    #[test]
    fn export_round_trips_through_the_parser() {
        let t = Tracer::enabled();
        {
            let root = t.span("query");
            root.attr("sql", "select \"x\" from t");
            let _child = t.child("scan", root.id());
        }
        t.add("cache.hits", 7);
        t.observe("lat", Duration::from_micros(123));
        let text = t.to_chrome_json();
        let doc = maxson_json::parse(&text).expect("well-formed JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        let phase =
            |e: &maxson_json::JsonValue| e.get("ph").and_then(|p| p.as_str().map(str::to_string));
        let xs: Vec<_> = events
            .iter()
            .filter(|e| phase(e).as_deref() == Some("X"))
            .collect();
        assert_eq!(xs.len(), 2);
        let ms: Vec<_> = events
            .iter()
            .filter(|e| phase(e).as_deref() == Some("M"))
            .collect();
        assert_eq!(ms.len(), 1, "one thread -> one thread_name event");
        let cs: Vec<_> = events
            .iter()
            .filter(|e| phase(e).as_deref() == Some("C"))
            .collect();
        assert_eq!(cs.len(), 2, "one counter + one histogram");
        // The child event names its parent in args.
        let child = xs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("scan"))
            .expect("scan event");
        assert!(child.get("args").and_then(|a| a.get("parent")).is_some());
    }

    #[test]
    fn empty_tracer_exports_empty_event_list() {
        let t = Tracer::new();
        let doc = maxson_json::parse(&t.to_chrome_json()).expect("well-formed");
        assert_eq!(
            doc.get("traceEvents")
                .and_then(|e| e.as_array())
                .map(<[_]>::len),
            Some(0)
        );
    }
}
