//! The trace synthesizer.
//!
//! Generates a query trace whose marginal statistics match the paper's
//! published measurements of the Alibaba workload. The generative model:
//!
//! * A fixed universe of `(db, table, column, path)` locations; paths per
//!   table follow the table's column/path fan-out.
//! * Path popularity weights follow a Zipf-like power law, tuned so the top
//!   ~27% of paths draw ~89% of parse traffic.
//! * Users own *query templates* (a set of paths over one table). Recurring
//!   templates fire daily or weekly; ad-hoc queries sample fresh path sets.
//! * Table updates land with a mid-day peak (Fig. 2) the day before the
//!   data is queried.

use maxson_testkit::rng::{Rng, SliceRandom};

use crate::model::{JsonPathLocation, QueryRecord, RecurrenceClass, TableUpdate};

/// Synthesizer configuration. Defaults scale the 5-month / 3M-query trace
/// down by ~3 orders of magnitude while preserving the ratios.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of days in the trace (paper: ~150).
    pub days: u32,
    /// Number of distinct tables.
    pub tables: usize,
    /// JSON columns per table.
    pub columns_per_table: usize,
    /// Paths per JSON column.
    pub paths_per_column: usize,
    /// Number of users (paper: ~1,900 submitting recurring queries).
    pub users: usize,
    /// Recurring query templates per user.
    pub templates_per_user: usize,
    /// Ad-hoc queries per day.
    pub adhoc_per_day: usize,
    /// Fraction of templates that repeat daily (the rest weekly).
    pub daily_fraction: f64,
    /// Among daily templates, fraction using multi-day windows.
    pub multiday_fraction: f64,
    /// Zipf-ish skew exponent for path popularity.
    pub zipf_exponent: f64,
    /// Paths per query (mean; actual count varies 1..2x mean).
    pub paths_per_query: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            days: 60,
            tables: 30,
            columns_per_table: 1,
            paths_per_column: 20,
            users: 100,
            templates_per_user: 4,
            adhoc_per_day: 12,
            // The paper reports 71%+7% of recurring *queries* daily-ish and 17%
            // weekly. Daily templates fire 7x more often than weekly ones, so
            // at the template level the weekly share is much larger:
            // w/(w + 7d) = 0.17 => w ~= 1.4d, i.e. ~42% daily templates.
            daily_fraction: 0.45,
            multiday_fraction: 0.09,
            zipf_exponent: 1.6,
            paths_per_query: 8,
            seed: 0x5EED,
        }
    }
}

/// A generated trace: queries, updates, and the path universe.
#[derive(Debug)]
pub struct SyntheticTrace {
    /// All query records, ordered by (day, hour, query_id).
    pub queries: Vec<QueryRecord>,
    /// All table update events.
    pub updates: Vec<TableUpdate>,
    /// The full path universe.
    pub universe: Vec<JsonPathLocation>,
}

/// Deterministic trace generator.
#[derive(Debug)]
pub struct TraceSynthesizer {
    config: SynthConfig,
}

impl TraceSynthesizer {
    /// Create a synthesizer.
    pub fn new(config: SynthConfig) -> Self {
        TraceSynthesizer { config }
    }

    /// Generate the trace.
    pub fn generate(&self) -> SyntheticTrace {
        let cfg = &self.config;
        let mut rng = Rng::seed_from_u64(cfg.seed);

        // 1. Path universe, grouped per table so templates are table-local
        //    (spatial correlation: queries over the same table share paths).
        let mut universe = Vec::new();
        let mut table_paths: Vec<Vec<usize>> = Vec::with_capacity(cfg.tables);
        for t in 0..cfg.tables {
            let mut ids = Vec::new();
            for c in 0..cfg.columns_per_table {
                for p in 0..cfg.paths_per_column {
                    ids.push(universe.len());
                    universe.push(JsonPathLocation::new(
                        format!("db{}", t % 5),
                        format!("table{t}"),
                        format!("json_col{c}"),
                        format!("$.f{p}"),
                    ));
                }
            }
            table_paths.push(ids);
        }

        // 2. Popularity weights per table-local path index: Zipf over the
        //    within-table rank, shuffled so the popular path differs per
        //    table.
        let mut weights: Vec<f64> = vec![0.0; universe.len()];
        for ids in &table_paths {
            let mut ranked = ids.clone();
            ranked.shuffle(&mut rng);
            for (rank, &id) in ranked.iter().enumerate() {
                weights[id] = 1.0 / ((rank + 1) as f64).powf(self.config.zipf_exponent);
            }
        }

        // 2b. Tables themselves are Zipf-popular: most query traffic lands
        //     on a few hot tables, concentrating path traffic further.
        let table_weights: Vec<f64> = (0..cfg.tables)
            .map(|t| 1.0 / ((t + 1) as f64).powf(1.1))
            .collect();
        let table_ids: Vec<usize> = (0..cfg.tables).collect();
        let pick_table =
            |rng: &mut Rng| -> usize { weighted_sample(&table_ids, &table_weights, 1, rng)[0] };

        // 3. Recurring templates.
        struct Template {
            user: u32,
            class: RecurrenceClass,
            /// Day-of-week for weekly templates.
            phase: u32,
            paths: Vec<usize>,
            table: usize,
            hour: u8,
        }
        let mut templates = Vec::new();
        for u in 0..cfg.users {
            for _ in 0..cfg.templates_per_user {
                let table = pick_table(&mut rng);
                let n = rng.gen_range(1..=cfg.paths_per_query * 2).max(1);
                let class = if rng.gen_bool(cfg.daily_fraction) {
                    RecurrenceClass::Daily
                } else {
                    RecurrenceClass::Weekly
                };
                // Weekly report templates target their own, less popular
                // fields (uniform draw), so a sizeable path population is
                // touched *only* weekly — the temporal pattern that gives
                // sequence models their edge (Table III).
                let paths = match class {
                    RecurrenceClass::Weekly => {
                        let uniform = vec![1.0; weights.len()];
                        weighted_sample(&table_paths[table], &uniform, n, &mut rng)
                    }
                    _ => weighted_sample(&table_paths[table], &weights, n, &mut rng),
                };
                templates.push(Template {
                    user: u as u32,
                    class,
                    phase: rng.gen_range(0..7),
                    paths,
                    table,
                    hour: rng.gen_range(6..22),
                });
            }
        }

        // 4. Emit queries day by day.
        let mut queries = Vec::new();
        let mut qid = 0u64;
        for day in 0..cfg.days {
            for tpl in &templates {
                let fires = match tpl.class {
                    RecurrenceClass::Daily => true,
                    RecurrenceClass::Weekly => day % 7 == tpl.phase,
                    RecurrenceClass::AdHoc => false,
                };
                if !fires {
                    continue;
                }
                queries.push(QueryRecord {
                    query_id: qid,
                    user_id: tpl.user,
                    day,
                    hour: tpl.hour,
                    recurrence: tpl.class,
                    paths: tpl.paths.iter().map(|&i| universe[i].clone()).collect(),
                });
                qid += 1;
                let _ = tpl.table;
            }
            // Ad-hoc queries: fresh random path sets.
            for _ in 0..cfg.adhoc_per_day {
                let table = pick_table(&mut rng);
                let n = rng.gen_range(1..=cfg.paths_per_query).max(1);
                let paths = weighted_sample(&table_paths[table], &weights, n, &mut rng);
                queries.push(QueryRecord {
                    query_id: qid,
                    user_id: (cfg.users + rng.gen_range(0..10)) as u32,
                    day,
                    hour: rng.gen_range(0..24),
                    recurrence: RecurrenceClass::AdHoc,
                    paths: paths.iter().map(|&i| universe[i].clone()).collect(),
                });
                qid += 1;
            }
        }

        // 5. Table updates: every table updates daily, at an hour drawn
        //    from a mid-day-peaked distribution (Fig. 2).
        let mut updates = Vec::new();
        for day in 0..cfg.days {
            for t in 0..cfg.tables {
                updates.push(TableUpdate {
                    database: format!("db{}", t % 5),
                    table: format!("table{t}"),
                    day,
                    hour: sample_update_hour(&mut rng),
                });
            }
        }

        queries.sort_by_key(|q| (q.day, q.hour, q.query_id));
        SyntheticTrace {
            queries,
            updates,
            universe,
        }
    }
}

/// Sample `n` distinct path ids from `ids` proportionally to `weights`.
fn weighted_sample(ids: &[usize], weights: &[f64], n: usize, rng: &mut Rng) -> Vec<usize> {
    let n = n.min(ids.len());
    let mut available: Vec<usize> = ids.to_vec();
    let mut picked = Vec::with_capacity(n);
    for _ in 0..n {
        let total: f64 = available.iter().map(|&i| weights[i]).sum();
        let mut target = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        let mut chosen = available.len() - 1;
        for (k, &i) in available.iter().enumerate() {
            target -= weights[i];
            if target <= 0.0 {
                chosen = k;
                break;
            }
        }
        picked.push(available.swap_remove(chosen));
    }
    picked
}

/// Update hour with a mid-day peak and a midnight trough (Fig. 2 shape):
/// a triangular-ish distribution centered at 13:00.
fn sample_update_hour(rng: &mut Rng) -> u8 {
    // Sum of two uniforms over 0..12 gives a triangular peak at 12, shift
    // by 1h and add a thin uniform floor.
    if rng.gen_bool(0.15) {
        rng.gen_range(0..24)
    } else {
        let a: u8 = rng.gen_range(1..=12);
        let b: u8 = rng.gen_range(0..=11);
        (a + b).min(23)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small_trace() -> SyntheticTrace {
        TraceSynthesizer::new(SynthConfig {
            days: 28,
            tables: 10,
            users: 20,
            ..Default::default()
        })
        .generate()
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_trace();
        let b = small_trace();
        assert_eq!(a.queries.len(), b.queries.len());
        assert_eq!(a.queries[0], b.queries[0]);
    }

    #[test]
    fn recurring_fraction_is_high() {
        let t = small_trace();
        let recurring = t
            .queries
            .iter()
            .filter(|q| q.recurrence != RecurrenceClass::AdHoc)
            .count();
        let frac = recurring as f64 / t.queries.len() as f64;
        // Paper: 82%; the synthesizer should land in the same regime.
        assert!(frac > 0.7 && frac < 0.98, "recurring fraction {frac}");
    }

    #[test]
    fn daily_templates_fire_daily() {
        let t = small_trace();
        // Count distinct days each (user, path-set) fires.
        let mut by_sig: HashMap<String, Vec<u32>> = HashMap::new();
        for q in &t.queries {
            if q.recurrence == RecurrenceClass::Daily {
                let sig = format!(
                    "{}:{}",
                    q.user_id,
                    q.paths
                        .iter()
                        .map(JsonPathLocation::key)
                        .collect::<Vec<_>>()
                        .join(",")
                );
                by_sig.entry(sig).or_default().push(q.day);
            }
        }
        for (sig, days) in by_sig {
            assert_eq!(
                days.len(),
                28,
                "daily template {sig} fired {} times",
                days.len()
            );
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let t = small_trace();
        // Parse traffic per path.
        let mut counts: HashMap<String, u64> = HashMap::new();
        let mut total = 0u64;
        for q in &t.queries {
            for p in &q.paths {
                *counts.entry(p.key()).or_default() += 1;
                total += 1;
            }
        }
        let mut sorted: Vec<u64> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top27 = (sorted.len() * 27 / 100).max(1);
        let top_traffic: u64 = sorted[..top27].iter().sum();
        let share = top_traffic as f64 / total as f64;
        // Paper: 89% of traffic on 27% of paths. Accept a generous band —
        // the shape matters.
        assert!(share > 0.6, "top-27% share is only {share}");
    }

    #[test]
    fn updates_peak_midday() {
        let t = small_trace();
        let mut hist = [0u32; 24];
        for u in &t.updates {
            hist[u.hour as usize] += 1;
        }
        let midday: u32 = hist[10..16].iter().sum();
        let midnight: u32 = hist[0..4].iter().sum::<u32>() + hist[22..24].iter().sum::<u32>();
        assert!(
            midday > midnight * 2,
            "midday {midday} vs midnight {midnight}"
        );
    }

    #[test]
    fn queries_sorted_by_time() {
        let t = small_trace();
        for w in t.queries.windows(2) {
            assert!((w[0].day, w[0].hour) <= (w[1].day, w[1].hour));
        }
    }

    #[test]
    fn weighted_sample_distinct_and_bounded() {
        let mut rng = Rng::seed_from_u64(1);
        let ids: Vec<usize> = (0..10).collect();
        let weights: Vec<f64> = (0..10).map(|i| 1.0 / (i + 1) as f64).collect();
        let picked = weighted_sample(&ids, &weights, 20, &mut rng);
        assert_eq!(picked.len(), 10);
        let set: std::collections::BTreeSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 10);
    }
}
