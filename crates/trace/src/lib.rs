//! Workload-trace substrate.
//!
//! The paper's study rests on a proprietary 5-month Alibaba trace
//! (~3M queries over ~24k tables). This crate provides a synthesizer that
//! reproduces every statistic the paper reports about that trace, so the
//! predictor, scoring function, and cache policy are exercised by input
//! with the same marginals:
//!
//! * 82% of queries recur; of those ~71% daily (7% with multi-day
//!   windows) and ~17% weekly (§II-D1),
//! * JSONPath popularity follows a power law — 89% of parse traffic hits
//!   27% of the paths, averaging ~14 queries per path (§II-D2, Fig. 4),
//! * table updates cluster around mid-day and are rare at midnight
//!   (§II-B, Fig. 2),
//! * queries only touch data loaded before the current day (§II-D).
//!
//! The [`collector::JsonPathCollector`] mirrors the paper's *JSONPath
//! Collector*: it folds query records into a per-(path, date) access-count
//! statistics table — the training input of the predictor.

pub mod analysis;
pub mod collector;
pub mod model;
pub mod synth;

pub use collector::JsonPathCollector;
pub use model::{JsonPathLocation, QueryRecord, TableUpdate};
pub use synth::{SynthConfig, SyntheticTrace, TraceSynthesizer};
