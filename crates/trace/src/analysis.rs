//! Trace analytics: the measurements behind Fig. 2, Fig. 4, and §II-D.

use std::collections::HashMap;

use crate::model::{QueryRecord, RecurrenceClass, TableUpdate};

/// Histogram of table updates by hour of day (Fig. 2).
pub fn update_hour_histogram(updates: &[TableUpdate]) -> [u64; 24] {
    let mut hist = [0u64; 24];
    for u in updates {
        hist[(u.hour as usize).min(23)] += 1;
    }
    hist
}

/// Fraction of queries that are recurring (paper: 82%).
pub fn recurring_fraction(queries: &[QueryRecord]) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    let recurring = queries
        .iter()
        .filter(|q| q.recurrence != RecurrenceClass::AdHoc)
        .count();
    recurring as f64 / queries.len() as f64
}

/// Among recurring queries, the daily and weekly fractions
/// (paper: ~71%+7% daily-ish, 17% weekly).
pub fn recurrence_breakdown(queries: &[QueryRecord]) -> (f64, f64) {
    let recurring: Vec<_> = queries
        .iter()
        .filter(|q| q.recurrence != RecurrenceClass::AdHoc)
        .collect();
    if recurring.is_empty() {
        return (0.0, 0.0);
    }
    let daily = recurring
        .iter()
        .filter(|q| q.recurrence == RecurrenceClass::Daily)
        .count();
    let weekly = recurring.len() - daily;
    (
        daily as f64 / recurring.len() as f64,
        weekly as f64 / recurring.len() as f64,
    )
}

/// Number of queries touching each path, descending (Fig. 4's series), and
/// the mean (paper: ~14 queries per path).
pub fn queries_per_path(queries: &[QueryRecord]) -> (Vec<u64>, f64) {
    let mut counts: HashMap<String, u64> = HashMap::new();
    for q in queries {
        // Count each path once per query (Fig. 4 counts queries, not
        // parse events).
        let mut seen = std::collections::BTreeSet::new();
        for p in &q.paths {
            if seen.insert(p.key()) {
                *counts.entry(p.key()).or_default() += 1;
            }
        }
    }
    let mut v: Vec<u64> = counts.into_values().collect();
    v.sort_unstable_by(|a, b| b.cmp(a));
    let mean = if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<u64>() as f64 / v.len() as f64
    };
    (v, mean)
}

/// Share of total parse traffic captured by the most popular `top_fraction`
/// of paths (paper: top 27% of paths take 89% of traffic).
pub fn traffic_share_of_top(queries: &[QueryRecord], top_fraction: f64) -> f64 {
    let mut counts: HashMap<String, u64> = HashMap::new();
    let mut total = 0u64;
    for q in queries {
        for p in &q.paths {
            *counts.entry(p.key()).or_default() += 1;
            total += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    let mut v: Vec<u64> = counts.into_values().collect();
    v.sort_unstable_by(|a, b| b.cmp(a));
    let k = ((v.len() as f64 * top_fraction).ceil() as usize).clamp(1, v.len());
    v[..k].iter().sum::<u64>() as f64 / total as f64
}

/// Fraction of parse traffic that is *redundant*: repeated parses of a path
/// already parsed earlier the same day (paper: 89% of parsing traffic is
/// repetitive).
pub fn redundant_parse_fraction(queries: &[QueryRecord]) -> f64 {
    let mut seen_today: HashMap<(u32, String), u64> = HashMap::new();
    let mut total = 0u64;
    let mut redundant = 0u64;
    for q in queries {
        for p in &q.paths {
            let k = (q.day, p.key());
            let n = seen_today.entry(k).or_default();
            if *n > 0 {
                redundant += 1;
            }
            *n += 1;
            total += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        redundant as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::JsonPathLocation;
    use crate::synth::{SynthConfig, TraceSynthesizer};

    fn q(day: u32, class: RecurrenceClass, paths: &[&str]) -> QueryRecord {
        QueryRecord {
            query_id: 0,
            user_id: 0,
            day,
            hour: 0,
            recurrence: class,
            paths: paths
                .iter()
                .map(|p| JsonPathLocation::new("d", "t", "c", *p))
                .collect(),
        }
    }

    #[test]
    fn fractions_on_handmade_trace() {
        let queries = vec![
            q(0, RecurrenceClass::Daily, &["$.a"]),
            q(0, RecurrenceClass::Weekly, &["$.a"]),
            q(0, RecurrenceClass::AdHoc, &["$.b"]),
            q(1, RecurrenceClass::Daily, &["$.a"]),
        ];
        assert!((recurring_fraction(&queries) - 0.75).abs() < 1e-9);
        let (daily, weekly) = recurrence_breakdown(&queries);
        assert!((daily - 2.0 / 3.0).abs() < 1e-9);
        assert!((weekly - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn queries_per_path_counts_queries_not_parses() {
        let queries = vec![
            q(0, RecurrenceClass::Daily, &["$.a", "$.a", "$.b"]),
            q(0, RecurrenceClass::Daily, &["$.a"]),
        ];
        let (counts, mean) = queries_per_path(&queries);
        assert_eq!(counts, vec![2, 1]);
        assert!((mean - 1.5).abs() < 1e-9);
    }

    #[test]
    fn redundancy_counts_same_day_repeats() {
        let queries = vec![
            q(0, RecurrenceClass::Daily, &["$.a"]),
            q(0, RecurrenceClass::Daily, &["$.a"]),
            q(1, RecurrenceClass::Daily, &["$.a"]),
        ];
        // 3 parses, 1 redundant (second parse of day 0).
        assert!((redundant_parse_fraction(&queries) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn synthetic_trace_matches_paper_regime() {
        let trace = TraceSynthesizer::new(SynthConfig::default()).generate();
        // Redundancy should be high: most parse traffic is repeats within a
        // day (paper: 89%).
        let r = redundant_parse_fraction(&trace.queries);
        assert!(r > 0.5, "redundant fraction {r}");
        // Popularity skew.
        let share = traffic_share_of_top(&trace.queries, 0.27);
        assert!(share > 0.55, "top-27% share {share}");
        // Mean queries per path in the Fig. 4 regime (paper: 14).
        let (_, mean) = queries_per_path(&trace.queries);
        assert!(mean > 3.0, "mean queries per path {mean}");
        // Update histogram peaks midday.
        let hist = update_hour_histogram(&trace.updates);
        let peak_hour = hist
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(h, _)| h)
            .unwrap();
        assert!((9..=17).contains(&peak_hour), "peak hour {peak_hour}");
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(recurring_fraction(&[]), 0.0);
        assert_eq!(recurrence_breakdown(&[]), (0.0, 0.0));
        assert_eq!(queries_per_path(&[]).1, 0.0);
        assert_eq!(traffic_share_of_top(&[], 0.27), 0.0);
        assert_eq!(redundant_parse_fraction(&[]), 0.0);
    }
}
