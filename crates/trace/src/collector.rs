//! The JSONPath Collector: per-(path, date) access statistics.
//!
//! Mirrors the paper's component of the same name (§III-B): it collects
//! historical user queries and, for each JSONPath, extracts its location
//! (database, table, column) and daily access counts into a statistics
//! table partitioned by date. The predictor trains on exactly this table.

use std::collections::BTreeMap;

use crate::model::{JsonPathLocation, QueryRecord};

/// Per-path, per-day access statistics.
#[derive(Debug, Default)]
pub struct JsonPathCollector {
    /// path key -> (location, day -> count)
    stats: BTreeMap<String, (JsonPathLocation, BTreeMap<u32, u32>)>,
    /// Highest day observed.
    max_day: u32,
}

impl JsonPathCollector {
    /// Empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one query into the statistics table.
    pub fn observe(&mut self, query: &QueryRecord) {
        for path in &query.paths {
            let entry = self
                .stats
                .entry(path.key())
                .or_insert_with(|| (path.clone(), BTreeMap::new()));
            *entry.1.entry(query.day).or_insert(0) += 1;
        }
        self.max_day = self.max_day.max(query.day);
    }

    /// Fold a whole trace.
    pub fn observe_all<'a>(&mut self, queries: impl IntoIterator<Item = &'a QueryRecord>) {
        for q in queries {
            self.observe(q);
        }
    }

    /// Record a raw `(location, day, count)` statistic directly — the entry
    /// point used when reloading a persisted statistics table.
    pub fn record(&mut self, location: &JsonPathLocation, day: u32, count: u32) {
        if count == 0 {
            return;
        }
        let entry = self
            .stats
            .entry(location.key())
            .or_insert_with(|| (location.clone(), BTreeMap::new()));
        *entry.1.entry(day).or_insert(0) += count;
        self.max_day = self.max_day.max(day);
    }

    /// Number of distinct paths seen.
    pub fn path_count(&self) -> usize {
        self.stats.len()
    }

    /// Highest day index observed.
    pub fn max_day(&self) -> u32 {
        self.max_day
    }

    /// All locations seen, in key order.
    pub fn locations(&self) -> impl Iterator<Item = &JsonPathLocation> {
        self.stats.values().map(|(loc, _)| loc)
    }

    /// Access count of `loc` on `day`.
    pub fn count_on(&self, loc: &JsonPathLocation, day: u32) -> u32 {
        self.stats
            .get(&loc.key())
            .and_then(|(_, days)| days.get(&day).copied())
            .unwrap_or(0)
    }

    /// Count sequence for `loc` over `[from, to)` (inclusive-exclusive),
    /// zero-filled.
    pub fn count_sequence(&self, loc: &JsonPathLocation, from: u32, to: u32) -> Vec<u32> {
        (from..to).map(|d| self.count_on(loc, d)).collect()
    }

    /// `true` when the path was parsed at least twice on `day` — the MPJP
    /// ground-truth label.
    pub fn is_mpjp(&self, loc: &JsonPathLocation, day: u32) -> bool {
        self.count_on(loc, day) >= 2
    }

    /// All paths with counts on `day`, as `(location, count)`.
    pub fn day_partition(&self, day: u32) -> Vec<(&JsonPathLocation, u32)> {
        self.stats
            .values()
            .filter_map(|(loc, days)| days.get(&day).map(|&c| (loc, c)))
            .collect()
    }

    /// Total parse traffic (sum of all counts).
    pub fn total_traffic(&self) -> u64 {
        self.stats
            .values()
            .map(|(_, days)| days.values().map(|&c| u64::from(c)).sum::<u64>())
            .sum()
    }

    /// Per-path total query counts, descending — the series of Fig. 4.
    pub fn traffic_per_path(&self) -> Vec<(JsonPathLocation, u64)> {
        let mut v: Vec<(JsonPathLocation, u64)> = self
            .stats
            .values()
            .map(|(loc, days)| {
                (
                    loc.clone(),
                    days.values().map(|&c| u64::from(c)).sum::<u64>(),
                )
            })
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RecurrenceClass;

    fn loc(p: &str) -> JsonPathLocation {
        JsonPathLocation::new("db", "t", "c", p)
    }

    fn query(day: u32, paths: &[&str]) -> QueryRecord {
        QueryRecord {
            query_id: 0,
            user_id: 0,
            day,
            hour: 9,
            recurrence: RecurrenceClass::Daily,
            paths: paths.iter().map(|p| loc(p)).collect(),
        }
    }

    #[test]
    fn counts_accumulate_per_day() {
        let mut c = JsonPathCollector::new();
        c.observe(&query(0, &["$.a", "$.b"]));
        c.observe(&query(0, &["$.a"]));
        c.observe(&query(1, &["$.a"]));
        assert_eq!(c.count_on(&loc("$.a"), 0), 2);
        assert_eq!(c.count_on(&loc("$.b"), 0), 1);
        assert_eq!(c.count_on(&loc("$.a"), 1), 1);
        assert_eq!(c.count_on(&loc("$.zzz"), 0), 0);
        assert_eq!(c.path_count(), 2);
        assert_eq!(c.max_day(), 1);
        assert_eq!(c.total_traffic(), 4);
    }

    #[test]
    fn mpjp_label_is_count_ge_2() {
        let mut c = JsonPathCollector::new();
        c.observe(&query(0, &["$.a"]));
        assert!(!c.is_mpjp(&loc("$.a"), 0));
        c.observe(&query(0, &["$.a"]));
        assert!(c.is_mpjp(&loc("$.a"), 0));
    }

    #[test]
    fn count_sequence_zero_fills() {
        let mut c = JsonPathCollector::new();
        c.observe(&query(1, &["$.a"]));
        c.observe(&query(3, &["$.a"]));
        assert_eq!(c.count_sequence(&loc("$.a"), 0, 5), vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn day_partition_and_traffic_ranking() {
        let mut c = JsonPathCollector::new();
        c.observe(&query(0, &["$.a", "$.b"]));
        c.observe(&query(0, &["$.a"]));
        let part = c.day_partition(0);
        assert_eq!(part.len(), 2);
        let ranked = c.traffic_per_path();
        assert_eq!(ranked[0].0.path, "$.a");
        assert_eq!(ranked[0].1, 2);
    }
}
