//! Core trace record types.

use std::fmt;

/// The four-part key the warehouse uses to address one JSONPath value:
/// database, table, column, and the JSONPath inside the JSON string
/// (§II-A: "to read the value of a field, one has to specify the database
/// name, the table name, the column name, and the JSONPath").
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JsonPathLocation {
    /// Database name.
    pub database: String,
    /// Table name.
    pub table: String,
    /// Column holding the JSON string.
    pub column: String,
    /// JSONPath text (e.g. `$.turnover`).
    pub path: String,
}

impl JsonPathLocation {
    /// Construct a location.
    pub fn new(
        database: impl Into<String>,
        table: impl Into<String>,
        column: impl Into<String>,
        path: impl Into<String>,
    ) -> Self {
        JsonPathLocation {
            database: database.into(),
            table: table.into(),
            column: column.into(),
            path: path.into(),
        }
    }

    /// A stable single-string key (used in hash maps and file names).
    pub fn key(&self) -> String {
        format!(
            "{}\u{1}{}\u{1}{}\u{1}{}",
            self.database, self.table, self.column, self.path
        )
    }
}

impl fmt::Display for JsonPathLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}:{}",
            self.database, self.table, self.column, self.path
        )
    }
}

/// Why a query was submitted — the recurrence class of §II-D1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecurrenceClass {
    /// Repeats every day (possibly with a multi-day data window).
    Daily,
    /// Repeats weekly.
    Weekly,
    /// One-off exploration.
    AdHoc,
}

/// One executed query in the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    /// Monotone query id.
    pub query_id: u64,
    /// Submitting user.
    pub user_id: u32,
    /// Day index since trace start (0-based).
    pub day: u32,
    /// Hour of submission (0..24).
    pub hour: u8,
    /// Recurrence class this query was generated from.
    pub recurrence: RecurrenceClass,
    /// The JSONPaths the query parses.
    pub paths: Vec<JsonPathLocation>,
}

/// One table update event (data load).
#[derive(Debug, Clone, PartialEq)]
pub struct TableUpdate {
    /// Database name.
    pub database: String,
    /// Table name.
    pub table: String,
    /// Day index of the update.
    pub day: u32,
    /// Hour of day (0..24) — Fig. 2's axis.
    pub hour: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_key_is_injective_on_fields() {
        let a = JsonPathLocation::new("db", "t", "c", "$.x");
        let b = JsonPathLocation::new("db", "t", "c", "$.y");
        let c = JsonPathLocation::new("db", "t.c", "", "$.x");
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_eq!(a.key(), a.clone().key());
    }

    #[test]
    fn display_is_readable() {
        let a = JsonPathLocation::new("mydb", "sales", "logs", "$.item");
        assert_eq!(a.to_string(), "mydb.sales.logs:$.item");
    }
}
