//! Shared harness utilities for the per-figure/per-table benchmark
//! binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md`'s experiment index). They share:
//!
//! * [`workload`] — building the ten Table II tables in a reusable
//!   warehouse directory and timing query sets under different systems
//!   (Spark+Jackson, Spark+Mison, Maxson, Maxson+Mison, online LRU),
//! * [`report`] — aligned text tables and a machine-readable JSON dump of
//!   every experiment's series, written under `bench-results/`.

pub mod report;
pub mod workload;

pub use report::{Report, Series};
pub use workload::{bench_root, fresh_session, load_tables, run_query, run_query_avg, SystemKind};
