//! Benchmark reporting: aligned text tables plus a JSON dump.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use maxson_json::JsonValue;

/// One named series of (label, value) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Series name (e.g. "Maxson", "Spark+Jackson").
    pub name: String,
    /// Data points: `(x label, value)`.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, label: impl Into<String>, value: f64) {
        self.points.push((label.into(), value));
    }
}

/// A whole experiment report: title, commentary, and series.
#[derive(Debug)]
pub struct Report {
    /// Experiment id, e.g. "fig11".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Free-form notes lines (what the paper observed vs what we measured).
    pub notes: Vec<String>,
    /// The measured series.
    pub series: Vec<Series>,
}

impl Report {
    /// Create an empty report.
    ///
    /// Every report opens with a note recording the engine's configured
    /// thread count, so benchmark numbers are always interpretable (serial
    /// vs split-parallel runs produce identical rows but different walls).
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        let mut report = Report {
            id: id.into(),
            title: title.into(),
            notes: Vec::new(),
            series: Vec::new(),
        };
        report.note(format!(
            "engine threads: {} (MAXSON_THREADS; {} cores available)",
            maxson_engine::ExecOptions::from_env().threads,
            maxson_engine::exec::default_threads()
        ));
        report.note(format!(
            "shared parse: {} (MAXSON_SHARED_PARSE)",
            if maxson_engine::ExecOptions::from_env().shared_parse {
                "on"
            } else {
                "off"
            }
        ));
        report.note(format!(
            "simd kernel: {} (MAXSON_SIMD); norc mmap: {} (MAXSON_MMAP)",
            maxson_json::kernels::active().name(),
            match maxson_storage::MmapMode::from_env() {
                maxson_storage::MmapMode::Enabled => "on",
                maxson_storage::MmapMode::Disabled => "off",
            }
        ));
        report
    }

    /// Add a note line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Add a note recording one measured query's parse-dedup counters:
    /// `parse_calls` evaluations served by `docs_parsed` actual parses.
    pub fn note_parse_dedup(&mut self, label: &str, metrics: &maxson_engine::ExecMetrics) {
        self.note(format!(
            "{label}: parse_calls={} docs_parsed={} dedup={:.2}x",
            metrics.parse_calls,
            metrics.docs_parsed,
            metrics.parse_dedup_factor()
        ));
    }

    /// Add a note embedding the top-3 operators by total recorded wall
    /// time from a tracer's span rollup (one traced run is enough; timed
    /// runs stay untraced so the numbers are unperturbed).
    pub fn note_top_operators(&mut self, label: &str, tracer: &maxson_engine::Tracer) {
        let rollup = tracer.rollup();
        if rollup.is_empty() {
            self.note(format!("{label}: top operators: (no spans recorded)"));
            return;
        }
        let top: Vec<String> = rollup
            .iter()
            .take(3)
            .map(|op| format!("{}x{} {:.4}s", op.name, op.count, op.total.as_secs_f64()))
            .collect();
        self.note(format!("{label}: top operators: {}", top.join(", ")));
    }

    /// Add a series.
    pub fn add(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Render as an aligned text table: one row per x label, one column per
    /// series.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {} — {} ===", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(out, "  {n}");
        }
        if self.series.is_empty() {
            return out;
        }
        // Collect union of x labels, preserving first-series order.
        let mut labels: Vec<String> = Vec::new();
        for s in &self.series {
            for (l, _) in &s.points {
                if !labels.contains(l) {
                    labels.push(l.clone());
                }
            }
        }
        let label_w = labels.iter().map(String::len).max().unwrap_or(1).max(8);
        let col_ws: Vec<usize> = self.series.iter().map(|s| s.name.len().max(12)).collect();
        let _ = write!(out, "{:<label_w$}  ", "");
        for (s, w) in self.series.iter().zip(&col_ws) {
            let _ = write!(out, "{:>w$}  ", s.name, w = w);
        }
        out.push('\n');
        for label in &labels {
            let _ = write!(out, "{label:<label_w$}  ");
            for (s, w) in self.series.iter().zip(&col_ws) {
                match s.points.iter().find(|(l, _)| l == label) {
                    Some((_, v)) => {
                        let _ = write!(out, "{:>w$.4}  ", v, w = w);
                    }
                    None => {
                        let _ = write!(out, "{:>w$}  ", "-", w = w);
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Serialize as JSON.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("id".into(), JsonValue::from(self.id.as_str())),
            ("title".into(), JsonValue::from(self.title.as_str())),
            (
                "notes".into(),
                JsonValue::Array(
                    self.notes
                        .iter()
                        .map(|n| JsonValue::from(n.as_str()))
                        .collect(),
                ),
            ),
            (
                "series".into(),
                JsonValue::Array(
                    self.series
                        .iter()
                        .map(|s| {
                            JsonValue::Object(vec![
                                ("name".into(), JsonValue::from(s.name.as_str())),
                                (
                                    "points".into(),
                                    JsonValue::Array(
                                        s.points
                                            .iter()
                                            .map(|(l, v)| {
                                                JsonValue::Object(vec![
                                                    ("label".into(), JsonValue::from(l.as_str())),
                                                    ("value".into(), JsonValue::from(*v)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Print to stdout and persist under `bench-results/<id>.json`.
    pub fn emit(&self) {
        println!("{}", self.to_text());
        let dir = results_dir();
        if fs::create_dir_all(&dir).is_ok() {
            let _ = fs::write(
                dir.join(format!("{}.json", self.id)),
                maxson_json::to_string_pretty(&self.to_json()),
            );
        }
    }
}

/// Where reports land (workspace-relative when run via cargo).
pub fn results_dir() -> PathBuf {
    std::env::var_os("MAXSON_BENCH_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("bench-results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_aligns_and_fills_gaps() {
        let mut r = Report::new("figX", "demo");
        r.note("a note");
        let mut s1 = Series::new("Spark");
        s1.push("Q1", 1.5);
        s1.push("Q2", 2.5);
        let mut s2 = Series::new("Maxson");
        s2.push("Q1", 0.5);
        r.add(s1);
        r.add(s2);
        let text = r.to_text();
        assert!(text.contains("figX"));
        assert!(text.contains("a note"));
        assert!(text.contains("Q2"));
        assert!(text.contains('-'), "missing point renders as dash");
    }

    #[test]
    fn top_operator_note_ranks_by_wall_time() {
        let mut r = Report::new("figY", "rollup");
        let t = maxson_engine::Tracer::enabled();
        {
            let _a = t.span("scan");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _b = t.span("filter");
        }
        r.note_top_operators("Q1", &t);
        let text = r.to_text();
        assert!(text.contains("Q1: top operators: scanx1"), "{text}");
        assert!(text.contains("filterx1"));
        let mut empty = Report::new("figZ", "empty");
        empty.note_top_operators("Q2", &maxson_engine::Tracer::new());
        assert!(empty.to_text().contains("no spans recorded"));
    }

    #[test]
    fn json_round_trips_through_parser() {
        let mut r = Report::new("t3", "models");
        let mut s = Series::new("LR");
        s.push("precision", 1.0);
        r.add(s);
        let json = maxson_json::to_string(&r.to_json());
        let doc = maxson_json::parse(&json).unwrap();
        assert_eq!(doc.get("id").unwrap().as_str(), Some("t3"));
        let series = doc.get("series").unwrap().as_array().unwrap();
        assert_eq!(series.len(), 1);
    }
}
