//! Rebuild the checked-in `bench-data/` warehouse from scratch: the ten
//! Table II tables (deterministic, seed 0xCAFE) plus a fully populated
//! Maxson cache (`__maxson_cache`, cached at logical time 100 against
//! tables modified at time 1).
//!
//! Run after any Norc format or datagen change so the committed warehouse
//! stays readable:
//!
//! ```text
//! cargo run --release -p maxson-bench --bin make_warehouse
//! ```
//!
//! Honors `MAXSON_BENCH_DATA` (default `bench-data/`) and
//! `MAXSON_BENCH_ROWS` (default 2000) like every other bench binary.

use maxson_bench::workload::{bench_root, load_tables, session_for};
use maxson_bench::SystemKind;

fn main() {
    let root = bench_root();
    // Start clean so files from an older format never survive.
    let _ = std::fs::remove_dir_all(&root);
    let queries = load_tables();
    let (_, cached) = session_for(SystemKind::Maxson, &queries, u64::MAX, true);
    println!(
        "rebuilt {} ({} tables, {} cached paths)",
        root.display(),
        queries.len(),
        cached.len()
    );
}
