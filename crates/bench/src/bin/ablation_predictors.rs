//! Ablation — how much does predictor quality matter end to end?
//!
//! The paper evaluates predictors on F1 (Table III) but never isolates
//! their end-to-end effect on query time. This ablation drives the full
//! midnight cycle with each predictor and replays a day whose ground truth
//! is known, reporting cache coverage and total query time:
//!
//! * `Oracle` — upper bound (perfect next-day knowledge),
//! * `RepeatYesterday` — the non-ML heuristic,
//! * `LstmCrf` — the paper's model,
//! * `Lr` — the weakest baseline.
//!
//! A predictor with low recall caches too few paths (queries parse); low
//! precision wastes cache bytes on paths nobody reads.

use maxson::mpjp::PredictorKind;
use maxson::{MaxsonPipeline, PipelineConfig};
use maxson_bench::{load_tables, run_query_avg, Report, Series};
use maxson_datagen::tables::QuerySpec;
use maxson_trace::model::RecurrenceClass;
use maxson_trace::{JsonPathLocation, QueryRecord};

/// A mixed-recurrence history over the workload queries:
/// * queries 0,1,4,5,8,9 — twice daily (their paths are MPJPs every day),
/// * queries 2,6 — once daily (parsed once: NOT MPJPs; caching them wastes
///   budget),
/// * queries 3,7 — twice on one weekday only (MPJPs on that day only —
///   the temporal pattern a good predictor must catch).
fn mixed_history(queries: &[QuerySpec], days: u32) -> Vec<QueryRecord> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for day in 0..days {
        for (qi, q) in queries.iter().enumerate() {
            let submissions: u32 = match qi % 4 {
                2 => 1, // daily single-parse
                3 => {
                    if day % 7 == (qi as u32) % 7 {
                        2 // weekly burst
                    } else {
                        0
                    }
                }
                _ => 2, // daily MPJP
            };
            let paths: Vec<JsonPathLocation> = q
                .paths
                .iter()
                .map(|p| {
                    JsonPathLocation::new(q.database.clone(), q.table.clone(), "payload", p.clone())
                })
                .collect();
            for user in 0..submissions {
                out.push(QueryRecord {
                    query_id: id,
                    user_id: qi as u32 * 2 + user,
                    day,
                    hour: 9,
                    recurrence: if qi % 4 == 3 {
                        RecurrenceClass::Weekly
                    } else {
                        RecurrenceClass::Daily
                    },
                    paths: paths.clone(),
                });
                id += 1;
            }
        }
    }
    out
}

fn main() {
    let queries = load_tables();
    // 35 days of history; predict day 35. 35 % 7 == 0, so the weekly
    // queries Q4 (qi=3, phase 3) and Q8 (qi=7, phase 0) split: Q8's burst
    // fires on day 35, Q4's does not.
    let days = 35u32;
    let history = mixed_history(&queries, days + 1);
    let total_paths: usize = queries.iter().map(|q| q.paths.len()).sum();

    let mut report = Report::new(
        "ablation_predictors",
        "End-to-end effect of the MPJP predictor (total Q1..Q10 seconds; coverage)",
    );
    report.note("Oracle is the upper bound; LSTM+CRF should approach it; a weak predictor caches fewer of the right paths and queries keep parsing.");

    let mut time_series = Series::new("total time (s)");
    let mut coverage_series = Series::new("paths cached");
    for (label, kind) in [
        ("Oracle", PredictorKind::Oracle),
        ("RepeatYesterday", PredictorKind::RepeatYesterday),
        ("LSTM+CRF", PredictorKind::LstmCrf),
        ("LR", PredictorKind::Lr),
    ] {
        let mut session = maxson_bench::fresh_session();
        let mut pipeline = MaxsonPipeline::new(
            maxson_bench::bench_root(),
            PipelineConfig {
                predictor: kind,
                ..Default::default()
            },
        );
        // The predictor only sees history up to `days - 1`; day `days`
        // is the ground truth the oracle peeks at.
        pipeline.observe(history.iter().filter(|q| q.day < days));
        let oracle_extra: Vec<QueryRecord> =
            history.iter().filter(|q| q.day == days).cloned().collect();
        if kind == PredictorKind::Oracle {
            pipeline.observe(oracle_extra.iter());
        }
        let cycle = pipeline
            .run_midnight_cycle(&mut session, &history, days - 1, 100)
            .expect("cycle");
        let mut total = 0.0;
        for q in &queries {
            let (t, _) = run_query_avg(&session, &q.sql, 2);
            total += t.as_secs_f64();
        }
        println!(
            "{label:>16}: {total:.3}s, {}/{total_paths} paths cached",
            cycle.cache.cached.len()
        );
        time_series.push(label, total);
        coverage_series.push(label, cycle.cache.cached.len() as f64);
    }
    report.add(time_series);
    report.add(coverage_series);
    report.emit();
}
