//! Fig. 12 — Read/Parse/Compute breakdown and input-size reduction for Q2
//! and Q9, Spark vs Maxson.
//!
//! The paper breaks the runtime of Q2 and Q9 into Read, Parse, and Compute:
//! Maxson eliminates the Parse slice entirely by reading cached values, and
//! because both queries filter on JSON properties, its predicate pushdown
//! into the cache table also shrinks the input size.

use maxson_bench::workload::session_for;
use maxson_bench::{load_tables, run_query_avg, Report, Series, SystemKind};

fn main() {
    let queries = load_tables();
    let picks: Vec<_> = queries
        .iter()
        .filter(|q| q.name == "Q2" || q.name == "Q9")
        .collect();

    let mut report = Report::new(
        "fig12",
        "Q2/Q9 phase breakdown (seconds) and input bytes, Spark vs Maxson",
    );
    report.note("Paper: Maxson removes the Parse phase and reads far less input (JSON predicates push down into the cache table).");

    // Wall-clock gauges, not per-thread sums: under split-parallel
    // execution `read + parse` can exceed the total runtime, so the
    // breakdown uses the estimated wall share of each phase (see
    // ExecMetrics::compute_wall).
    let mut read_s = Series::new("read (wall)");
    let mut parse_s = Series::new("parse (wall)");
    let mut compute_s = Series::new("compute (wall)");
    let mut input_s = Series::new("input bytes");
    // Zero-copy pipeline work counters: how many column values were
    // materialized into row cells, and how many rows the batched scan
    // dropped (selection vector + filter) before full materialization.
    let mut cells_s = Series::new("cells materialized");
    let mut skipped_s = Series::new("batch rows skipped");

    let fast = std::env::var("MAXSON_BENCH_FAST").as_deref() == Ok("1");
    let runs = if fast { 1 } else { 2 };

    for q in &picks {
        // Spark baseline.
        let spark = maxson_bench::fresh_session();
        let (_, sm) = run_query_avg(&spark, &q.sql, runs);
        // Maxson with a full-budget cache.
        let (maxson, _cached) = session_for(SystemKind::Maxson, &queries, u64::MAX, true);
        let (_, mm) = run_query_avg(&maxson, &q.sql, runs);

        for (label, m) in [
            (format!("{} Spark", q.name), &sm),
            (format!("{} Maxson", q.name), &mm),
        ] {
            read_s.push(label.clone(), m.read_wall.as_secs_f64());
            parse_s.push(label.clone(), m.parse_wall.as_secs_f64());
            compute_s.push(label.clone(), m.compute_wall().as_secs_f64());
            input_s.push(label.clone(), m.bytes_read as f64);
            cells_s.push(label.clone(), m.cells_materialized as f64);
            skipped_s.push(label, m.batch_rows_skipped as f64);
        }
        report.note_parse_dedup(&format!("{} Spark", q.name), &sm);
        report.note_parse_dedup(&format!("{} Maxson", q.name), &mm);
        // One traced (untimed) run per system for the operator rollup.
        for (label, session) in [("Spark", &spark), ("Maxson", &maxson)] {
            session.set_trace_enabled(true);
            let _ = session.execute(&q.sql);
            report.note_top_operators(&format!("{} {label}", q.name), session.tracer());
            session.set_trace_enabled(false);
        }
        println!(
            "{}: Spark parse {:.4}s / {} B input; Maxson parse {:.4}s / {} B input (rg skipped {})",
            q.name,
            sm.parse.as_secs_f64(),
            sm.bytes_read,
            mm.parse.as_secs_f64(),
            mm.bytes_read,
            mm.row_groups_skipped
        );
    }
    report.add(read_s);
    report.add(parse_s);
    report.add(compute_s);
    report.add(input_s);
    report.add(cells_s);
    report.add(skipped_s);
    report.emit();
}
