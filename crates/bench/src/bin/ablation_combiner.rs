//! Ablation — synchronized two-reader combiner vs the naive row-number
//! join the paper dismisses in §I ("the join operations can be costly").
//!
//! Both strategies stitch the same raw/cache tables; the combiner exploits
//! positional alignment (no hash table, and SARG skips transfer across
//! readers), while the join baseline materializes everything and probes a
//! hash table per row.

use maxson::combiner::CombinedScanProvider;
use maxson::JoinStitchProvider;
use maxson_bench::{Report, Series};
use maxson_engine::metrics::ExecMetrics;
use maxson_engine::scan::ScanProvider;
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, CmpOp, ColumnType, Field, Schema, SearchArgument, Table};

fn build_tables(rows: usize) -> (Table, Table, std::path::PathBuf) {
    let root = std::env::temp_dir().join(format!(
        "maxson-ablation-combiner-{}-{rows}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let raw_schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let cache_schema = Schema::new(vec![Field::new("va", ColumnType::Utf8)]).unwrap();
    let mut raw = Table::create(root.join("raw"), raw_schema, 0).unwrap();
    let mut cache = Table::create(root.join("cache"), cache_schema, 0).unwrap();
    let opts = WriteOptions {
        row_group_size: 1_000,
        ..Default::default()
    };
    let raw_rows: Vec<Vec<Cell>> = (0..rows)
        .map(|i| {
            vec![
                Cell::Int(i as i64),
                Cell::from(format!("{{\"a\": {i}, \"pad\": \"{}\"}}", "x".repeat(64))),
            ]
        })
        .collect();
    let cache_rows: Vec<Vec<Cell>> = (0..rows).map(|i| vec![Cell::from(i.to_string())]).collect();
    raw.append_file(&raw_rows, opts, 1).unwrap();
    cache.append_file(&cache_rows, opts, 1).unwrap();
    (raw, cache, root)
}

fn out_schema() -> Schema {
    Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("va", ColumnType::Utf8),
    ])
    .unwrap()
}

fn time_scan(provider: &dyn ScanProvider, reps: usize) -> (f64, usize) {
    let mut rows = 0;
    let start = std::time::Instant::now();
    for _ in 0..reps {
        let mut m = ExecMetrics::default();
        rows = provider.scan(&mut m).expect("scan").len();
    }
    (start.elapsed().as_secs_f64() / reps as f64, rows)
}

fn main() {
    let mut report = Report::new(
        "ablation_combiner",
        "Stitching strategies: synchronized readers vs row-number join (seconds per scan)",
    );
    report.note("Paper §I: joining raw and cache tables is the costly naive alternative to the value combiner.");

    let mut combiner_s = Series::new("combiner");
    let mut join_s = Series::new("row-number join");
    let mut combiner_sel = Series::new("combiner+SARG");
    let mut join_sel = Series::new("join (SARG n/a)");

    for rows in [10_000usize, 50_000] {
        let (raw, cache, root) = build_tables(rows);
        let reps = 5;
        let combiner = CombinedScanProvider::new(
            Some(raw.clone()),
            vec![0],
            cache.clone(),
            vec![0],
            out_schema(),
            None,
            None,
        );
        let join =
            JoinStitchProvider::new(raw.clone(), vec![0], cache.clone(), vec![0], out_schema());
        let (tc, nc) = time_scan(&combiner, reps);
        let (tj, nj) = time_scan(&join, reps);
        assert_eq!(nc, nj, "strategies must agree");
        println!(
            "{rows} rows: combiner {tc:.5}s, join {tj:.5}s ({:.2}x)",
            tj / tc
        );
        combiner_s.push(format!("{rows} rows"), tc);
        join_s.push(format!("{rows} rows"), tj);

        // Selective case: SARG keeps ~10% of row groups. Only the combiner
        // benefits — the join baseline cannot skip, because positional
        // alignment is exactly what it does not rely on.
        let sarg =
            SearchArgument::new().with(0, CmpOp::GtEq, Cell::Int((rows as f64 * 0.9) as i64));
        let combiner_sarg = CombinedScanProvider::new(
            Some(raw.clone()),
            vec![0],
            cache.clone(),
            vec![0],
            out_schema(),
            None,
            Some(sarg),
        );
        let (ts, _) = time_scan(&combiner_sarg, reps);
        println!(
            "{rows} rows selective: combiner+SARG {ts:.5}s vs join {tj:.5}s ({:.1}x)",
            tj / ts
        );
        combiner_sel.push(format!("{rows} rows"), ts);
        join_sel.push(format!("{rows} rows"), tj);
        std::fs::remove_dir_all(&root).ok();
    }
    report.add(combiner_s);
    report.add(join_s);
    report.add(combiner_sel);
    report.add(join_sel);
    report.emit();
}
