//! fig_serving — multi-client serving throughput over one shared warehouse.
//!
//! Replays the ten-query Table II workload through the TCP query server at
//! 1, 4, and 8 concurrent clients, with the committed Maxson cache tables
//! installed through the same atomic epoch swap the midnight cycle uses.
//! Reports sustained QPS (client-side wall clock) and p99 latency
//! (server-side histogram) per client count, and checks two serving
//! claims on every run:
//!
//! * every served result is byte-identical to serial in-process
//!   execution of the same SQL (the differential suite's invariant,
//!   re-proved under benchmark load), and
//! * the shared Norc footer metadata cache carries the concurrency —
//!   hits must be positive and dominate misses, since N clients over one
//!   warehouse should fetch each footer once, not N times.
//!
//! `MAXSON_BENCH_FAST=1` shrinks the replay for smoke runs.

use std::sync::Arc;
use std::time::Instant;

use maxson::rewriter::MaxsonScanRewriter;
use maxson::CacheRegistry;
use maxson_bench::{bench_root, load_tables, Report, Series};
use maxson_engine::Session;
use maxson_server::{Client, Server, ServerConfig};
use maxson_storage::Catalog;

const CLIENT_COUNTS: [usize; 3] = [1, 4, 8];

fn main() {
    let fast = std::env::var("MAXSON_BENCH_FAST").as_deref() == Ok("1");
    let rounds = if fast { 2 } else { 12 };

    let queries = load_tables();

    // Install the committed Maxson cache tables through the same atomic
    // epoch swap the midnight cycle uses: serving measures the system as
    // deployed, cache and all, without rebuilding cache files in CI. The
    // rewriter's catalog shares the warehouse's footer cache, so every
    // cache-table read lands in the process-wide LRU.
    let template = Session::open(bench_root()).expect("open warehouse");
    let rewriter_catalog =
        Catalog::open_with_cache(bench_root(), Arc::clone(template.catalog().meta_cache()))
            .expect("open rewriter catalog");
    let registry = CacheRegistry::load(&rewriter_catalog).expect("load cache registry");
    let rewriter = MaxsonScanRewriter::with_registry(rewriter_catalog, registry);
    template
        .swap_warehouse_epoch(Some(Box::new(rewriter)))
        .expect("install rewriter");

    // Serial references: the single-session truth every served result
    // must reproduce byte for byte.
    let reference: Arc<Vec<(String, String)>> = Arc::new(
        queries
            .iter()
            .map(|q| {
                let rendered = template
                    .execute(&q.sql)
                    .unwrap_or_else(|e| panic!("{} failed serially: {e}", q.name))
                    .to_display_string();
                (q.sql.clone(), rendered)
            })
            .collect(),
    );

    let mut report = Report::new(
        "fig_serving",
        "multi-client serving: sustained QPS and p99 latency over one shared warehouse",
    );
    report.note(format!(
        "{} workload queries x {rounds} rounds per client, Maxson cache installed",
        queries.len()
    ));
    report.note("every served result verified byte-identical to serial execution");

    let mut qps_series = Series::new("QPS");
    let mut p99_series = Series::new("p99 (ms)");
    let mut hits_series = Series::new("meta cache hits");

    for &clients in &CLIENT_COUNTS {
        let mut server = Server::serve(template.clone(), "127.0.0.1:0", ServerConfig::default())
            .expect("start server");
        let addr = server.addr();

        // Footer-fetch delta over the serving phase: the reference pass
        // already warmed the shared cache, so sustained serving must be
        // all hits and zero misses.
        let meta_before = template.catalog().meta_cache().stats();
        let started = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let reference = reference.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut executed = 0u64;
                    for round in 0..rounds {
                        for k in 0..reference.len() {
                            // Rotate per client and round so different
                            // query shapes overlap in flight.
                            let (sql, expected) = &reference[(c + round + k) % reference.len()];
                            let got = client.query(sql).expect("served query").to_display_string();
                            assert_eq!(
                                &got, expected,
                                "served result diverged from serial execution"
                            );
                            executed += 1;
                        }
                    }
                    executed
                })
            })
            .collect();
        let total: u64 = workers.into_iter().map(|w| w.join().expect("client")).sum();
        let wall = started.elapsed().as_secs_f64().max(f64::EPSILON);

        let stats = Client::connect(addr)
            .expect("connect for stats")
            .stats()
            .expect("stats");
        assert_eq!(stats.queries_ok, total, "server lost queries: {stats:?}");
        assert_eq!(stats.queries_err, 0, "server errored: {stats:?}");
        let meta_after = template.catalog().meta_cache().stats();
        let hits = meta_after.hits - meta_before.hits;
        let misses = meta_after.misses - meta_before.misses;
        assert!(
            hits > 0 && misses == 0,
            "shared metadata cache not carrying the load: \
             {hits} hits / {misses} misses over the serving phase"
        );
        server.stop();

        let qps = total as f64 / wall;
        let p99_ms = stats.p99_us as f64 / 1e3;
        let label = format!("{clients} clients");
        qps_series.push(label.clone(), qps);
        p99_series.push(label.clone(), p99_ms);
        hits_series.push(label.clone(), hits as f64);
        println!(
            "{label}: {total} queries in {wall:.3}s -> {qps:.0} QPS, p99 {p99_ms:.2} ms, \
             meta hits {hits} / misses {misses} over the phase"
        );
    }

    report.add(qps_series);
    report.add(p99_series);
    report.add(hits_series);
    report.emit();
}
