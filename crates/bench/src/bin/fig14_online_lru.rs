//! Fig. 14 — Maxson's prediction-based cache vs online caching with LRU.
//!
//! The paper replays the workload in trace order under both cache
//! managers at the same budget, reporting total execution time and cache
//! hit ratio. The LRU baseline is worse on both: first accesses always
//! miss (and spatially-correlated queries arrive close together, before
//! the cache can help), and LRU evicts values other users still need.
//! Maxson pre-parses before any query runs, so the first query already
//! hits.

use maxson_bench::workload::{lru_session, session_for, workload_history};
use maxson_bench::{load_tables, run_query, Report, Series, SystemKind};

fn main() {
    let queries = load_tables();
    let history = workload_history(&queries, 14);
    let replay_days = 3u32;

    let mut report = Report::new(
        "fig14",
        "Prediction-based (Maxson) vs online LRU cache management",
    );
    report.note("Paper: Maxson has the higher hit ratio and the lower total time; LRU pays the first-access parse and suffers cross-user evictions.");

    // --- Maxson: cache populated before the replay starts. -------------
    let (maxson_session, cached) = session_for(SystemKind::Maxson, &queries, u64::MAX, true);
    let cached = cached.len();
    let mut maxson_total = 0.0;
    let mut maxson_hits = 0u64;
    let mut maxson_accesses = 0u64;
    for _day in 0..replay_days {
        for q in &queries {
            let (t, m) = run_query(&maxson_session, &q.sql);
            maxson_total += t.as_secs_f64();
            maxson_accesses += m.parse_calls.min(1) + u64::from(m.cache_hits > 0);
            if m.cache_hits > 0 {
                maxson_hits += 1;
            }
        }
    }
    // Path-level hit ratio: cached paths / total paths touched per replayed
    // query.
    let total_paths: usize = queries.iter().map(|q| q.paths.len()).sum();
    let maxson_hit_ratio = cached as f64 / total_paths as f64;
    println!(
        "Maxson: total {maxson_total:.3}s, {cached}/{total_paths} paths cached (hit ratio {maxson_hit_ratio:.2})"
    );
    let _ = (maxson_hits, maxson_accesses);

    // --- Online LRU at a comparable budget. -----------------------------
    let lru = lru_session(u64::MAX);
    let mut lru_total = 0.0;
    let mut lru_hits = 0u64;
    let mut lru_misses = 0u64;
    let mut lru_evictions = 0u64;
    let mut lru_resident = 0u64;
    for _day in 0..replay_days {
        for q in &queries {
            let (t, m) = run_query(&lru, &q.sql);
            lru_total += t.as_secs_f64();
            // Exact per-query LRU telemetry from the provider's metrics.
            lru_hits += m.lru_hits;
            lru_misses += m.lru_misses;
            lru_evictions += m.lru_evictions;
            lru_resident = lru_resident.max(m.lru_resident_bytes);
        }
    }
    let lru_hit_ratio = lru_hits as f64 / (lru_hits + lru_misses).max(1) as f64;
    println!(
        "Online LRU: total {lru_total:.3}s, hit ratio {lru_hit_ratio:.2} \
         ({lru_hits} hits / {lru_misses} misses, {lru_evictions} evictions, \
         {lru_resident} resident bytes peak)"
    );

    let _ = history;
    let mut time_series = Series::new("total time (s)");
    time_series.push("Maxson", maxson_total);
    time_series.push("Online LRU", lru_total);
    let mut hit_series = Series::new("hit ratio");
    hit_series.push("Maxson", maxson_hit_ratio);
    hit_series.push("Online LRU", lru_hit_ratio);
    report.add(time_series);
    report.add(hit_series);
    report.note(&format!(
        "LRU telemetry: {lru_hits} hits, {lru_misses} misses, {lru_evictions} evictions, peak resident {lru_resident} bytes"
    ));
    report.emit();
}
