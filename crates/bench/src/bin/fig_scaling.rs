//! fig_scaling — split-parallel execution scaling for a parse-heavy query.
//!
//! Runs the workload's most parse-heavy query (Q2, ten JSONPaths per row)
//! at 1/2/4/8 engine threads and reports wall seconds plus speedup vs the
//! 1-thread serial reference, for both the plain engine and the
//! Maxson-rewritten path (where the raw and cache readers for a split stay
//! paired inside one task). Rows are asserted byte-identical to the serial
//! run at every thread count before any timing is trusted.
//!
//! Speedup is hardware-conditional: on a 1-core machine the extra threads
//! time-slice one core and the curve is flat. The report notes the
//! available core count so readers can interpret the numbers.

use std::time::Duration;

use maxson_bench::workload::session_for;
use maxson_bench::{load_tables, run_query_avg, Report, Series, SystemKind};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let queries = load_tables();
    // Q2 stitches ten cached paths with uncached ones and parses the most
    // JSON per row, so the scan+parse phase dominates and split-level
    // parallelism has the most room to help.
    let q2 = queries
        .iter()
        .find(|q| q.name == "Q2")
        .expect("Q2 in workload");

    let fast = std::env::var("MAXSON_BENCH_FAST").as_deref() == Ok("1");
    let runs = if fast { 1 } else { 5 };

    let mut report = Report::new(
        "fig_scaling",
        "split-parallel scaling: Q2 wall seconds and speedup vs 1 thread",
    );
    report.note("speedup beyond the available core count is time-slicing, not parallelism");
    report.note("rows verified byte-identical to the 1-thread serial run at every thread count");

    let (maxson_session, _cached) = session_for(SystemKind::Maxson, &queries, u64::MAX, true);
    let systems: [(&str, maxson_engine::Session); 2] = [
        ("Spark", maxson_bench::fresh_session()),
        ("Maxson", maxson_session),
    ];

    for (name, mut session) in systems {
        let mut wall_series = Series::new(format!("{name} wall (s)"));
        let mut speedup_series = Series::new(format!("{name} speedup"));
        let mut serial_rows: Option<String> = None;
        let mut serial_wall: Option<Duration> = None;

        for threads in THREAD_COUNTS {
            session.set_threads(Some(threads));
            let rows = session
                .execute(&q2.sql)
                .expect("Q2 executes")
                .to_display_string();
            match &serial_rows {
                None => serial_rows = Some(rows),
                Some(reference) => assert_eq!(
                    &rows, reference,
                    "{name} Q2 rows diverge from serial at {threads} threads"
                ),
            }

            let (wall, metrics) = run_query_avg(&session, &q2.sql, runs);
            let base = *serial_wall.get_or_insert(wall);
            let speedup = base.as_secs_f64() / wall.as_secs_f64().max(f64::EPSILON);
            let label = format!("{threads} thread{}", if threads == 1 { "" } else { "s" });
            wall_series.push(label.clone(), wall.as_secs_f64());
            speedup_series.push(label, speedup);
            println!(
                "{name} Q2 @ {threads} threads: {:.4}s (speedup {:.2}x, threads_used={}, tasks={})",
                wall.as_secs_f64(),
                speedup,
                metrics.threads_used,
                metrics.par_tasks
            );
        }
        report.add(wall_series);
        report.add(speedup_series);
    }

    report.emit();
}
