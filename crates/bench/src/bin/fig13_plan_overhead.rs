//! Fig. 13 — plan-generation overhead of Maxson vs plain SparkSQL.
//!
//! The paper records the time to generate the physical plan with and
//! without Maxson's rewrite for Q1..Q10 at the 300 GB budget: Maxson adds
//! ~0.4 s on average, growing with the number of JSONPaths in the query,
//! and negligible against total execution time.

use maxson_bench::workload::session_for;
use maxson_bench::{load_tables, Report, Series, SystemKind};

fn main() {
    let queries = load_tables();
    let spark = maxson_bench::fresh_session();
    // 300 GB in the paper = enough for most MPJPs; we use 75% of the full
    // footprint equivalent by just using an unconstrained cache here, since
    // plan overhead depends on lookups, not on cache size.
    let (maxson, _) = session_for(SystemKind::Maxson, &queries, u64::MAX, true);

    let mut report = Report::new("fig13", "Plan generation time per query (milliseconds)");
    report.note("Paper: Maxson planning is ~0.4s slower than SparkSQL on their JVM stack; more JSONPaths => more overhead; negligible vs execution time.");

    let mut spark_s = Series::new("Spark");
    let mut maxson_s = Series::new("Maxson");
    let mut overhead_s = Series::new("overhead");
    let reps = 20u32;
    for q in &queries {
        let mut spark_total = 0.0f64;
        let mut maxson_total = 0.0f64;
        for _ in 0..reps {
            let (_, d, _) = spark.plan(&q.sql).expect("spark plan");
            spark_total += d.as_secs_f64();
            let (_, d, _) = maxson.plan(&q.sql).expect("maxson plan");
            maxson_total += d.as_secs_f64();
        }
        let spark_ms = spark_total / f64::from(reps) * 1e3;
        let maxson_ms = maxson_total / f64::from(reps) * 1e3;
        println!(
            "{}: Spark {spark_ms:.3} ms, Maxson {maxson_ms:.3} ms ({} paths)",
            q.name,
            q.paths.len()
        );
        spark_s.push(q.name.clone(), spark_ms);
        maxson_s.push(q.name.clone(), maxson_ms);
        overhead_s.push(q.name.clone(), maxson_ms - spark_ms);
    }
    report.add(spark_s);
    report.add(maxson_s);
    report.add(overhead_s);
    // One traced end-to-end run per system: shows where planning sits
    // relative to the execution operators it precedes.
    for (label, session) in [("Spark", &spark), ("Maxson", &maxson)] {
        session.set_trace_enabled(true);
        let _ = session.execute(&queries[0].sql);
        report.note_top_operators(label, session.tracer());
        session.set_trace_enabled(false);
    }
    report.emit();
}
