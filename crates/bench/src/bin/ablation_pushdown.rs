//! Ablation — Algorithm 3's shared predicate pushdown on/off.
//!
//! Fig. 12 shows Maxson's input-size reduction comes from pushing JSON
//! predicates into the cache table and sharing the row-group skips with the
//! raw reader. This ablation runs the two predicate-bearing workload
//! queries (Q2, Q9) with pushdown enabled and disabled, everything else
//! equal.

use maxson::mpjp::PredictorKind;
use maxson::{MaxsonPipeline, PipelineConfig};
use maxson_bench::workload::workload_history;
use maxson_bench::{load_tables, run_query_avg, Report, Series};

fn main() {
    let queries = load_tables();
    let picks: Vec<_> = queries
        .iter()
        .filter(|q| q.name == "Q2" || q.name == "Q9")
        .collect();

    let mut report = Report::new(
        "ablation_pushdown",
        "Pushdown on/off: time (s), input bytes, and row groups read",
    );
    report.note("Pushdown should cut input bytes and row groups sharply for selective JSON predicates, with no change in results.");

    let mut time_on = Series::new("time on");
    let mut time_off = Series::new("time off");
    let mut bytes_on = Series::new("bytes on");
    let mut bytes_off = Series::new("bytes off");

    for enable_pushdown in [true, false] {
        let mut session = maxson_bench::fresh_session();
        let history = workload_history(&queries, 14);
        let mut pipeline = MaxsonPipeline::new(
            maxson_bench::bench_root(),
            PipelineConfig {
                predictor: PredictorKind::RepeatYesterday,
                enable_pushdown,
                ..Default::default()
            },
        );
        pipeline.observe(history.iter());
        pipeline
            .run_midnight_cycle(&mut session, &history, 13, 100)
            .expect("cycle");
        for q in &picks {
            let (t, m) = run_query_avg(&session, &q.sql, 3);
            println!(
                "{} pushdown={enable_pushdown}: {:.4}s, {} bytes, rg {}/{} read",
                q.name,
                t.as_secs_f64(),
                m.bytes_read,
                m.row_groups_read,
                m.row_groups_read + m.row_groups_skipped
            );
            if enable_pushdown {
                time_on.push(q.name.clone(), t.as_secs_f64());
                bytes_on.push(q.name.clone(), m.bytes_read as f64);
            } else {
                time_off.push(q.name.clone(), t.as_secs_f64());
                bytes_off.push(q.name.clone(), m.bytes_read as f64);
            }
        }
    }
    report.add(time_on);
    report.add(time_off);
    report.add(bytes_on);
    report.add(bytes_off);
    report.emit();
}
