//! Table III — predictor model comparison.
//!
//! The paper compares LR, SVM, MLPClassifier, and LSTM+CRF on predicting
//! next-day MPJPs from the trace statistics, tuning each for the best F1.
//! The static models have precision near 1.0 but low recall (0.40–0.69);
//! LSTM+CRF reaches F1 ≈ 0.95. We train all models from scratch on the
//! synthesized trace and report the same three columns.

use maxson_bench::{Report, Series};
use maxson_predictor::crf::LstmCrf;
use maxson_predictor::features::FeatureConfig;
use maxson_predictor::linear::{LinearConfig, LinearModel, Loss};
use maxson_predictor::lstm::LstmConfig;
use maxson_predictor::mlp::{MlpClassifier, MlpConfig};
use maxson_predictor::{build_dataset, evaluate, MpjpModel};
use maxson_trace::{JsonPathCollector, SynthConfig, TraceSynthesizer};

fn main() {
    let trace = TraceSynthesizer::new(SynthConfig::default()).generate();
    let mut collector = JsonPathCollector::new();
    collector.observe_all(trace.queries.iter());
    let dataset = build_dataset(&collector, FeatureConfig::default());
    let split = dataset.split();
    println!(
        "dataset: {} examples ({} train / {} val / {} test), {:.1}% positive",
        dataset.examples.len(),
        split.train.len(),
        split.validation.len(),
        split.test.len(),
        dataset.positive_fraction() * 100.0
    );

    let mut report = Report::new(
        "table03",
        "Predictor comparison (precision / recall / F1 on test split)",
    );
    report.note("Paper: LR P=1.0 R=0.397 F1=0.568; SVM P=1.0 R=0.559 F1=0.717; MLP P=0.994 R=0.694 F1=0.817; LSTM+CRF P=0.985 R=0.912 F1=0.947.");

    let mut precision = Series::new("precision");
    let mut recall = Series::new("recall");
    let mut f1 = Series::new("f1");

    let mut record = |name: &str, m: maxson_predictor::Metrics| {
        println!(
            "{name:>14}: P={:.3} R={:.3} F1={:.3}",
            m.precision(),
            m.recall(),
            m.f1()
        );
        precision.push(name, m.precision());
        recall.push(name, m.recall());
        f1.push(name, m.f1());
    };

    let lr = LinearModel::train(&split.train, Loss::Logistic, LinearConfig::default());
    record(lr.name(), evaluate(&lr, &split.test));

    let svm = LinearModel::train(&split.train, Loss::Hinge, LinearConfig::default());
    record(svm.name(), evaluate(&svm, &split.test));

    let mlp = MlpClassifier::train(&split.train, MlpConfig::default());
    record(mlp.name(), evaluate(&mlp, &split.test));

    let hybrid = LstmCrf::train(&split.train, LstmConfig::default());
    record(hybrid.name(), evaluate(&hybrid, &split.test));

    report.add(precision);
    report.add(recall);
    report.add(f1);
    report.emit();
}
