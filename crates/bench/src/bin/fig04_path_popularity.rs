//! Fig. 4 — Number of queries that contain each JSONPath.
//!
//! The paper assigns each JSONPath a unique id and plots how many queries
//! touch it: a power law where 89% of parse traffic lands on 27% of paths,
//! averaging ~14 queries per path. We regenerate the series from the
//! synthesized trace and report the same summary statistics.

use maxson_bench::{Report, Series};
use maxson_trace::analysis::{queries_per_path, redundant_parse_fraction, traffic_share_of_top};
use maxson_trace::{SynthConfig, TraceSynthesizer};

fn main() {
    let trace = TraceSynthesizer::new(SynthConfig::default()).generate();
    let (counts, mean) = queries_per_path(&trace.queries);
    let share = traffic_share_of_top(&trace.queries, 0.27);
    let redundant = redundant_parse_fraction(&trace.queries);

    let mut report = Report::new("fig04", "Number of queries containing each JSONPath");
    report.note("Paper: power-law popularity; 89% of parsing traffic on 27% of JSONPaths; ~14 queries per path on average; 89% of parse traffic is repetitive.");
    report.note(format!(
        "Measured: {} paths, mean {:.1} queries/path, top-27% traffic share {:.1}%, same-day redundant parse fraction {:.1}%",
        counts.len(),
        mean,
        share * 100.0,
        redundant * 100.0
    ));
    // Emit a decimated rank series (every k-th rank) to keep output small.
    let mut series = Series::new("queries per path");
    let step = (counts.len() / 50).max(1);
    for (rank, count) in counts.iter().enumerate().step_by(step) {
        series.push(format!("path#{rank}"), *count as f64);
    }
    report.add(series);
    report.emit();
}
