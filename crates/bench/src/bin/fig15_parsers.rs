//! Fig. 15 — per-query runtime of Spark+Jackson, Spark+Mison, Spark+Tape,
//! Maxson, Maxson+Mison, and Maxson+Tape over Q1..Q10.
//!
//! The paper's findings: Mison's structural index speeds up the no-cache
//! baseline substantially (especially schema-stable Q6); for queries whose
//! paths are cached, Maxson beats even Mison because it pays no per-record
//! projection cost at all; and Mison complements Maxson on uncached paths
//! (Maxson+Mison is the best of both). The tape series adds the On-Demand
//! parser class: same document counts as Jackson (one parse per doc), but
//! skip markers hop unqueried subtrees — the `nodes_skipped` counter must
//! be positive on the selective workload queries, and zero for the other
//! parsers.

use maxson::mpjp::{predict_mpjps, PredictorKind, TrainedPredictor};
use maxson::score::score_candidates;
use maxson_bench::workload::{cached_path_count, session_for, workload_history};
use maxson_bench::{load_tables, run_query_avg, Report, Series, SystemKind};
use maxson_predictor::features::FeatureConfig;
use maxson_trace::JsonPathCollector;

fn main() {
    let queries = load_tables();
    let fast = std::env::var("MAXSON_BENCH_FAST").as_deref() == Ok("1");
    let runs = if fast { 1 } else { 2 };

    // Match the paper's setting: the 300 GB limit caches most-but-not-all
    // MPJPs. We use 75% of the full parsed-value footprint.
    let budget: u64 = {
        let session = maxson_bench::fresh_session();
        let history = workload_history(&queries, 14);
        let mut collector = JsonPathCollector::new();
        collector.observe_all(history.iter());
        let features = FeatureConfig::default();
        let predictor =
            TrainedPredictor::train(PredictorKind::RepeatYesterday, &collector, &features);
        let candidates = predict_mpjps(&collector, &predictor, 13, &features);
        let ranked =
            score_candidates(&session.catalog(), &candidates, &history).expect("score candidates");
        let full: u64 = ranked.iter().map(|s| s.estimated_bytes).sum();
        (full as f64 * 0.75) as u64
    };

    let mut report = Report::new("fig15", "Per-query runtime under six systems (seconds)");
    report.note("Paper: cache limit 300GB; Maxson beats Mison on cached queries (Q2,Q3,Q4,Q6,Q7,Q9,Q10); Mison complements Maxson on uncached paths.");

    // Per-query docs_parsed of the Jackson runs (uncached and cached),
    // the baselines the tape runs must reproduce exactly: laziness changes
    // what a parse materializes, never how many documents are parsed.
    let mut docs_baseline: std::collections::BTreeMap<(bool, String), u64> =
        std::collections::BTreeMap::new();

    for system in [
        SystemKind::SparkJackson,
        SystemKind::SparkMison,
        SystemKind::SparkTape,
        SystemKind::Maxson,
        SystemKind::MaxsonMison,
        SystemKind::MaxsonTape,
    ] {
        let (session, cached) = session_for(system, &queries, budget, true);
        let mut series = Series::new(system.name());
        for q in &queries {
            let (t, m) = run_query_avg(&session, &q.sql, runs);
            series.push(q.name.clone(), t.as_secs_f64());
            // Smoke invariant of shared-parse accounting: a document can
            // never be parsed more often than evaluations requested it.
            assert!(
                m.docs_parsed <= m.parse_calls,
                "{} {}: docs_parsed {} > parse_calls {}",
                system.name(),
                q.name,
                m.docs_parsed,
                m.parse_calls
            );
            // Smoke invariants of the tape parser: skip markers fire on
            // the selective workload queries without changing how many
            // documents are parsed, and only the tape parser skips.
            let key = (system.uses_cache(), q.name.clone());
            match system.parser() {
                maxson_engine::session::JsonParserKind::Jackson => {
                    docs_baseline.insert(key, m.docs_parsed);
                }
                maxson_engine::session::JsonParserKind::Mison => {
                    assert_eq!(
                        m.nodes_skipped,
                        0,
                        "{} {}: non-tape parser charged nodes_skipped",
                        system.name(),
                        q.name
                    );
                }
                maxson_engine::session::JsonParserKind::Tape => {
                    let baseline = docs_baseline.get(&key).copied().expect("Jackson ran first");
                    assert_eq!(
                        m.docs_parsed,
                        baseline,
                        "{} {}: tape parsed a different doc count than Jackson",
                        system.name(),
                        q.name
                    );
                    if m.docs_parsed > 0 {
                        assert!(
                            m.nodes_skipped > 0,
                            "{} {}: selective query over parsed docs skipped no nodes",
                            system.name(),
                            q.name
                        );
                    }
                }
            }
            report.note_parse_dedup(&format!("{} {}", system.name(), q.name), &m);
            if q.name == "Q6" {
                println!(
                    "{} {}: {:.4}s (parse {:.4}s, cache hits {}, dedup {:.2}x)",
                    system.name(),
                    q.name,
                    t.as_secs_f64(),
                    m.parse.as_secs_f64(),
                    m.cache_hits,
                    m.parse_dedup_factor()
                );
            }
        }
        if system.uses_cache() {
            let fully: Vec<&str> = queries
                .iter()
                .filter(|q| cached_path_count(q, &cached) == q.paths.len())
                .map(|q| q.name.as_str())
                .collect();
            println!(
                "{}: {} paths cached; fully-cached queries: {:?}",
                system.name(),
                cached.len(),
                fully
            );
        }
        // One traced (untimed) replay of Q1 for the per-operator rollup.
        session.set_trace_enabled(true);
        let _ = session.execute(&queries[0].sql);
        report.note_top_operators(system.name(), session.tracer());
        session.set_trace_enabled(false);
        report.add(series);
    }
    report.emit();
}
