//! Ablation — full nightly repopulation vs incremental refresh.
//!
//! The paper repopulates the whole cache every midnight. Because the
//! warehouse is append-only (§II-B), a cacher can instead parse only the
//! part files that arrived since the last cycle. This ablation grows a
//! table day by day and compares the cost of the two strategies, plus the
//! (identical) query results they serve.

use maxson::cacher::JsonPathCacher;
use maxson::mpjp::MpjpCandidate;
use maxson::score::score_candidates;
use maxson_bench::{Report, Series};
use maxson_storage::file::WriteOptions;
use maxson_storage::{Catalog, Cell, ColumnType, Field, Schema};
use maxson_trace::model::RecurrenceClass;
use maxson_trace::{JsonPathLocation, QueryRecord};

fn rows(from: i64, n: i64) -> Vec<Vec<Cell>> {
    (from..from + n)
        .map(|i| {
            vec![
                Cell::Int(i),
                Cell::from(format!(
                    r#"{{"a": {i}, "b": "value-{i}", "c": [1,2,3], "pad": "{}"}}"#,
                    "x".repeat(64)
                )),
            ]
        })
        .collect()
}

fn loc(path: &str) -> JsonPathLocation {
    JsonPathLocation::new("db", "t", "payload", path)
}

fn main() {
    let rows_per_day: i64 = 5_000;
    let days = 5u32;

    let mut report = Report::new(
        "ablation_incremental",
        "Cache population cost per day: full repopulation vs incremental refresh (seconds)",
    );
    report.note("With an append-only warehouse, incremental refresh parses only the new files; full repopulation re-parses the whole table every night.");

    let mut full_series = Series::new("full repopulation");
    let mut incr_series = Series::new("incremental refresh");

    for strategy in ["full", "incremental"] {
        let root = std::env::temp_dir().join(format!(
            "maxson-ablation-incr-{}-{strategy}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let mut catalog = Catalog::open(&root).expect("open warehouse");
        let schema = Schema::new(vec![
            Field::new("id", ColumnType::Int64),
            Field::new("payload", ColumnType::Utf8),
        ])
        .expect("schema");
        catalog.create_table("db", "t", schema, 0).expect("create");
        let history = vec![QueryRecord {
            query_id: 0,
            user_id: 0,
            day: 0,
            hour: 0,
            recurrence: RecurrenceClass::Daily,
            paths: vec![loc("$.a"), loc("$.b")],
        }];
        let cacher = JsonPathCacher::new(u64::MAX);
        let mut registry = None;
        for day in 0..days {
            // Daily data load.
            catalog
                .table_mut("db", "t")
                .expect("table")
                .append_file(
                    &rows(i64::from(day) * rows_per_day, rows_per_day),
                    WriteOptions {
                        row_group_size: 1_000,
                        ..Default::default()
                    },
                    u64::from(day) * 10 + 5,
                )
                .expect("append");
            // Midnight population.
            let start = std::time::Instant::now();
            match registry.as_mut().filter(|_| strategy == "incremental") {
                Some(reg) => {
                    let r = cacher
                        .refresh_incremental(&mut catalog, reg, u64::from(day) * 10 + 9)
                        .expect("refresh");
                    assert!(r.needs_full.is_empty());
                }
                None => {
                    let cands = vec![
                        MpjpCandidate {
                            location: loc("$.a"),
                            target_day: day + 1,
                        },
                        MpjpCandidate {
                            location: loc("$.b"),
                            target_day: day + 1,
                        },
                    ];
                    let ranked = score_candidates(&catalog, &cands, &history).expect("score");
                    let (reg, _) = cacher
                        .populate(&mut catalog, &ranked, u64::from(day) * 10 + 9)
                        .expect("populate");
                    registry = Some(reg);
                }
            }
            let took = start.elapsed().as_secs_f64();
            println!(
                "{strategy:>12} day {day}: population {took:.4}s ({} rows in table)",
                (i64::from(day) + 1) * rows_per_day
            );
            if strategy == "full" {
                full_series.push(format!("day {day}"), took);
            } else {
                incr_series.push(format!("day {day}"), took);
            }
        }
        std::fs::remove_dir_all(&root).ok();
    }
    report.add(full_series);
    report.add(incr_series);
    report.emit();
}
