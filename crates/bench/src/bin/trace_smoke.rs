//! CI smoke test for the tracing spine: tracing must be an observer, not a
//! participant.
//!
//! Runs a fig12 query (Q9) twice on identically-built Maxson sessions —
//! once untraced, once with `Session::set_trace_path` (the programmatic
//! equivalent of `MAXSON_TRACE`) — and fails (non-zero exit) if:
//!
//! * the traced run's rows or counters drift from the untraced run's,
//! * the exported file is not well-formed Chrome trace-event JSON,
//! * the trace holds no spans, no thread-name tracks, or no nesting.

use maxson_bench::workload::session_for;
use maxson_bench::{load_tables, SystemKind};
use maxson_engine::ExecMetrics;
use maxson_json::JsonValue;

fn counter_pairs(m: &ExecMetrics) -> Vec<(&'static str, u64)> {
    vec![
        ("rows_scanned", m.rows_scanned),
        ("bytes_read", m.bytes_read),
        ("parse_calls", m.parse_calls),
        ("docs_parsed", m.docs_parsed),
        ("cache_hits", m.cache_hits),
        ("row_groups_skipped", m.row_groups_skipped),
        ("row_groups_read", m.row_groups_read),
        ("prefilter_dropped", m.prefilter_dropped),
        ("lru_hits", m.lru_hits),
        ("lru_misses", m.lru_misses),
        ("lru_evictions", m.lru_evictions),
    ]
}

fn main() {
    let queries = load_tables();
    // Q9 is one of fig12's two queries and returns a non-trivial result
    // set, so the row-identity check is meaningful.
    let q = queries.iter().find(|q| q.name == "Q9").expect("Q9 exists");

    // Untraced baseline.
    let (untraced_session, _) = session_for(SystemKind::Maxson, &queries, u64::MAX, true);
    let untraced = untraced_session.execute(&q.sql).expect("untraced run");

    // Traced run on a fresh session built the same way.
    let (mut traced_session, _) = session_for(SystemKind::Maxson, &queries, u64::MAX, true);
    let trace_path = maxson_bench::report::results_dir().join("trace_smoke.json");
    std::fs::create_dir_all(maxson_bench::report::results_dir()).expect("results dir");
    traced_session.set_trace_path(Some(trace_path.clone()));
    let traced = traced_session.execute(&q.sql).expect("traced run");

    // 1. Zero-cost contract: identical rows and identical counters.
    assert_eq!(
        untraced.rows, traced.rows,
        "tracing changed query output rows"
    );
    for ((name, a), (_, b)) in counter_pairs(&untraced.metrics)
        .iter()
        .zip(counter_pairs(&traced.metrics).iter())
    {
        assert_eq!(a, b, "tracing changed counter {name}: {a} vs {b}");
    }

    // 2. The export is well-formed Chrome trace JSON.
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let doc = maxson_json::parse(&text).expect("trace file is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");

    let ph = |e: &JsonValue| e.get("ph").and_then(JsonValue::as_str).map(str::to_string);
    let spans: Vec<&JsonValue> = events
        .iter()
        .filter(|e| ph(e).as_deref() == Some("X"))
        .collect();
    assert!(!spans.is_empty(), "trace holds no spans");
    let thread_tracks = events
        .iter()
        .filter(|e| {
            ph(e).as_deref() == Some("M")
                && e.get("name").and_then(JsonValue::as_str) == Some("thread_name")
        })
        .count();
    assert!(thread_tracks > 0, "trace holds no thread-name tracks");
    let nested = spans
        .iter()
        .filter(|e| e.get("args").and_then(|a| a.get("parent")).is_some())
        .count();
    assert!(nested > 0, "trace holds no nested spans");
    let query_spans = spans
        .iter()
        .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("query"))
        .count();
    assert!(query_spans > 0, "no query-root span in trace");

    println!(
        "trace_smoke OK: {} rows identical, {} counters identical, \
         {} spans ({} nested) across {} thread tracks -> {}",
        traced.rows.len(),
        counter_pairs(&traced.metrics).len(),
        spans.len(),
        nested,
        thread_tracks,
        trace_path.display()
    );
}
