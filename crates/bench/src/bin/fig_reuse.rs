//! fig_reuse — cross-query reuse cache under three request mixes.
//!
//! Serves the Table II warehouse through the TCP server with the reuse
//! cache enabled and replays three mixes against it:
//!
//! * **repeat-heavy** — the ten workload queries looped verbatim; after
//!   the first round every request is a full-result hit. Reports the hit
//!   rate and hit-served p50/p99 against the cold p50/p99, and asserts
//!   the headline claim: hit p50 at least 5x below cold p50.
//! * **zipf** — requests drawn from a Zipf-skewed pool of literal
//!   variants, four concurrent clients; the popular head hits, the long
//!   tail misses, and every response is byte-identical to serial
//!   cache-off execution.
//! * **no-repeat** — an adversarial stream where no query ever repeats:
//!   the hit rate must be exactly zero and resident bytes must stay
//!   within budget while the cache churns.
//!
//! After the mixes, an epoch swap runs mid-stream and the replay
//! re-proves zero stale hits: the first post-swap round re-executes
//! everything (no hit served from a pre-swap entry), then repeats hit
//! again. `MAXSON_BENCH_FAST=1` shrinks the replay for smoke runs.

use std::sync::Arc;
use std::time::Instant;

use maxson_bench::{bench_root, load_tables, Report, Series};
use maxson_engine::Session;
use maxson_server::{Client, Server, ServerConfig};

const BUDGET_MB: u64 = 32;

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Deterministic LCG so the Zipf mix replays identically run to run.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Sample an index in `0..n` under a Zipf(s=1.2) distribution.
fn zipf(rng: &mut Lcg, n: usize, harmonics: &[f64]) -> usize {
    let total = harmonics[n - 1];
    let u = (rng.next() % 1_000_000) as f64 / 1_000_000.0 * total;
    harmonics.partition_point(|&h| h < u).min(n - 1)
}

fn main() {
    let fast = std::env::var("MAXSON_BENCH_FAST").as_deref() == Ok("1");
    let rounds = if fast { 3 } else { 8 };
    let zipf_requests = if fast { 60 } else { 400 };
    let no_repeat_requests = if fast { 40 } else { 200 };

    let queries = load_tables();

    // Serial cache-off references: the truth every served response must
    // reproduce byte for byte. A dedicated session keeps its own
    // warehouse instance, so the server's cache never touches these runs.
    let mut reference_session = Session::open(bench_root()).expect("open reference session");
    reference_session.set_result_cache(None);
    let reference: Arc<Vec<(String, String)>> = Arc::new(
        queries
            .iter()
            .map(|q| {
                let rendered = reference_session
                    .execute(&q.sql)
                    .unwrap_or_else(|e| panic!("{} failed serially: {e}", q.name))
                    .to_display_string();
                (q.sql.clone(), rendered)
            })
            .collect(),
    );

    let template = Session::open(bench_root()).expect("open warehouse");
    let mut server = Server::serve(
        template.clone(),
        "127.0.0.1:0",
        ServerConfig {
            threads: None,
            permits: None,
            result_cache_mb: Some(BUDGET_MB),
        },
    )
    .expect("start server");
    let addr = server.addr();

    let mut report = Report::new(
        "fig_reuse",
        "cross-query reuse cache: hit rate and hit latency under three request mixes",
    );
    report.note(format!(
        "{} workload queries, {BUDGET_MB} MiB budget, {rounds} repeat rounds",
        queries.len()
    ));
    report.note("every served response verified byte-identical to serial cache-off execution");

    let mut rate_series = Series::new("hit rate");
    let mut p50_series = Series::new("p50 (us)");
    let mut p99_series = Series::new("p99 (us)");

    // ---- Mix 1: repeat-heavy -------------------------------------------
    let mut client = Client::connect(addr).expect("connect");
    let before = client.stats().expect("stats");
    let mut cold_us: Vec<f64> = Vec::new();
    let mut hit_us: Vec<f64> = Vec::new();
    for round in 0..rounds {
        for (sql, expected) in reference.iter() {
            let started = Instant::now();
            let got = client.query(sql).expect("served query");
            let wall_us = started.elapsed().as_secs_f64() * 1e6;
            assert_eq!(
                &got.to_display_string(),
                expected,
                "repeat-heavy response diverged from serial execution"
            );
            if round == 0 {
                cold_us.push(wall_us);
            } else {
                hit_us.push(wall_us);
            }
        }
    }
    let after = client.stats().expect("stats");
    let total = (rounds * reference.len()) as f64;
    let hits = (after.reuse_hits - before.reuse_hits) as f64;
    let repeat_rate = hits / total;
    assert!(
        hits >= ((rounds - 1) * reference.len()) as f64,
        "every repeat after the first round must be a hit: {hits} of {total}"
    );
    cold_us.sort_by(f64::total_cmp);
    hit_us.sort_by(f64::total_cmp);
    let (cold_p50, cold_p99) = (percentile(&cold_us, 0.5), percentile(&cold_us, 0.99));
    let (hit_p50, hit_p99) = (percentile(&hit_us, 0.5), percentile(&hit_us, 0.99));
    assert!(
        hit_p50 * 5.0 <= cold_p50,
        "headline claim failed: hit p50 {hit_p50:.0}us not 5x below cold p50 {cold_p50:.0}us"
    );
    rate_series.push("repeat-heavy", repeat_rate);
    p50_series.push("cold", cold_p50);
    p50_series.push("repeat-heavy hit", hit_p50);
    p99_series.push("cold", cold_p99);
    p99_series.push("repeat-heavy hit", hit_p99);
    println!(
        "repeat-heavy: hit rate {:.2}, cold p50/p99 {cold_p50:.0}/{cold_p99:.0} us, \
         hit p50/p99 {hit_p50:.0}/{hit_p99:.0} us ({:.1}x p50 speedup)",
        repeat_rate,
        cold_p50 / hit_p50.max(f64::EPSILON)
    );

    // ---- Mix 2: Zipf-skewed literal variants ---------------------------
    // 20 variants of one extraction query, popularity ~ 1/rank^1.2.
    let variant_sql: Vec<String> = (0..20)
        .map(|i| {
            format!(
                "select get_json_object(payload, '$.f0') as f0 from mydb.q1 \
                 where get_json_object(payload, '$.f0') > {}",
                i * 40
            )
        })
        .collect();
    let variant_ref: Arc<Vec<(String, String)>> = Arc::new(
        variant_sql
            .iter()
            .map(|sql| {
                let rendered = reference_session
                    .execute(sql)
                    .expect("variant reference")
                    .to_display_string();
                (sql.clone(), rendered)
            })
            .collect(),
    );
    let harmonics: Vec<f64> = {
        let mut acc = 0.0;
        (1..=variant_ref.len())
            .map(|rank| {
                acc += 1.0 / (rank as f64).powf(1.2);
                acc
            })
            .collect()
    };
    let before = client.stats().expect("stats");
    let workers: Vec<_> = (0..4u64)
        .map(|c| {
            let variant_ref = Arc::clone(&variant_ref);
            let harmonics = harmonics.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut rng = Lcg(0x5EED_0000 + c);
                for _ in 0..zipf_requests / 4 {
                    let pick = zipf(&mut rng, variant_ref.len(), &harmonics);
                    let (sql, expected) = &variant_ref[pick];
                    let got = client.query(sql).expect("zipf query");
                    assert_eq!(
                        &got.to_display_string(),
                        expected,
                        "zipf response diverged from serial execution"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("zipf client");
    }
    let after = client.stats().expect("stats");
    let issued = (zipf_requests / 4 * 4) as f64;
    let zipf_rate = (after.reuse_hits - before.reuse_hits) as f64 / issued;
    assert!(zipf_rate > 0.0, "a skewed mix must hit on its popular head");
    rate_series.push("zipf", zipf_rate);
    println!("zipf: hit rate {zipf_rate:.2} over {issued:.0} requests (20 variants, s=1.2)");

    // ---- Mix 3: adversarial no-repeat ----------------------------------
    let before = client.stats().expect("stats");
    for i in 0..no_repeat_requests {
        // A fresh literal every time: nothing can ever hit.
        let sql = format!(
            "select get_json_object(payload, '$.f0') as f0 from mydb.q1 \
             where get_json_object(payload, '$.f0') > {}",
            10_000 + i
        );
        client.query(&sql).expect("no-repeat query");
    }
    let after = client.stats().expect("stats");
    assert_eq!(
        after.reuse_hits, before.reuse_hits,
        "a never-repeating stream must not hit"
    );
    assert!(
        after.reuse_bytes <= BUDGET_MB * 1024 * 1024,
        "resident bytes {} exceed the {BUDGET_MB} MiB budget under churn",
        after.reuse_bytes
    );
    rate_series.push("no-repeat", 0.0);
    println!(
        "no-repeat: 0 hits over {no_repeat_requests} requests, {} bytes resident (budget {})",
        after.reuse_bytes,
        BUDGET_MB * 1024 * 1024
    );

    // ---- Epoch swap: zero stale hits -----------------------------------
    // Swap the warehouse epoch on the admin handle (the midnight cycle's
    // install step). Every pre-swap entry is now unreachable: the first
    // post-swap round must re-execute all ten queries — zero hits — and
    // only then do repeats hit again.
    let before = client.stats().expect("stats");
    template.swap_warehouse_epoch(None).expect("epoch swap");
    for (sql, expected) in reference.iter() {
        let got = client.query(sql).expect("post-swap query");
        assert_eq!(
            &got.to_display_string(),
            expected,
            "post-swap response diverged from serial execution"
        );
    }
    let mid = client.stats().expect("stats");
    assert_eq!(
        mid.reuse_hits, before.reuse_hits,
        "stale reuse entries served across the epoch swap"
    );
    for (sql, _) in reference.iter() {
        client.query(sql).expect("post-swap repeat");
    }
    let after = client.stats().expect("stats");
    assert!(
        after.reuse_hits >= mid.reuse_hits + reference.len() as u64,
        "post-swap repeats must hit the refilled cache"
    );
    println!(
        "epoch swap: 0 stale hits, {} fresh hits on the second post-swap round",
        after.reuse_hits - mid.reuse_hits
    );
    report.note("epoch swap mid-stream: zero stale hits, repeats re-hit after refill");

    server.stop();

    report.add(rate_series);
    report.add(p50_series);
    report.add(p99_series);
    report.emit();
}
