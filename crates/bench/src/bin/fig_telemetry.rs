//! Telemetry report: the streaming workload sketch vs exact counts.
//!
//! Replays the ten-query workload with a deliberate skew (Q1 hottest,
//! Q10 coldest) against a fresh metric registry, then compares the
//! space-saving sketch's per-(table, JSONPath) estimates with exact
//! counts accumulated from every query's `ExecMetrics.path_extracts`.
//!
//! The sketch holds 128 slots — far more than this workload's distinct
//! paths — so every estimate must be *exact* and the hot-path ranking
//! must equal the true ranking. Under slot pressure the space-saving
//! guarantee only bounds the error; this binary asserts the lossless
//! regime so CI notices if the sketch's accounting drifts.

use std::collections::BTreeMap;
use std::sync::Arc;

use maxson_bench::{fresh_session, load_tables, Report, Series};
use maxson_engine::Registry;

fn main() {
    let queries = load_tables();
    let mut session = fresh_session();
    let registry = Arc::new(Registry::new());
    session.set_metrics_registry(Arc::clone(&registry));

    // Skewed replay: query i runs (N - i) times, so earlier queries'
    // paths dominate the sketch.
    let mut exact: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut replays = 0usize;
    for (qi, q) in queries.iter().enumerate() {
        let runs = queries.len() - qi;
        for _ in 0..runs {
            let result = session.execute(&q.sql).expect("query executes");
            replays += 1;
            let table = format!("{}.{}", q.database, q.table);
            for (path, count) in &result.metrics.path_extracts {
                *exact.entry((table.clone(), path.clone())).or_insert(0) += count;
            }
        }
    }

    // True ranking, ordered exactly as the sketch orders ties.
    let mut truth: Vec<((String, String), u64)> = exact.into_iter().collect();
    truth.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let hot = registry.hot_paths(truth.len());
    assert_eq!(
        hot.len(),
        truth.len(),
        "sketch tracks {} paths, workload touched {}",
        hot.len(),
        truth.len()
    );
    for (i, ((table, path, estimate), ((t_table, t_path), t_count))) in
        hot.iter().zip(truth.iter()).enumerate()
    {
        assert_eq!(
            (table, path),
            (t_table, t_path),
            "rank {i} diverges: sketch has {table} {path}, exact has {t_table} {t_path}"
        );
        assert_eq!(
            estimate, t_count,
            "estimate for {table} {path} drifted (sketch {estimate}, exact {t_count})"
        );
    }

    let mut report = Report::new("fig_telemetry", "Workload sketch vs exact path counts");
    let mut sketch_series = Series::new("sketch estimate");
    let mut exact_series = Series::new("exact count");
    for ((table, path, estimate), (_, t_count)) in hot.iter().zip(truth.iter()).take(12) {
        let label = format!("{table} {path}");
        sketch_series.push(label.clone(), *estimate as f64);
        exact_series.push(label, *t_count as f64);
    }
    report.add(sketch_series);
    report.add(exact_series);
    report.note(format!(
        "{} replays over {} queries; {} distinct (table, path) keys; \
         sketch ranking and estimates match exact counts at every rank",
        replays,
        queries.len(),
        truth.len()
    ));
    report.emit();
}
