//! CI smoke test for the always-on telemetry subsystem.
//!
//! Replays the golden ten-query workload against a fresh metric registry
//! with a query log installed, and fails (non-zero exit) unless:
//!
//! * every registry work counter settles exactly equal to the sum of the
//!   per-query `ExecMetrics` the engine returned (telemetry loses and
//!   invents nothing),
//! * the Prometheus text exposition is well-formed — every line is a
//!   `# TYPE` comment or a `name{labels} value` sample with a finite
//!   numeric value,
//! * a second identical replay on a second fresh registry produces a
//!   byte-identical exposition once wall-time series are filtered out,
//! * the query log holds exactly one parseable JSONL line per query, with
//!   counter sums matching, and plan fingerprints stable across replays,
//! * the TCP server round-trips: STATS carries the kernel/skip counters
//!   and the METRICS opcode returns an exposition naming the server's own
//!   series.

use std::collections::BTreeMap;
use std::sync::Arc;

use maxson_bench::{bench_root, fresh_session, load_tables};
use maxson_engine::{ExecMetrics, Registry, Session};
use maxson_server::{Client, Server, ServerConfig};

/// Run every workload query once against a fresh registry; returns the
/// registry, the summed metrics, and per-query fingerprints from the log.
fn replay(log_path: &std::path::Path) -> (Arc<Registry>, ExecMetrics, Vec<String>, usize) {
    std::fs::remove_file(log_path).ok();
    let queries = load_tables();
    let mut session = fresh_session();
    let registry = Arc::new(Registry::new());
    session.set_metrics_registry(Arc::clone(&registry));
    session
        .set_query_log(Some(log_path.to_path_buf()))
        .expect("query log opens");

    let mut summed = ExecMetrics::default();
    for q in &queries {
        let result = session.execute(&q.sql).expect("query executes");
        summed.absorb(&result.metrics);
    }
    drop(session); // flush ordering is moot (writes are line-atomic), but be tidy

    let text = std::fs::read_to_string(log_path).expect("query log written");
    let mut fingerprints = Vec::new();
    for line in text.lines() {
        let v = maxson_json::parse(line).expect("query-log line is valid JSON");
        fingerprints.push(
            v.get("fingerprint")
                .and_then(|f| f.as_str())
                .expect("fingerprint field")
                .to_string(),
        );
    }
    (registry, summed, fingerprints, queries.len())
}

/// Every exposition line must be a comment or `series value`.
fn validate_exposition(text: &str) {
    assert!(!text.is_empty(), "empty exposition");
    for line in text.lines() {
        if line.starts_with("# TYPE ") {
            let mut parts = line.split_whitespace();
            assert_eq!(parts.clone().count(), 4, "malformed TYPE comment: {line:?}");
            let kind = parts.nth(3).unwrap();
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown metric type in {line:?}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(!series.is_empty(), "sample without a series name: {line:?}");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("sample value does not parse as f64: {line:?}"));
        assert!(value.is_finite(), "non-finite sample value: {line:?}");
        if let Some(open) = series.find('{') {
            assert!(series.ends_with('}'), "unclosed label set: {line:?}");
            assert!(open > 0, "label set without a name: {line:?}");
        }
    }
}

/// Drop wall-time series (values vary run to run); keep all counts.
fn stable_lines(exposition: &str) -> String {
    exposition
        .lines()
        .filter(|l| !l.contains("seconds"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let results_dir = maxson_bench::report::results_dir();
    std::fs::create_dir_all(&results_dir).expect("results dir");
    let log_path = results_dir.join("telemetry_smoke.qlog.jsonl");

    // 1. Replay and settle: registry counters == summed ExecMetrics.
    let (registry, summed, fingerprints, n_queries) = replay(&log_path);
    let counter = |name: &str| {
        registry
            .counter_value(name, &[])
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    let expectations = [
        ("maxson_rows_scanned_total", summed.rows_scanned),
        ("maxson_bytes_read_total", summed.bytes_read),
        ("maxson_parse_calls_total", summed.parse_calls),
        ("maxson_docs_parsed_total", summed.docs_parsed),
        ("maxson_cache_hits_total", summed.cache_hits),
        ("maxson_lru_hits_total", summed.lru_hits),
        ("maxson_lru_misses_total", summed.lru_misses),
        ("maxson_nodes_skipped_total", summed.nodes_skipped),
        ("maxson_bitmap_builds_total", summed.bitmap_builds),
        ("maxson_bitmap_bytes_total", summed.bitmap_bytes),
    ];
    for (name, want) in expectations {
        let got = counter(name);
        assert_eq!(
            got, want,
            "{name} settled at {got}, ExecMetrics sum is {want}"
        );
    }
    assert_eq!(
        registry.counter_value("maxson_queries_total", &[("parser", "jackson")]),
        Some(n_queries as u64),
        "per-parser query counter"
    );

    // 2. The exposition is well-formed.
    let exposition = registry.expose();
    validate_exposition(&exposition);
    assert!(exposition.contains("# TYPE maxson_queries_total counter"));
    assert!(exposition.contains("maxson_hot_path_extracts{"));

    // 3. Query log: one line per query, counters match, fingerprints
    //    deterministic across a second replay.
    assert_eq!(
        fingerprints.len(),
        n_queries,
        "query log holds one line per query"
    );
    let log_text = std::fs::read_to_string(&log_path).expect("query log");
    let mut logged_parse_calls = 0u64;
    for line in log_text.lines() {
        let v = maxson_json::parse(line).expect("log line parses");
        logged_parse_calls += v
            .get("counters")
            .and_then(|c| c.get("parse_calls"))
            .and_then(|x| x.as_i64())
            .expect("counters.parse_calls") as u64;
        assert_eq!(v.get("slow").and_then(|s| s.as_bool()), Some(false));
    }
    assert_eq!(
        logged_parse_calls, summed.parse_calls,
        "logged counter sums"
    );

    let (registry2, _, fingerprints2, _) = replay(&log_path);
    assert_eq!(fingerprints, fingerprints2, "plan fingerprints are stable");
    assert_eq!(
        stable_lines(&exposition),
        stable_lines(&registry2.expose()),
        "exposition (wall-time series filtered) is deterministic"
    );

    // 4. Server round-trip: STATS carries kernel counters, METRICS opcode
    //    returns the registry exposition.
    let server =
        Server::start(bench_root(), "127.0.0.1:0", ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    let queries = load_tables();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for q in queries.iter().take(3) {
        let result = client.query(&q.sql).expect("served query");
        *counts.entry(q.name.clone()).or_insert(0) += result.rows.len();
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.queries_ok, 3);
    assert!(!stats.simd_kernel.is_empty(), "STATS names the kernel tier");
    let served = client.metrics().expect("metrics exposition");
    validate_exposition(&served);
    assert!(
        served.contains("maxson_server_queries_total{status=\"ok\"} 3"),
        "server query counter in exposition:\n{served}"
    );
    assert!(served.contains("# TYPE maxson_sched_acquires_total counter"));
    drop(client);
    drop(server);

    println!(
        "telemetry_smoke OK: {n_queries} queries settled {} counters exactly, \
         {} exposition bytes validated, {} log lines, server STATS kernel={} \
         nodes_skipped={} ({} served rows)",
        expectations.len(),
        exposition.len(),
        fingerprints.len(),
        stats.simd_kernel,
        stats.nodes_skipped,
        counts.values().sum::<usize>(),
    );
    let _ = Session::open(bench_root()).expect("warehouse still opens");
}
