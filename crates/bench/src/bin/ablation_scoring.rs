//! Ablation — which factor of `Score = A·R·O` does the work?
//!
//! Runs the Fig. 11 budget sweep with each scoring variant: the full
//! product, each factor alone, and random order. The paper motivates all
//! three factors (§IV-B); this ablation quantifies their individual
//! contribution under tight budgets.

use maxson::mpjp::{predict_mpjps, PredictorKind, TrainedPredictor};
use maxson::score::score_candidates;
use maxson::{MaxsonPipeline, PipelineConfig, ScoringStrategy};
use maxson_bench::workload::workload_history;
use maxson_bench::{load_tables, run_query_avg, Report, Series};
use maxson_predictor::features::FeatureConfig;
use maxson_trace::JsonPathCollector;

fn main() {
    let queries = load_tables();
    let runs = 2;

    // Full footprint, reused from fig11's method.
    let full_bytes: u64 = {
        let session = maxson_bench::fresh_session();
        let history = workload_history(&queries, 14);
        let mut collector = JsonPathCollector::new();
        collector.observe_all(history.iter());
        let features = FeatureConfig::default();
        let predictor =
            TrainedPredictor::train(PredictorKind::RepeatYesterday, &collector, &features);
        let candidates = predict_mpjps(&collector, &predictor, 13, &features);
        let catalog = session.catalog();
        score_candidates(&catalog, &candidates, &history)
            .expect("score")
            .iter()
            .map(|s| s.estimated_bytes)
            .sum()
    };

    let strategies = [
        ("full A*R*O", ScoringStrategy::Full),
        ("A only", ScoringStrategy::AccelerationOnly),
        ("R only", ScoringStrategy::RelevanceOnly),
        ("O only", ScoringStrategy::OccurrenceOnly),
        ("random", ScoringStrategy::Random),
    ];

    let mut report = Report::new(
        "ablation_scoring",
        "Total Q1..Q10 time per scoring variant (seconds)",
    );
    report.note("Expectation: the full product dominates or ties the single-factor variants at constrained budgets; random is worst.");

    for (label, strategy) in strategies {
        let mut series = Series::new(label);
        for (blabel, frac) in [("25%", 0.25f64), ("50%", 0.5)] {
            let budget = (full_bytes as f64 * frac).ceil() as u64 + 1;
            let mut session = maxson_bench::fresh_session();
            let history = workload_history(&queries, 14);
            let mut pipeline = MaxsonPipeline::new(
                maxson_bench::bench_root(),
                PipelineConfig {
                    budget_bytes: budget,
                    predictor: PredictorKind::RepeatYesterday,
                    scoring: strategy,
                    ..Default::default()
                },
            );
            pipeline.observe(history.iter());
            let cycle = pipeline
                .run_midnight_cycle(&mut session, &history, 13, 100)
                .expect("cycle");
            let mut total = 0.0;
            for q in &queries {
                let (t, _) = run_query_avg(&session, &q.sql, runs);
                total += t.as_secs_f64();
            }
            println!(
                "{label:>12} @ {blabel}: {total:.3}s ({} paths cached)",
                cycle.cache.cached.len()
            );
            series.push(blabel, total);
        }
        report.add(series);
    }
    report.emit();
}
