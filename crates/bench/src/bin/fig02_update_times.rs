//! Fig. 2 — Time of table updates during the day.
//!
//! The paper observes that warehouse table updates peak around mid-day and
//! are rare at midnight, which is what makes the midnight cache-population
//! window safe. We regenerate the histogram from the synthesized trace.

use maxson_bench::{Report, Series};
use maxson_trace::analysis::update_hour_histogram;
use maxson_trace::{SynthConfig, TraceSynthesizer};

fn main() {
    let trace = TraceSynthesizer::new(SynthConfig::default()).generate();
    let hist = update_hour_histogram(&trace.updates);
    let total: u64 = hist.iter().sum();

    let mut report = Report::new("fig02", "Time of table updates during the day");
    report.note("Paper: updates are most frequent around noon, rare at midnight.");
    let mut series = Series::new("update share");
    for (hour, count) in hist.iter().enumerate() {
        series.push(format!("{hour:02}:00"), *count as f64 / total as f64);
    }
    report.add(series);

    let peak = hist.iter().enumerate().max_by_key(|(_, v)| **v).unwrap().0;
    let midnight: u64 = hist[0..4].iter().sum();
    let midday: u64 = hist[10..16].iter().sum();
    report.note(format!(
        "Measured: peak hour {peak:02}:00; midday(10-15h) share {:.1}% vs midnight(0-3h) {:.1}%",
        100.0 * midday as f64 / total as f64,
        100.0 * midnight as f64 / total as f64
    ));
    report.emit();
}
