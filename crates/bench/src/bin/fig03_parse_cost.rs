//! Fig. 3 — Parsing vs. query-processing cost in three common query types.
//!
//! The paper runs three NoBench queries on SparkSQL and finds that JSON
//! parsing takes ≥80% of execution time for a simple SELECT (Q1), a
//! COUNT + GROUP BY (Q2), and a self-equijoin (Q3). We reproduce the
//! breakdown on our engine over NoBench-like data.

use maxson_bench::{Report, Series};
use maxson_datagen::NobenchGenerator;
use maxson_engine::session::Session;
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};

fn main() {
    let root = std::env::temp_dir().join(format!("maxson-fig03-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut session = Session::open(&root).expect("open session");

    // Load NoBench-like data.
    let rows_n: u64 = std::env::var("MAXSON_BENCH_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000);
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("doc", ColumnType::Utf8),
    ])
    .expect("schema");
    let mut catalog = session.catalog_mut();
    let table = catalog
        .create_table("nobench", "docs", schema, 0)
        .expect("create table");
    let mut generator = NobenchGenerator::new(99);
    let rows: Vec<Vec<Cell>> = (0..rows_n)
        .map(|i| vec![Cell::Int(i as i64), Cell::from(generator.record_text(i))])
        .collect();
    table
        .append_file(
            &rows,
            WriteOptions {
                row_group_size: 500,
                ..Default::default()
            },
            1,
        )
        .expect("append");
    drop(catalog);

    let queries = [
        (
            "Q1 (select)",
            "select get_json_object(doc, '$.str1') as s, get_json_object(doc, '$.num') as n \
             from nobench.docs",
        ),
        (
            "Q2 (count+group)",
            "select get_json_object(doc, '$.str2') as grp, count(*) as n from nobench.docs \
             group by get_json_object(doc, '$.str2')",
        ),
        (
            "Q3 (self-join)",
            "select get_json_object(a.doc, '$.str1') as s1, \
             get_json_object(b.doc, '$.nested_obj.str') as s2 \
             from nobench.docs a join nobench.docs b \
             on get_json_object(a.doc, '$.str2') = get_json_object(b.doc, '$.str2') \
             where a.id < 400 and b.id < 400",
        ),
    ];

    let mut report = Report::new(
        "fig03",
        "Parsing and query processing cost (share of runtime)",
    );
    report
        .note("Paper: parsing JSON accounts for >=80% of execution time in all three query types.");
    let mut parse_series = Series::new("parse share");
    let mut read_series = Series::new("read share");
    let mut compute_series = Series::new("compute share");
    for (name, sql) in queries {
        let result = session.execute(sql).expect("query");
        let total = result.metrics.total.as_secs_f64().max(1e-12);
        parse_series.push(name, result.metrics.parse.as_secs_f64() / total);
        read_series.push(name, result.metrics.read.as_secs_f64() / total);
        compute_series.push(name, result.metrics.compute().as_secs_f64() / total);
    }
    report.add(parse_series);
    report.add(read_series);
    report.add(compute_series);
    report.emit();
    let _ = std::fs::remove_dir_all(&root);
}
