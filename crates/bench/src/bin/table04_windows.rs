//! Table IV — LSTM+CRF vs Uni-LSTM across history window sizes.
//!
//! The paper tests 1-week, 2-week, and 1-month windows: LSTM+CRF's F1 is
//! always above Uni-LSTM's, and the 1-week window maximizes both. We run
//! the same sweep with our from-scratch models.

use maxson_bench::{Report, Series};
use maxson_predictor::crf::LstmCrf;
use maxson_predictor::features::FeatureConfig;
use maxson_predictor::lstm::{LstmConfig, LstmLabeler};
use maxson_predictor::{build_dataset, evaluate};
use maxson_trace::{JsonPathCollector, SynthConfig, TraceSynthesizer};

fn main() {
    let trace = TraceSynthesizer::new(SynthConfig {
        days: 90,
        ..Default::default()
    })
    .generate();
    let mut collector = JsonPathCollector::new();
    collector.observe_all(trace.queries.iter());

    let mut report = Report::new(
        "table04",
        "LSTM+CRF vs Uni-LSTM F1 across date window sizes",
    );
    report.note(
        "Paper: LSTM+CRF F1 >= LSTM F1 at every window; 1-week window is best (0.947 vs 0.921).",
    );

    let mut hybrid_f1 = Series::new("LSTM+CRF");
    let mut lstm_f1 = Series::new("LSTM");
    for (label, window) in [("1 week", 7usize), ("2 weeks", 14), ("1 month", 30)] {
        let dataset = build_dataset(
            &collector,
            FeatureConfig {
                window,
                ..Default::default()
            },
        );
        let split = dataset.split();
        let hybrid = LstmCrf::train(&split.train, LstmConfig::default());
        let hm = evaluate(&hybrid, &split.test);
        let lstm = LstmLabeler::train(&split.train, LstmConfig::default());
        let lm = evaluate(&lstm, &split.test);
        println!(
            "{label:>8}: LSTM+CRF P={:.3} R={:.3} F1={:.3} | LSTM P={:.3} R={:.3} F1={:.3}",
            hm.precision(),
            hm.recall(),
            hm.f1(),
            lm.precision(),
            lm.recall(),
            lm.f1()
        );
        hybrid_f1.push(label, hm.f1());
        lstm_f1.push(label, lm.f1());
    }
    report.add(hybrid_f1);
    report.add(lstm_f1);
    report.emit();
}
