//! Fig. 11 + Table V — query acceleration under cache-size budgets, and
//! the cached-JSONPath counts per query.
//!
//! The paper runs the ten Table II queries under 100/200/300/400 GB cache
//! budgets, choosing MPJPs either by the scoring function or at random,
//! plus a no-cache baseline. Findings: bigger budgets are faster; scoring
//! beats random at every constrained budget; at the full budget (400 GB,
//! which fits every MPJP) they converge. Table V lists how many of each
//! query's JSONPaths are cached at each budget.
//!
//! Our budgets are scaled to fractions of the total parsed-value footprint
//! (¼, ½, ¾, full), preserving the structure of the sweep.

use maxson::mpjp::{predict_mpjps, PredictorKind, TrainedPredictor};
use maxson::score::score_candidates;
use maxson_bench::workload::{session_for, workload_history};
use maxson_bench::{load_tables, run_query_avg, Report, Series};
use maxson_predictor::features::FeatureConfig;
use maxson_trace::JsonPathCollector;

fn main() {
    let queries = load_tables();
    let runs = 2;

    // Determine the full-cache footprint: run the scoring pass once with
    // everything admitted and add up the estimates.
    let full_bytes: u64 = {
        let session = maxson_bench::fresh_session();
        let history = workload_history(&queries, 14);
        let mut collector = JsonPathCollector::new();
        collector.observe_all(history.iter());
        let features = FeatureConfig::default();
        let predictor =
            TrainedPredictor::train(PredictorKind::RepeatYesterday, &collector, &features);
        let candidates = predict_mpjps(&collector, &predictor, 13, &features);
        let ranked =
            score_candidates(&session.catalog(), &candidates, &history).expect("score candidates");
        ranked.iter().map(|s| s.estimated_bytes).sum()
    };
    println!("full MPJP footprint: {full_bytes} bytes");

    let mut report = Report::new(
        "fig11",
        "Total execution time of Q1..Q10 under cache budgets (seconds)",
    );
    report.note("Paper: larger cache => faster; scoring beats random selection under every constrained budget; equal at the full (400GB) budget; no-cache is slowest. Budgets here are fractions of the full parsed-value footprint.");

    let mut no_cache = Series::new("no cache");
    let mut scored = Series::new("scoring");
    let mut random = Series::new("random");
    let mut tablev = Report::new("table05", "Cached JSONPath count per query per budget");
    tablev.note("Paper Table V: at the full budget every MPJP is cached; the scoring strategy caches whole queries' path sets first.");

    // Baseline: no cache.
    {
        let session = maxson_bench::fresh_session();
        let mut total = 0.0;
        for q in &queries {
            let (t, _) = run_query_avg(&session, &q.sql, runs);
            total += t.as_secs_f64();
        }
        for label in ["25%", "50%", "75%", "100%"] {
            no_cache.push(label, total);
        }
    }

    for (label, frac) in [("25%", 0.25f64), ("50%", 0.5), ("75%", 0.75), ("100%", 1.0)] {
        let budget = (full_bytes as f64 * frac).ceil() as u64 + 1;
        for use_scoring in [true, false] {
            let (session, cached) = session_for(
                maxson_bench::SystemKind::Maxson,
                &queries,
                budget,
                use_scoring,
            );
            let mut total = 0.0;
            let mut per_query_cached = Series::new(format!(
                "{}@{label}",
                if use_scoring { "scoring" } else { "random" }
            ));
            for q in &queries {
                let (t, _) = run_query_avg(&session, &q.sql, runs);
                total += t.as_secs_f64();
                let n = maxson_bench::workload::cached_path_count(q, &cached);
                per_query_cached.push(q.name.clone(), n as f64);
            }
            println!(
                "budget {label} ({budget} B), {}: total {:.3}s, {} paths cached",
                if use_scoring { "scoring" } else { "random" },
                total,
                cached.len()
            );
            if use_scoring {
                scored.push(label, total);
            } else {
                random.push(label, total);
            }
            tablev.add(per_query_cached);
        }
    }

    report.add(no_cache);
    report.add(scored);
    report.add(random);
    report.emit();
    tablev.emit();
}
