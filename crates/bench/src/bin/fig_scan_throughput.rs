//! fig_scan_throughput — scan-phase throughput on a dedicated wide table.
//!
//! The zero-copy scan work (shared-buffer string cells, batched column
//! reads with late materialization, allocation-free group keys) targets
//! the table-scan phase the paper's Read/Parse breakdown singles out.
//! This bench pins those wins to numbers: rows/s and MB/s for the three
//! scan shapes the pipeline optimizes —
//!
//! * `scan_only`    — full materialization of every row (id, date, payload),
//! * `scan_filter`  — a raw-column predicate keeping ~26% of rows; late
//!                    materialization means rejected rows never build
//!                    their wide payload cells,
//! * `scan_agg`     — grouped aggregation; the group key is hashed from
//!                    cell views instead of a per-row heap string.
//!
//! Unlike the figure benches it does NOT use the tiny shared warehouse:
//! per-query fixed costs (SQL parse, planning) would drown the per-row
//! scan cost it exists to measure. It builds its own deterministic
//! `scanbench` table (40k rows of ~300-byte distinct JSON payloads in
//! full mode; 4k in `MAXSON_BENCH_FAST=1`; override with
//! `MAXSON_BENCH_SCAN_ROWS`) under the shared warehouse root, reused
//! across runs. Runs at 1 engine thread so the numbers measure per-row
//! work, not parallelism (fig_scaling covers threads). Rows are
//! sanity-checked against expected shapes before any timing is trusted.
//!
//! Two breakdown series pin the structural-kernel and mmap work:
//!
//! * `bitmap MB/s` — raw structural-bitmap construction throughput per
//!   available kernel tier (scalar / swar / sse2 / avx2), measured over
//!   the scanbench payload documents outside the engine; the dispatched
//!   tier should beat scalar here or the dispatch is mistuned,
//! * `scan_only MB/s` — the scan_only shape with part files memory-mapped
//!   vs copied (`MAXSON_MMAP`), isolating the I/O-path change.

use maxson_bench::{bench_root, run_query_avg, Report, Series};
use maxson_engine::session::Session;
use maxson_json::kernels;
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};
use std::time::Instant;

struct Shape {
    label: &'static str,
    sql: String,
}

/// Build (or reuse) the dedicated scan table: `rows` rows over 8 files,
/// dates cycling over 31 days, ~300-byte payloads drawn from 256 distinct
/// documents — repeated event templates, the dictionary-encodable shape
/// where decode-once shared buffers pay (the old path re-allocated and
/// re-copied every row regardless of repetition).
fn scan_table(rows: usize) -> String {
    let name = format!("t{rows}");
    let mut session = Session::open(bench_root()).expect("open warehouse");
    if session.catalog_mut().table("scanbench", &name).is_ok() {
        return name;
    }
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("date", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .expect("schema");
    let mut catalog = session.catalog_mut();
    let table = catalog
        .create_table("scanbench", &name, schema, 0)
        .expect("create scanbench table");
    let files = 8usize;
    let per_file = rows.div_ceil(files);
    let mut written = 0usize;
    for _ in 0..files {
        let chunk = per_file.min(rows - written);
        if chunk == 0 {
            break;
        }
        let batch: Vec<Vec<Cell>> = (written..written + chunk)
            .map(|i| {
                let i = i as i64;
                let k = i % 256;
                vec![
                    Cell::Int(i),
                    Cell::Int(20190101 + i % 31),
                    Cell::Str(
                        format!(
                            r#"{{"event": {k}, "sku": "item-{k:06}", "qty": {}, "note": "template {k} of the scanbench wide payload column, padded to realistic document width {k:>80}"}}"#,
                            1 + k % 9,
                        )
                        .into(),
                    ),
                ]
            })
            .collect();
        table
            .append_file(&batch, WriteOptions::default(), 1)
            .expect("append scanbench file");
        written += chunk;
    }
    drop(catalog);
    name
}

fn main() {
    let fast = std::env::var("MAXSON_BENCH_FAST").as_deref() == Ok("1");
    let runs = if fast { 2 } else { 15 };
    let rows: usize = std::env::var("MAXSON_BENCH_SCAN_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if fast { 4_000 } else { 40_000 });

    let table = scan_table(rows);
    let shapes = [
        Shape {
            label: "scan_only",
            sql: format!("select id, date, payload from scanbench.{table}"),
        },
        Shape {
            label: "scan_filter",
            // Dates cycle over 31 days; keeping 8 of them passes ~26% of
            // rows, so late materialization has real rows to skip.
            sql: format!("select id, payload from scanbench.{table} where date <= 20190108"),
        },
        Shape {
            label: "scan_agg",
            sql: format!(
                "select date, count(*) as n, sum(id) as s from scanbench.{table} group by date"
            ),
        },
    ];

    let mut report = Report::new(
        "fig_scan_throughput",
        "scan-phase throughput: rows/s and MB/s for scan-only, scan+filter, scan+agg",
    );
    report.note(format!("dedicated scanbench table: {rows} rows, 8 files"));
    report.note("1 engine thread pinned: measures per-row scan cost, not parallelism");
    report.note(format!("{runs} timed runs per shape, mean wall reported"));

    let session = {
        let mut s = Session::open(bench_root()).expect("open session");
        s.set_threads(Some(1));
        s
    };

    let mut rows_series = Series::new("rows/s");
    let mut mb_series = Series::new("MB/s");
    let mut wall_series = Series::new("wall (s)");
    for shape in &shapes {
        let result = session.execute(&shape.sql).expect("shape executes");
        assert!(
            !result.rows.is_empty(),
            "{}: produced no rows — scanbench shape changed?",
            shape.label
        );
        let (wall, metrics) = run_query_avg(&session, &shape.sql, runs);
        let secs = wall.as_secs_f64().max(f64::EPSILON);
        let rows_per_s = metrics.rows_scanned as f64 / secs;
        let mb_per_s = metrics.bytes_read as f64 / 1e6 / secs;
        rows_series.push(shape.label, rows_per_s);
        mb_series.push(shape.label, mb_per_s);
        wall_series.push(shape.label, secs);
        println!(
            "{}: {:.0} rows/s, {:.2} MB/s, {:.5}s wall (rows_scanned={}, bytes_read={}, cells_out={})",
            shape.label,
            rows_per_s,
            mb_per_s,
            secs,
            metrics.rows_scanned,
            metrics.bytes_read,
            result.rows.len(),
        );
    }
    report.add(rows_series);
    report.add(mb_series);
    report.add(wall_series);

    // Structural-bitmap construction throughput per kernel tier, over the
    // same 256 distinct payload documents the table cycles through. Pure
    // kernel time — no engine, no I/O — so tiers are directly comparable.
    let payloads: Vec<String> = (0..256i64)
        .map(|k| {
            format!(
                r#"{{"event": {k}, "sku": "item-{k:06}", "qty": {}, "note": "template {k} of the scanbench wide payload column, padded to realistic document width {k:>80}"}}"#,
                1 + k % 9,
            )
        })
        .collect();
    let payload_bytes: usize = payloads.iter().map(String::len).sum();
    let reps = if fast { 50 } else { 500 };
    let mut kernel_series = Series::new("bitmap MB/s");
    for kernel in kernels::available() {
        // One untimed pass warms caches and the dispatch path.
        for p in &payloads {
            std::hint::black_box(kernels::build_bitmaps_with(kernel, p.as_bytes()));
        }
        let t0 = Instant::now();
        for _ in 0..reps {
            for p in &payloads {
                std::hint::black_box(kernels::build_bitmaps_with(kernel, p.as_bytes()));
            }
        }
        let secs = t0.elapsed().as_secs_f64().max(f64::EPSILON);
        let mb_per_s = (payload_bytes * reps) as f64 / 1e6 / secs;
        kernel_series.push(format!("bitmap_{}", kernel.name()), mb_per_s);
        println!(
            "bitmap_{}: {:.1} MB/s ({} reps x {} docs)",
            kernel.name(),
            mb_per_s,
            reps,
            payloads.len()
        );
    }
    report.add(kernel_series);
    report.note(format!(
        "dispatched kernel tier: {}",
        kernels::active().name()
    ));

    // scan_only with part files memory-mapped vs copied. MAXSON_MMAP is
    // read at each split open, so flipping it between runs is enough.
    let mut mmap_series = Series::new("scan_only MB/s");
    for (label, value) in [("mmap_on", "1"), ("mmap_off", "0")] {
        std::env::set_var("MAXSON_MMAP", value);
        let (wall, metrics) = run_query_avg(&session, &shapes[0].sql, runs);
        let secs = wall.as_secs_f64().max(f64::EPSILON);
        let mb_per_s = metrics.bytes_read as f64 / 1e6 / secs;
        mmap_series.push(label, mb_per_s);
        println!("{label}: {mb_per_s:.2} MB/s, {secs:.5}s wall");
    }
    std::env::remove_var("MAXSON_MMAP");
    report.add(mmap_series);

    report.emit();
}
