//! Shared workload setup for the benchmark binaries.
//!
//! All binaries share one generated warehouse under `bench-data/` (or
//! `$MAXSON_BENCH_DATA`), so the ten Table II tables are built once and
//! reused. Query timing helpers run a query under one of the compared
//! systems and report the end-to-end wall time plus phase metrics.

use std::path::PathBuf;
use std::time::Duration;

use maxson::mpjp::PredictorKind;
use maxson::{MaxsonPipeline, OnlineLruRewriter, PipelineConfig, ScoringStrategy};
use maxson_datagen::tables::{load_workload_tables, QuerySpec, WorkloadConfig};
use maxson_engine::session::{JsonParserKind, Session};
use maxson_engine::ExecMetrics;
use maxson_storage::Catalog;
use maxson_trace::model::RecurrenceClass;
use maxson_trace::{JsonPathLocation, QueryRecord};

/// The systems compared across the evaluation figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Unmodified engine with the DOM parser (SparkSQL + Jackson).
    SparkJackson,
    /// Unmodified engine with the structural-index parser (Spark + Mison).
    SparkMison,
    /// Unmodified engine with the on-demand tape parser.
    SparkTape,
    /// Maxson cache + DOM parser for misses.
    Maxson,
    /// Maxson cache + Mison parser for misses.
    MaxsonMison,
    /// Maxson cache + on-demand tape parser for misses.
    MaxsonTape,
}

impl SystemKind {
    /// Display name used in reports (matching the paper's legends).
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::SparkJackson => "Spark+Jackson",
            SystemKind::SparkMison => "Spark+Mison",
            SystemKind::SparkTape => "Spark+Tape",
            SystemKind::Maxson => "Maxson",
            SystemKind::MaxsonMison => "Maxson+Mison",
            SystemKind::MaxsonTape => "Maxson+Tape",
        }
    }

    /// Whether the Maxson cache is active.
    pub fn uses_cache(self) -> bool {
        matches!(
            self,
            SystemKind::Maxson | SystemKind::MaxsonMison | SystemKind::MaxsonTape
        )
    }

    /// Which JSON parser backs `get_json_object`.
    pub fn parser(self) -> JsonParserKind {
        match self {
            SystemKind::SparkJackson | SystemKind::Maxson => JsonParserKind::Jackson,
            SystemKind::SparkMison | SystemKind::MaxsonMison => JsonParserKind::Mison,
            SystemKind::SparkTape | SystemKind::MaxsonTape => JsonParserKind::Tape,
        }
    }
}

/// Root directory of the shared benchmark warehouse.
pub fn bench_root() -> PathBuf {
    std::env::var_os("MAXSON_BENCH_DATA")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("bench-data"))
}

/// Scale knob: rows per workload table (`MAXSON_BENCH_ROWS`, default 2000).
pub fn bench_rows() -> usize {
    std::env::var("MAXSON_BENCH_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000)
}

/// Build (or reuse) the ten Table II tables; returns the query specs.
pub fn load_tables() -> Vec<QuerySpec> {
    let mut catalog = Catalog::open(bench_root()).expect("open benchmark warehouse");
    let cfg = WorkloadConfig {
        rows_per_table: bench_rows(),
        ..Default::default()
    };
    load_workload_tables(&mut catalog, &cfg).expect("generate workload tables")
}

/// A fresh session over the shared warehouse.
pub fn fresh_session() -> Session {
    Session::open(bench_root()).expect("open session")
}

/// Execute `sql` once and return `(wall time, metrics)`.
pub fn run_query(session: &Session, sql: &str) -> (Duration, ExecMetrics) {
    let result = session.execute(sql).expect("query executes");
    (result.metrics.total, result.metrics.clone())
}

/// Execute `sql` `runs` times and return the mean wall time and the last
/// run's metrics (the paper averages 5 runs per query).
pub fn run_query_avg(session: &Session, sql: &str, runs: usize) -> (Duration, ExecMetrics) {
    let mut total = Duration::ZERO;
    let mut last = ExecMetrics::default();
    for _ in 0..runs.max(1) {
        let (t, m) = run_query(session, sql);
        total += t;
        last = m;
    }
    (total / runs.max(1) as u32, last)
}

/// Build the synthetic query history the predictor trains on: every query
/// of the ten-query workload recurs daily (plus a second daily submission
/// per query to make its paths MPJPs, mirroring the paper's recurring
/// users), over `days` days.
pub fn workload_history(queries: &[QuerySpec], days: u32) -> Vec<QueryRecord> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for day in 0..days {
        for (qi, q) in queries.iter().enumerate() {
            let paths: Vec<JsonPathLocation> = q
                .paths
                .iter()
                .map(|p| {
                    JsonPathLocation::new(q.database.clone(), q.table.clone(), "payload", p.clone())
                })
                .collect();
            // Two submissions per day (different "users" with spatially
            // correlated queries), so every path crosses the MPJP bar.
            for user in 0..2u32 {
                out.push(QueryRecord {
                    query_id: id,
                    user_id: qi as u32 * 2 + user,
                    day,
                    hour: 8 + user as u8,
                    recurrence: RecurrenceClass::Daily,
                    paths: paths.clone(),
                });
                id += 1;
            }
        }
    }
    out
}

/// Set up a session for `system` with a cache populated under
/// `budget_bytes` (ignored for the non-Maxson systems). Returns the
/// session plus the set of cached path locations.
pub fn session_for(
    system: SystemKind,
    queries: &[QuerySpec],
    budget_bytes: u64,
    use_scoring: bool,
) -> (Session, Vec<JsonPathLocation>) {
    let mut session = fresh_session();
    session.set_parser_kind(system.parser());
    if !system.uses_cache() {
        return (session, Vec::new());
    }
    let history = workload_history(queries, 14);
    let mut pipeline = MaxsonPipeline::new(
        bench_root(),
        PipelineConfig {
            budget_bytes,
            predictor: PredictorKind::RepeatYesterday,
            scoring: if use_scoring {
                ScoringStrategy::Full
            } else {
                ScoringStrategy::Random
            },
            ..Default::default()
        },
    );
    pipeline.observe(history.iter());
    let today = 13;
    let report = pipeline
        .run_midnight_cycle(&mut session, &history, today, 100)
        .expect("midnight cycle");
    (session, report.cache.cached)
}

/// How many of `query`'s JSONPaths are in the cached set.
pub fn cached_path_count(query: &QuerySpec, cached: &[JsonPathLocation]) -> usize {
    query
        .paths
        .iter()
        .filter(|p| {
            cached.iter().any(|c| {
                c.database == query.database
                    && c.table == query.table
                    && c.column == "payload"
                    && c.path == **p
            })
        })
        .count()
}

/// An online-LRU session (Fig. 14's baseline).
pub fn lru_session(budget_bytes: u64) -> Session {
    let mut session = fresh_session();
    let mut lru = OnlineLruRewriter::open(bench_root(), budget_bytes).expect("lru rewriter");
    lru.set_tracer(session.tracer().clone());
    session.set_scan_rewriter(Some(Box::new(lru)));
    session
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_kind_properties() {
        assert_eq!(SystemKind::SparkJackson.name(), "Spark+Jackson");
        assert!(!SystemKind::SparkJackson.uses_cache());
        assert!(SystemKind::MaxsonMison.uses_cache());
        assert_eq!(SystemKind::MaxsonMison.parser(), JsonParserKind::Mison);
        assert_eq!(SystemKind::Maxson.parser(), JsonParserKind::Jackson);
    }

    #[test]
    fn history_marks_all_paths_mpjp() {
        let queries = maxson_datagen::tables::build_queries("mydb");
        let history = workload_history(&queries, 3);
        let mut collector = maxson_trace::JsonPathCollector::new();
        collector.observe_all(history.iter());
        for loc in collector.locations() {
            assert!(collector.is_mpjp(loc, 1), "{loc} not MPJP");
        }
    }
}
