//! End-to-end query microbench on the testkit bench runner: the same JSON
//! query with and without the Maxson cache (the per-query view of Fig. 11).
//!
//! Run with `cargo bench --bench query`; set `MAXSON_BENCH_FAST=1` for a
//! quick smoke pass.

use maxson::mpjp::PredictorKind;
use maxson::{MaxsonPipeline, PipelineConfig};
use maxson_bench::report::{Report, Series};
use maxson_engine::session::Session;
use maxson_storage::file::WriteOptions;
use maxson_storage::{Cell, ColumnType, Field, Schema};
use maxson_testkit::bench::{bb, BenchRunner};
use maxson_trace::model::RecurrenceClass;
use maxson_trace::{JsonPathLocation, QueryRecord};
use std::path::PathBuf;

const SQL: &str = "select get_json_object(payload, '$.a') as a, \
                   get_json_object(payload, '$.b') as b from db.t \
                   where get_json_object(payload, '$.a') > 1500";

fn setup(cache: bool) -> (Session, PathBuf) {
    let root = std::env::temp_dir().join(format!("maxson-qbench-{}-{}", std::process::id(), cache));
    let _ = std::fs::remove_dir_all(&root);
    let mut session = Session::open(&root).unwrap();
    let schema = Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap();
    let mut catalog = session.catalog_mut();
    let table = catalog.create_table("db", "t", schema, 0).unwrap();
    let rows: Vec<Vec<Cell>> = (0..2_000i64)
        .map(|i| {
            vec![
                Cell::Int(i),
                Cell::from(format!(r#"{{"a": {i}, "b": "value-{i}", "c": [1,2,3]}}"#)),
            ]
        })
        .collect();
    table
        .append_file(
            &rows,
            WriteOptions {
                row_group_size: 200,
                ..Default::default()
            },
            1,
        )
        .unwrap();
    drop(catalog);
    if cache {
        let paths = ["$.a", "$.b"];
        let history: Vec<QueryRecord> = (0..14u32)
            .flat_map(|day| {
                (0..2u32).map(move |user| QueryRecord {
                    query_id: u64::from(day * 2 + user),
                    user_id: user,
                    day,
                    hour: 9,
                    recurrence: RecurrenceClass::Daily,
                    paths: paths
                        .iter()
                        .map(|p| JsonPathLocation::new("db", "t", "payload", *p))
                        .collect(),
                })
            })
            .collect();
        let mut pipeline = MaxsonPipeline::new(
            &root,
            PipelineConfig {
                predictor: PredictorKind::RepeatYesterday,
                ..Default::default()
            },
        );
        pipeline.observe(history.iter());
        pipeline
            .run_midnight_cycle(&mut session, &history, 13, 100)
            .unwrap();
    }
    (session, root)
}

fn main() {
    let runner = BenchRunner::from_env();
    let (plain, root_a) = setup(false);
    let (cached, root_b) = setup(true);

    let mut report = Report::new("bench-query", "JSON filter query with and without cache");
    report.note("median ns per query over a 2000-row table");
    let mut series = Series::new("json_filter_query");
    let stats = runner.run("json_filter_query/spark_jackson", || {
        bb(plain.execute(SQL).unwrap().rows.len())
    });
    series.push("spark_jackson", stats.median_ns);
    let stats = runner.run("json_filter_query/maxson_cached", || {
        bb(cached.execute(SQL).unwrap().rows.len())
    });
    series.push("maxson_cached", stats.median_ns);
    report.add(series);
    report.emit();

    std::fs::remove_dir_all(root_a).ok();
    std::fs::remove_dir_all(root_b).ok();
}
