//! Microbenches for the Norc storage substrate on the testkit bench
//! runner: write, full scan, and SARG-pruned scan.
//!
//! Run with `cargo bench --bench storage`; set `MAXSON_BENCH_FAST=1` for a
//! quick smoke pass.

use maxson_bench::report::{Report, Series};
use maxson_storage::file::{write_rows, NorcFile, WriteOptions};
use maxson_storage::{Cell, CmpOp, ColumnType, Field, Schema, SearchArgument};
use maxson_testkit::bench::{bb, BenchRunner};
use std::path::PathBuf;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap()
}

fn rows(n: usize) -> Vec<Vec<Cell>> {
    (0..n)
        .map(|i| {
            vec![
                Cell::Int(i as i64),
                Cell::from(format!("{{\"a\": {i}, \"b\": \"text-{i}\"}}")),
            ]
        })
        .collect()
}

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("maxson-bench");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}.norc", std::process::id()))
}

fn bench_write(runner: &BenchRunner) -> Series {
    let mut series = Series::new("norc_write");
    for &n in &[1_000usize, 10_000] {
        let data = rows(n);
        let path = temp_path(&format!("write-{n}"));
        let stats = runner.run(&format!("norc_write/{n}"), || {
            bb(write_rows(&path, schema(), &data, WriteOptions::default()).unwrap())
        });
        series.push(format!("{n} rows"), stats.median_ns);
        std::fs::remove_file(&path).ok();
    }
    series
}

fn bench_scan(runner: &BenchRunner) -> Series {
    let n = 10_000usize;
    let path = temp_path("scan");
    write_rows(
        &path,
        schema(),
        &rows(n),
        WriteOptions {
            row_group_size: 1_000,
            ..Default::default()
        },
    )
    .unwrap();
    let file = NorcFile::open(&path).unwrap();

    let mut series = Series::new("norc_scan");
    let stats = runner.run("norc_scan/full_scan", || {
        bb(file.read_columns(&[0, 1], None).unwrap())
    });
    series.push("full_scan", stats.median_ns);
    // id >= 9000 keeps only the last of ten row groups.
    let sarg = SearchArgument::new().with(0, CmpOp::GtEq, Cell::Int(9_000));
    let stats = runner.run("norc_scan/sarg_pruned_scan", || {
        let keep = sarg.keep_array(file.row_groups());
        bb(file.read_columns(&[0, 1], Some(&keep)).unwrap())
    });
    series.push("sarg_pruned_scan", stats.median_ns);
    std::fs::remove_file(&path).ok();
    series
}

fn main() {
    let runner = BenchRunner::from_env();
    let mut report = Report::new("bench-storage", "Norc write and scan microbenches");
    report.note("median ns per operation; pruned scan keeps 1 of 10 row groups");
    report.add(bench_write(&runner));
    report.add(bench_scan(&runner));
    report.emit();
}
