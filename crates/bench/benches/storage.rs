//! Criterion microbenches for the Norc storage substrate: write, full
//! scan, and SARG-pruned scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxson_storage::file::{write_rows, NorcFile, WriteOptions};
use maxson_storage::{Cell, CmpOp, ColumnType, Field, Schema, SearchArgument};
use std::hint::black_box;
use std::path::PathBuf;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("id", ColumnType::Int64),
        Field::new("payload", ColumnType::Utf8),
    ])
    .unwrap()
}

fn rows(n: usize) -> Vec<Vec<Cell>> {
    (0..n)
        .map(|i| {
            vec![
                Cell::Int(i as i64),
                Cell::Str(format!("{{\"a\": {i}, \"b\": \"text-{i}\"}}")),
            ]
        })
        .collect()
}

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("maxson-criterion");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}.norc", std::process::id()))
}

fn bench_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("norc_write");
    for &n in &[1_000usize, 10_000] {
        let data = rows(n);
        let path = temp_path(&format!("write-{n}"));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                black_box(
                    write_rows(&path, schema(), data, WriteOptions::default()).unwrap(),
                )
            });
        });
        std::fs::remove_file(&path).ok();
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let n = 10_000usize;
    let path = temp_path("scan");
    write_rows(
        &path,
        schema(),
        &rows(n),
        WriteOptions {
            row_group_size: 1_000,
            ..Default::default()
        },
    )
    .unwrap();
    let file = NorcFile::open(&path).unwrap();

    let mut group = c.benchmark_group("norc_scan");
    group.bench_function("full_scan", |b| {
        b.iter(|| black_box(file.read_columns(&[0, 1], None).unwrap()));
    });
    group.bench_function("sarg_pruned_scan", |b| {
        // id >= 9000 keeps only the last of ten row groups.
        let sarg = SearchArgument::new().with(0, CmpOp::GtEq, Cell::Int(9_000));
        b.iter(|| {
            let keep = sarg.keep_array(file.row_groups());
            black_box(file.read_columns(&[0, 1], Some(&keep)).unwrap())
        });
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_write, bench_scan
}
criterion_main!(benches);
