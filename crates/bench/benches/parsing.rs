//! Criterion microbenches: DOM parse vs Mison structural-index projection
//! vs a Maxson-style cached read, per record size.
//!
//! This is the microscopic view of Fig. 15: what one `get_json_object`
//! call costs under each strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxson_json::mison::MisonProjector;
use maxson_json::JsonPath;
use std::hint::black_box;

fn record_with_fields(n: usize) -> String {
    let mut s = String::from("{");
    for i in 0..n {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"field{i}\": \"value-{i}-0123456789\""));
    }
    s.push('}');
    s
}

fn bench_parsers(c: &mut Criterion) {
    let mut group = c.benchmark_group("get_json_object");
    for &fields in &[10usize, 50, 200] {
        let record = record_with_fields(fields);
        let path = JsonPath::parse("$.field3").unwrap();
        group.bench_with_input(
            BenchmarkId::new("jackson_dom", fields),
            &record,
            |b, rec| {
                b.iter(|| black_box(maxson_json::get_json_object(black_box(rec), &path)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mison_index", fields),
            &record,
            |b, rec| {
                b.iter(|| black_box(MisonProjector::project_path(black_box(rec), &path)));
            },
        );
        // The cached case: the value is already a string (clone only).
        let cached = "value-3-0123456789".to_string();
        group.bench_with_input(
            BenchmarkId::new("maxson_cached", fields),
            &cached,
            |b, v| {
                b.iter(|| black_box(v.clone()));
            },
        );
    }
    group.finish();
}

fn bench_structural_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("structural_index_build");
    for &fields in &[10usize, 200] {
        let record = record_with_fields(fields);
        group.bench_with_input(BenchmarkId::from_parameter(fields), &record, |b, rec| {
            b.iter(|| black_box(maxson_json::mison::StructuralIndex::build(black_box(rec))));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_parsers, bench_structural_index_build
}
criterion_main!(benches);
