//! Microbenches: DOM parse vs Mison structural-index projection vs a
//! Maxson-style cached read, per record size, on the testkit bench runner.
//!
//! This is the microscopic view of Fig. 15: what one `get_json_object`
//! call costs under each strategy. Run with `cargo bench --bench parsing`;
//! set `MAXSON_BENCH_FAST=1` for a quick smoke pass.

use maxson_bench::report::{Report, Series};
use maxson_json::mison::MisonProjector;
use maxson_json::JsonPath;
use maxson_testkit::bench::{bb, BenchRunner};

fn record_with_fields(n: usize) -> String {
    let mut s = String::from("{");
    for i in 0..n {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"field{i}\": \"value-{i}-0123456789\""));
    }
    s.push('}');
    s
}

fn bench_parsers(runner: &BenchRunner) -> Report {
    let mut report = Report::new("bench-parsing", "get_json_object cost per strategy");
    report.note("median ns per call; 'cached' is a string clone (the Maxson hit path)");
    let mut dom = Series::new("jackson_dom");
    let mut mison = Series::new("mison_index");
    let mut cached = Series::new("maxson_cached");
    for &fields in &[10usize, 50, 200] {
        let record = record_with_fields(fields);
        let path = JsonPath::parse("$.field3").unwrap();
        let label = format!("{fields} fields");
        let stats = runner.run(&format!("jackson_dom/{fields}"), || {
            bb(maxson_json::get_json_object(bb(&record), &path))
        });
        dom.push(&label, stats.median_ns);
        let stats = runner.run(&format!("mison_index/{fields}"), || {
            bb(MisonProjector::project_path(bb(&record), &path))
        });
        mison.push(&label, stats.median_ns);
        // The cached case: the value is already a string (clone only).
        let value = "value-3-0123456789".to_string();
        let stats = runner.run(&format!("maxson_cached/{fields}"), || bb(value.clone()));
        cached.push(&label, stats.median_ns);
    }
    report.add(dom);
    report.add(mison);
    report.add(cached);
    report
}

fn bench_structural_index_build(runner: &BenchRunner) -> Report {
    let mut report = Report::new(
        "bench-parsing-index-build",
        "Mison structural index build cost",
    );
    report.note("median ns per build");
    let mut series = Series::new("index_build");
    for &fields in &[10usize, 200] {
        let record = record_with_fields(fields);
        let stats = runner.run(&format!("index_build/{fields}"), || {
            bb(maxson_json::mison::StructuralIndex::build(bb(&record)))
        });
        series.push(format!("{fields} fields"), stats.median_ns);
    }
    report.add(series);
    report
}

fn main() {
    let runner = BenchRunner::from_env();
    bench_parsers(&runner).emit();
    bench_structural_index_build(&runner).emit();
}
