//! Minimal blocking client for the maxson wire protocol.
//!
//! Rebuilds full [`QueryResult`] values (columns, rows, epoch, and the
//! parse/cache metric subset the server ships), so callers can reuse
//! `QueryResult::to_display_string` — the differential test suite compares
//! served results byte for byte against serial in-process execution.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use maxson_engine::{ExecMetrics, QueryResult};
use maxson_storage::Cell;

use crate::server::StatsSnapshot;
use crate::wire::{self, OpCode, Writer, MAGIC, STATUS_OK};
use crate::{Result, ServerError};

/// One blocking connection to a maxson server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Set (or clear) the per-response read timeout.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    fn request(&mut self, payload: &[u8]) -> Result<Vec<u8>> {
        wire::write_frame(&mut self.stream, payload)?;
        wire::read_frame(&mut self.stream)
    }

    fn op_frame(op: OpCode) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(MAGIC).u8(op as u8);
        w.into_bytes()
    }

    /// Check the payload's status byte, surfacing server errors.
    fn checked<'a>(payload: &'a [u8]) -> Result<wire::Reader<'a>> {
        let mut r = wire::Reader::new(payload);
        match r.u8()? {
            STATUS_OK => Ok(r),
            _ => Err(ServerError::Remote(r.str()?)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        let response = self.request(&Self::op_frame(OpCode::Ping))?;
        Self::checked(&response)?;
        Ok(())
    }

    /// Ask the server to shut down (all connections drain, threads join).
    pub fn shutdown(&mut self) -> Result<()> {
        let response = self.request(&Self::op_frame(OpCode::Shutdown))?;
        Self::checked(&response)?;
        Ok(())
    }

    /// Server counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot> {
        let response = self.request(&Self::op_frame(OpCode::Stats))?;
        let mut r = Self::checked(&response)?;
        Ok(StatsSnapshot {
            queries_ok: r.u64()?,
            queries_err: r.u64()?,
            uptime_us: r.u64()?,
            p50_us: r.u64()?,
            p99_us: r.u64()?,
            meta_cache_hits: r.u64()?,
            meta_cache_misses: r.u64()?,
            active_queries: r.u64()?,
            epoch: r.u64()?,
            nodes_skipped: r.u64()?,
            bitmap_builds: r.u64()?,
            reuse_hits: r.u64()?,
            reuse_misses: r.u64()?,
            reuse_fills: r.u64()?,
            reuse_bytes: r.u64()?,
            simd_kernel: r.str()?,
            hot_paths: {
                let n = r.u32()? as usize;
                let mut paths = Vec::with_capacity(n);
                for _ in 0..n {
                    let table = r.str()?;
                    let path = r.str()?;
                    paths.push((table, path, r.u64()?));
                }
                paths
            },
        })
    }

    /// The server's process-wide metric registry, rendered as Prometheus
    /// text exposition.
    pub fn metrics(&mut self) -> Result<String> {
        let response = self.request(&Self::op_frame(OpCode::Metrics))?;
        let mut r = Self::checked(&response)?;
        r.str()
    }

    /// Execute `sql` on the server and decode the full result.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        let mut w = Writer::new();
        w.u8(MAGIC).u8(OpCode::Query as u8).str(sql);
        let response = self.request(&w.into_bytes())?;
        let mut r = Self::checked(&response)?;
        let epoch = r.u64()?;
        let ncols = r.u32()? as usize;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            columns.push(r.str()?);
        }
        let nrows = r.u32()? as usize;
        let mut rows: Vec<Vec<Cell>> = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let mut row = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                row.push(r.cell()?);
            }
            rows.push(row);
        }
        let metrics = ExecMetrics {
            parse_calls: r.u64()?,
            docs_parsed: r.u64()?,
            cache_hits: r.u64()?,
            meta_cache_hits: r.u64()?,
            meta_cache_misses: r.u64()?,
            ..Default::default()
        };
        Ok(QueryResult {
            columns,
            rows,
            metrics,
            plan_display: String::new(),
            epoch,
        })
    }
}
